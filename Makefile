# Contributor entry points.  Both targets mirror exactly what CI runs.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test bench-smoke

# Tier-1 verification: the full test suite (includes benchmarks/).
test:
	$(PYTEST) -x -q

# Quick benchmark smoke: the bit-packed engine throughput comparison,
# including its >=10x acceptance gate against the naive simulator.
bench-smoke:
	$(PYTEST) benchmarks/test_engine_throughput.py -q
