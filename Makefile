# Contributor entry points.  All targets mirror exactly what CI runs.
# The workflow is documented in README.md; the layer map in docs/architecture.md.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test bench-smoke bench-serving serve-demo check

# Tier-1 verification: the full test suite (includes benchmarks/).
test:
	$(PYTEST) -x -q

# Quick benchmark smoke: the bit-packed engine throughput comparisons,
# including the >=10x packed-vs-naive gate, the compiler-pipeline gates
# (chain fusion, P=8 fabric decomposition) and the sharding scaling gate.
bench-smoke:
	$(PYTEST) benchmarks/test_engine_throughput.py -q

# Serving-layer gate: coalesced async serving must beat sequential
# per-request calls >=3x on 256 concurrent 1-sample requests, with p99
# latency reported (see docs/serving.md).
bench-serving:
	$(PYTEST) benchmarks/test_serving_latency.py -q

# End-to-end serving demo: train a small PoET-BiN on the synthetic-digits
# dataset, start the batching server, fire concurrent clients at it and
# print latency percentiles + batch occupancy.
serve-demo:
	PYTHONPATH=src python examples/serving_demo.py

# CI-style composite: tier-1 tests plus every perf gate in one invocation.
check: test bench-smoke bench-serving
