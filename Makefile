# Contributor entry points.  All targets mirror exactly what CI runs.
# The workflow is documented in README.md; the layer map in docs/architecture.md.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test test-lifecycle bench-smoke bench-native bench-native-mt bench-serving serve-demo serve-stats serve-cluster check

# Tier-1 verification: the full test suite (includes benchmarks/).
test:
	$(PYTEST) -x -q

# Lifecycle layer: versioned hot-swap under 256-way concurrent load,
# shadow-traffic divergence recording, canary auto-promote/rollback over
# both wire protocols, and the seeded chaos fuzzer (~40 ops; crank
# REPRO_SOAK_OPS / REPRO_SOAK_SEED for a real soak — outcomes land in
# BENCH_results.json via the lifecycle_soak gate).
test-lifecycle:
	$(PYTEST) tests/serving/test_lifecycle_swap.py tests/serving/test_shadow_canary.py tests/serving/test_lifecycle_chaos.py -x -q

# Quick benchmark smoke: the bit-packed engine throughput comparisons,
# including the >=10x packed-vs-naive gate, the compiler-pipeline gates
# (chain fusion, P=8 fabric decomposition) and the sharding scaling gate.
bench-smoke:
	$(PYTEST) benchmarks/test_engine_throughput.py -q

# Native backend gate: the generated-C engine must run the paper's P=6
# RINC bank >=5x faster than the NumPy engine, bit-identical.  Skips with
# an explicit reason on hosts without a C compiler (cc/gcc/clang or $CC) —
# the same hosts where backend="auto" serves the NumPy engine.
bench-native:
	$(PYTEST) benchmarks/test_native_throughput.py -q -rs

# Tier-2 native runtime gates: the autotuned threads+SIMD engine must beat
# the single-thread native engine >=2x at a 4096-sample batch (skips with
# an explicit reason on <4-core or toolchain-less hosts; a 1/2/4 thread
# sweep lands in BENCH_results.json alongside the gate) and a 1-word batch
# must stay on the calling thread — no small-batch latency regression.
bench-native-mt:
	$(PYTEST) benchmarks/test_native_mt_throughput.py -q -rs

# Serving-layer gates: coalesced async serving must beat sequential
# per-request calls >=3x on 256 concurrent 1-sample requests, multi-model
# serving (2 netlists on one shared WorkerPool) >=2x under mixed
# concurrent load, the binary wire protocol must cut wire+dispatch
# overhead >=3x vs JSON at the same concurrency, and the cluster router
# over 2 replicated backend processes must sustain >=1.8x single-backend
# throughput with a zero-loss replica-death drill (see docs/serving.md).
bench-serving:
	$(PYTEST) benchmarks/test_serving_latency.py benchmarks/test_wire_overhead.py benchmarks/test_router_throughput.py -q

# End-to-end serving demo: train two PoET-BiN variants on the
# synthetic-digits dataset, serve both from one server over a shared
# WorkerPool, fire concurrent clients at them and print per-model latency
# percentiles + batch occupancy.
serve-demo:
	PYTHONPATH=src python examples/serving_demo.py

# The demo plus a final Prometheus-style stats_text scrape — what an
# operational agent collects from the stats_text protocol op.
serve-stats:
	PYTHONPATH=src python examples/serving_demo.py --stats-text

# Cluster demo: a router over two replicated backend processes, a
# mixed-model burst, and a kill drill — SIGKILL one replica mid-burst and
# watch every request complete through client-transparent failover.
serve-cluster:
	PYTHONPATH=src python examples/cluster_demo.py

# CI-style composite: tier-1 tests plus every perf gate in one invocation.
# (test already runs the lifecycle files; test-lifecycle re-runs them -x as
# the explicit lifecycle/chaos gate so a soak failure is named in CI output.)
check: test test-lifecycle bench-smoke bench-native bench-native-mt bench-serving
