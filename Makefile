# Contributor entry points.  All targets mirror exactly what CI runs.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test bench-smoke check

# Tier-1 verification: the full test suite (includes benchmarks/).
test:
	$(PYTEST) -x -q

# Quick benchmark smoke: the bit-packed engine throughput comparisons,
# including the >=10x packed-vs-naive gate, the compiler-pipeline gates
# (chain fusion, P=8 fabric decomposition) and the sharding scaling gate.
bench-smoke:
	$(PYTEST) benchmarks/test_engine_throughput.py -q

# CI-style composite: tier-1 tests plus the perf gates in one invocation.
check: test bench-smoke
