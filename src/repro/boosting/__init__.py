"""Boosting substrate: discrete AdaBoost over generic weak learners."""

from repro.boosting.adaboost import AdaBoost, BoostingRound

__all__ = ["AdaBoost", "BoostingRound"]
