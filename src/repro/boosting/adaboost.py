"""Discrete AdaBoost (AdaBoost.M1) over binary weak learners.

The RINC-1 module groups ``P`` level-wise decision trees with AdaBoost and the
hierarchical RINC-L construction applies AdaBoost again across sub-groups;
both use this implementation.  Weak learners must expose
``fit(X, y, sample_weight)`` and ``predict(X) -> {0, 1}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.utils.validation import (
    check_binary_vector,
    check_consistent_lengths,
)


@dataclass
class BoostingRound:
    """One round of boosting: the trained weak learner and its vote weight."""

    learner: object
    alpha: float
    weighted_error: float


class AdaBoost:
    """Discrete AdaBoost ensemble of binary classifiers.

    Parameters
    ----------
    weak_learner_factory:
        Callable returning a fresh, unfitted weak learner for round ``t``
        (the round index is passed as the only argument).
    n_rounds:
        Number of boosting rounds (the paper uses ``P`` — one weak classifier
        per LUT input of the MAT module).
    epsilon:
        Numerical floor applied to the weighted error when computing alphas,
        so perfect weak learners get a large-but-finite weight.

    Attributes
    ----------
    rounds_:
        The trained :class:`BoostingRound` records, in training order.
    """

    def __init__(
        self,
        weak_learner_factory: Callable[[int], object],
        n_rounds: int,
        epsilon: float = 1e-10,
    ) -> None:
        if n_rounds <= 0:
            raise ValueError("n_rounds must be positive")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.weak_learner_factory = weak_learner_factory
        self.n_rounds = n_rounds
        self.epsilon = epsilon
        self.rounds_: List[BoostingRound] = []

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "AdaBoost":
        """Train ``n_rounds`` weak learners on progressively reweighted data."""
        y = check_binary_vector(y, "y")
        check_consistent_lengths(X=X, y=y)
        n_samples = y.shape[0]
        if n_samples == 0:
            raise ValueError("cannot fit on an empty dataset")
        if sample_weight is None:
            weights = np.full(n_samples, 1.0 / n_samples)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64)
            if weights.shape != (n_samples,):
                raise ValueError("sample_weight must have shape (n_samples,)")
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("sample weights must be non-negative and not all zero")
            weights = weights / weights.sum()

        y_signed = 2.0 * y - 1.0
        self.rounds_ = []
        for round_index in range(self.n_rounds):
            learner = self.weak_learner_factory(round_index)
            learner.fit(X, y, sample_weight=weights)
            pred = np.asarray(learner.predict(X))
            incorrect = (pred != y).astype(np.float64)
            error = float(np.dot(weights, incorrect))
            # A weak learner no better than chance contributes nothing; keep
            # it with zero weight so the ensemble structure (P learners per
            # MAT module) stays intact for the hardware mapping.
            if error >= 0.5:
                self.rounds_.append(BoostingRound(learner, 0.0, error))
                continue
            clipped = min(max(error, self.epsilon), 1.0 - self.epsilon)
            alpha = 0.5 * np.log((1.0 - clipped) / clipped)
            self.rounds_.append(BoostingRound(learner, float(alpha), error))
            pred_signed = 2.0 * pred - 1.0
            weights = weights * np.exp(-alpha * y_signed * pred_signed)
            total = weights.sum()
            if total <= 0:
                break
            weights = weights / total
        return self

    # -------------------------------------------------------------- predict
    def _check_fitted(self) -> None:
        if not self.rounds_:
            raise RuntimeError("this ensemble has not been fitted yet")

    @property
    def alphas_(self) -> np.ndarray:
        """Vote weights of the trained rounds."""
        self._check_fitted()
        return np.array([r.alpha for r in self.rounds_], dtype=np.float64)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Weighted sum of ±1 weak-learner votes."""
        self._check_fitted()
        score = np.zeros(np.asarray(X).shape[0], dtype=np.float64)
        for record in self.rounds_:
            pred_signed = 2.0 * np.asarray(record.learner.predict(X)) - 1.0
            score += record.alpha * pred_signed
        return score

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Thresholded ensemble prediction in {0, 1} (ties resolve to 1)."""
        return (self.decision_function(X) >= 0).astype(np.uint8)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Unweighted accuracy on (X, y)."""
        y = check_binary_vector(y, "y")
        return float(np.mean(self.predict(X) == y))

    def staged_scores(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Accuracy after each boosting round (useful for diagnostics)."""
        self._check_fitted()
        y = check_binary_vector(y, "y")
        score = np.zeros(np.asarray(X).shape[0], dtype=np.float64)
        accuracies = np.empty(len(self.rounds_), dtype=np.float64)
        for i, record in enumerate(self.rounds_):
            pred_signed = 2.0 * np.asarray(record.learner.predict(X)) - 1.0
            score += record.alpha * pred_signed
            accuracies[i] = float(np.mean((score >= 0).astype(np.uint8) == y))
        return accuracies
