"""Lower a :class:`~repro.core.netlist.LUTNetlist` into a bit-parallel program.

The naive simulator walks the netlist node by node and looks every sample up
in the truth table individually.  Here the netlist first runs through the
optimisation pipeline of :mod:`repro.engine.passes` (:func:`compile_netlist`
drives it) and is then lowered once into a topologically-ordered program
that evaluates each LUT across *all* packed samples with whole-word bitwise
operations:

* every signal is assigned a **slot** in a ``(n_slots, n_words)`` word
  matrix; slots are freed after a signal's last use and reused by later
  nodes, so the working set stays proportional to the live signal count, not
  the netlist size;
* nodes are scheduled level by level and **grouped by LUT arity**, so one
  vectorised step evaluates every same-width LUT of a level at once;
* each group is evaluated by iterated **Shannon expansion**: the truth
  tables, materialised as all-zero/all-one words, are halved ``P`` times by
  the mux identity ``f = f0 ^ ((f0 ^ f1) & x)`` on the address bit ``x`` —
  pure AND/XOR word ops, no arithmetic, exactly like the hardware mux tree.

Padding bits past the last sample hold unspecified values during evaluation
(constants and inverted signals set them); they are discarded when results
are unpacked.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.netlist import LUTNetlist, primary_input_index
from repro.engine.bitpack import pack_bits, unpack_bits
from repro.engine.passes import MUX_TABLE, optimize_netlist
from repro.utils.validation import check_binary_matrix

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: target size of the in-place mux working set; roughly half a typical L2,
#: found empirically (a working set past L2 roughly halves throughput)
_MUX_SCRATCH_BYTES = 1 << 18


@dataclass(frozen=True)
class _Group:
    """One vectorised evaluation step: all same-arity LUTs of one level."""

    arity: int
    input_slots: np.ndarray  # (n_nodes, arity) int64
    output_slots: np.ndarray  # (n_nodes,) int64
    table_words: np.ndarray  # (n_nodes, 2**arity, 1) uint64, 0 or all-ones

    @property
    def n_nodes(self) -> int:
        return self.output_slots.shape[0]


@dataclass(frozen=True)
class _MuxGroup:
    """One vectorised step evaluating mux-shaped 3-input LUTs of one level.

    Decomposition emits 2:1 muxes with address bits ``(select, a, b)``;
    instead of the generic 7-step Shannon cascade, each is a single word
    mux ``out = a ^ ((a ^ b) & select)`` — three bitwise ops, mirroring
    the FPGA's dedicated (and free) F7/F8 mux resources.  Any 3-input LUT
    whose table happens to equal :data:`~repro.engine.passes.MUX_TABLE`
    gets this lowering, whatever produced it.
    """

    input_slots: np.ndarray  # (n_nodes, 3) int64: select, a, b
    output_slots: np.ndarray  # (n_nodes,) int64

    @property
    def n_nodes(self) -> int:
        return self.output_slots.shape[0]


class CompiledNetlist:
    """A LUT netlist compiled for bit-packed batch evaluation.

    Build one with :func:`compile_netlist` (or :meth:`from_netlist`); the
    compiled program is reusable across batches of any size.  Evaluation
    reuses an internal scratch working set (sized for the most recent batch
    word count), so a ``CompiledNetlist`` instance is **not thread-safe**;
    share the netlist and compile one instance per worker instead.

    Attributes
    ----------
    n_primary_inputs:
        Width of the binary feature vector the program reads.
    n_outputs:
        Number of declared netlist outputs.
    n_slots:
        Height of the word matrix the program runs in (peak live signals).
    n_groups:
        Number of vectorised evaluation steps.
    """

    #: engine-backend tag (the native engine's counterpart says "native");
    #: surfaced through the serving layer's ``list_models``/``stats_text``
    backend = "numpy"

    def __init__(
        self,
        n_primary_inputs: int,
        groups: List[object],
        output_slots: np.ndarray,
        n_slots: int,
        n_nodes: int,
    ) -> None:
        self.n_primary_inputs = n_primary_inputs
        self._groups = groups
        self._output_slots = output_slots
        self.n_slots = n_slots
        self.n_nodes = n_nodes
        # reusable working set, cached by *capacity* (rounded up to the
        # next power of two) rather than exact word count: alternating
        # batch sizes reuse one grow-only allocation through views instead
        # of reallocating all three scratch arrays on every call
        self._scratch: Optional[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = None
        lut_groups = [g for g in groups if isinstance(g, _Group)]
        self._max_group_nodes = max((g.n_nodes for g in lut_groups), default=0)
        self._max_group_half = max(
            ((1 << g.arity) >> 1 for g in lut_groups), default=0
        )
        self._max_mux_nodes = max(
            (g.n_nodes for g in groups if isinstance(g, _MuxGroup)), default=0
        )

    # ---------------------------------------------------------- compilation
    @classmethod
    def from_netlist(cls, netlist: LUTNetlist) -> "CompiledNetlist":
        """Lower ``netlist`` as-is into a slot-allocated, level-grouped program.

        This is the raw lowering with no optimisation passes; use
        :func:`compile_netlist` to run the pass pipeline first.
        """
        if not netlist.output_signals:
            raise ValueError("netlist must declare at least one output signal")

        # All of a node's producers live in strictly earlier levels, so
        # levels can be evaluated in order and grouped freely within
        # themselves.
        level = netlist.node_levels()

        # Last level at which each signal is read; outputs are read "after
        # the last level", so their slots are never recycled.
        n_levels = max(level.values()) if level else 0
        last_use: Dict[str, int] = {}
        for node in netlist.nodes:
            for sig in node.input_signals:
                last_use[sig] = max(last_use.get(sig, -1), level[node.name])
        for sig in netlist.output_signals:
            last_use[sig] = n_levels + 1

        # Slot allocation: primary inputs take slots 0..F-1 up front, node
        # outputs draw from a free list refilled as signals die.
        slot_of: Dict[str, int] = {
            name: index for index, name in enumerate(netlist.inputs)
        }
        free: List[int] = []
        next_slot = netlist.n_primary_inputs
        expiring: Dict[int, List[str]] = {}
        for sig, last in last_use.items():
            expiring.setdefault(last, []).append(sig)
        # Inputs nobody reads can be freed immediately after level 0.
        for name in netlist.inputs:
            if name not in last_use:
                expiring.setdefault(0, []).append(name)

        by_level: Dict[int, List] = {}
        for node in netlist.nodes:
            by_level.setdefault(level[node.name], []).append(node)

        groups: List[object] = []
        for lvl in range(1, n_levels + 1):
            # Recycle only slots whose last read happened in an *earlier*
            # level: groups within one level run sequentially, so a slot
            # still read by a later group of this level must not be reused
            # by an earlier group's scatter.
            for sig in expiring.get(lvl - 1, []):
                free.append(slot_of[sig])
            by_arity: Dict[int, List] = {}
            mux_nodes: List = []
            for node in by_level[lvl]:
                # mux-shaped 3-input LUTs get the dedicated 3-op lowering
                if node.n_inputs == 3 and np.array_equal(node.table, MUX_TABLE):
                    mux_nodes.append(node)
                else:
                    by_arity.setdefault(node.n_inputs, []).append(node)

            def assign_slots(nodes, arity):
                nonlocal next_slot
                input_slots = np.empty((len(nodes), arity), dtype=np.int64)
                output_slots = np.empty(len(nodes), dtype=np.int64)
                for row, node in enumerate(nodes):
                    for col, sig in enumerate(node.input_signals):
                        if netlist.is_primary_input(sig):
                            input_slots[row, col] = primary_input_index(sig)
                        else:
                            input_slots[row, col] = slot_of[sig]
                    if free:
                        slot = free.pop()
                    else:
                        slot = next_slot
                        next_slot += 1
                    slot_of[node.name] = slot
                    output_slots[row] = slot
                return input_slots, output_slots

            for arity in sorted(by_arity):
                nodes = by_arity[arity]
                input_slots, output_slots = assign_slots(nodes, arity)
                table_words = np.empty((len(nodes), 1 << arity, 1), dtype=np.uint64)
                for row, node in enumerate(nodes):
                    table_words[row, :, 0] = np.where(
                        node.table.astype(bool), _ALL_ONES, np.uint64(0)
                    )
                groups.append(
                    _Group(
                        arity=arity,
                        input_slots=input_slots,
                        output_slots=output_slots,
                        table_words=table_words,
                    )
                )
            if mux_nodes:
                input_slots, output_slots = assign_slots(mux_nodes, 3)
                groups.append(
                    _MuxGroup(input_slots=input_slots, output_slots=output_slots)
                )

        output_slots = np.array(
            [slot_of[sig] for sig in netlist.output_signals], dtype=np.int64
        )
        return cls(
            n_primary_inputs=netlist.n_primary_inputs,
            groups=groups,
            output_slots=output_slots,
            n_slots=next_slot,
            n_nodes=netlist.n_luts,
        )

    # ------------------------------------------------------------ statistics
    @property
    def n_outputs(self) -> int:
        return self._output_slots.shape[0]

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledNetlist({self.n_nodes} LUTs, {self.n_groups} groups, "
            f"{self.n_slots} slots, {self.n_primary_inputs} inputs, "
            f"{self.n_outputs} outputs)"
        )

    # ------------------------------------------------------------ evaluation
    def run_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Evaluate on packed inputs; returns packed output words.

        ``packed_inputs`` must have shape ``(n_primary_inputs, n_words)`` as
        produced by :func:`~repro.engine.bitpack.pack_bits`.  Bits past the
        batch's last sample are unspecified in the returned words.
        """
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        if packed_inputs.ndim != 2 or packed_inputs.shape[0] != self.n_primary_inputs:
            raise ValueError(
                f"packed_inputs must have shape ({self.n_primary_inputs}, n_words), "
                f"got {packed_inputs.shape}"
            )
        words = packed_inputs.shape[1]
        chunk_half = max(self._max_group_half, 1)
        max_nodes = max(self._max_group_nodes, 1)
        if self._scratch is None or self._scratch[0] < words:
            # grow-only, rounded up to the next power of two: ragged
            # alternating batch sizes settle on one allocation instead of
            # thrashing all three scratch arrays every call
            capacity = 1 << (max(words, 1) - 1).bit_length()
            if self._scratch is not None:
                capacity = max(capacity, self._scratch[0])
            state_buf = np.empty((self.n_slots, capacity), dtype=np.uint64)
            # flat mux scratch, re-carved per call: big enough for one
            # L2-sized chunk at any word count up to the capacity
            flat_words = max(
                chunk_half * capacity,
                min(_MUX_SCRATCH_BYTES // 8, max_nodes * chunk_half * capacity),
            )
            mux_flat = np.empty(flat_words, dtype=np.uint64)
            mux2_buf = np.empty((self._max_mux_nodes, capacity), dtype=np.uint64)
            self._scratch = (capacity, state_buf, mux_flat, mux2_buf)
        _, state_buf, mux_flat, mux2_buf = self._scratch
        state = state_buf[:, :words]
        mux2 = mux2_buf[:, :words]
        # Cache-block the mux cascade: the buffer is halved P times in
        # place, so keeping one chunk of nodes resident in L2 through the
        # whole cascade matters more than vector length.  Chunking depends
        # on the *actual* word count, so the views are carved per call.
        chunk_nodes = max(1, _MUX_SCRATCH_BYTES // (chunk_half * words * 8 or 1))
        chunk_nodes = min(chunk_nodes, max_nodes)
        chunk_nodes = min(chunk_nodes, max(1, mux_flat.size // (chunk_half * max(words, 1))))
        mux = mux_flat[: chunk_nodes * chunk_half * words].reshape(
            chunk_nodes, chunk_half, words
        )
        state[: self.n_primary_inputs] = packed_inputs
        for group in self._groups:
            if isinstance(group, _MuxGroup):
                # out = a ^ ((a ^ b) & select): one word mux per node, the
                # software analogue of the hardware's free F7/F8 muxes
                select = state[group.input_slots[:, 0]]
                a = state[group.input_slots[:, 1]]
                scratch = mux2[: group.n_nodes]
                np.bitwise_xor(a, state[group.input_slots[:, 2]], out=scratch)
                scratch &= select
                scratch ^= a
                state[group.output_slots] = scratch
                continue
            tables = group.table_words  # (G, 2**arity, 1)
            if group.arity == 0:
                state[group.output_slots] = np.broadcast_to(
                    tables[:, 0], (group.n_nodes, words)
                )
                continue
            for start in range(0, group.n_nodes, chunk_nodes):
                stop = min(start + chunk_nodes, group.n_nodes)
                gathered = state[group.input_slots[start:stop]]  # (C, arity, words)
                # Shannon-expand on the most-significant address bit first
                # (the node's first input), so both cofactors are contiguous
                # halves of the shrinking table.  The first mux widens the
                # narrow table words into the reusable scratch buffer, and
                # every later mux runs in place on that buffer via
                #   high ^= low; high &= x; high ^= low == mux(x, low, high)
                # leaving the result in the upper half, which the next step
                # halves again.
                half = tables.shape[1] >> 1
                x = gathered[:, 0][:, np.newaxis, :]  # (C, 1, words)
                low = tables[start:stop, :half]
                high = tables[start:stop, half:]
                acc = mux[: stop - start, :half]
                np.bitwise_and(low ^ high, x, out=acc)  # low ^ high is narrow
                acc ^= low
                for bit in range(1, group.arity):
                    half >>= 1
                    x = gathered[:, bit][:, np.newaxis, :]
                    low = acc[:, :half]
                    high = acc[:, half:]
                    high ^= low
                    high &= x
                    high ^= low
                    acc = high
                state[group.output_slots[start:stop]] = acc[:, 0]
        # advanced indexing already yields a fresh array
        return state[self._output_slots]

    def evaluate_outputs(self, X_bits: np.ndarray) -> np.ndarray:
        """Bit-exact packed counterpart of ``LUTNetlist.evaluate_outputs``."""
        X_bits = check_binary_matrix(X_bits, "X_bits")
        if X_bits.shape[1] != self.n_primary_inputs:
            raise ValueError(
                f"expected {self.n_primary_inputs} primary inputs, "
                f"got {X_bits.shape[1]}"
            )
        packed = pack_bits(X_bits)
        out = self.run_packed(packed)
        return unpack_bits(out, X_bits.shape[0])

    def predict_batch(self, X_bits: np.ndarray) -> np.ndarray:
        """Alias of :meth:`evaluate_outputs` (the shared batched entry point)."""
        return self.evaluate_outputs(X_bits)


#: engine backends ``compile_netlist`` accepts
ENGINE_BACKENDS = ("numpy", "native", "native-mt", "auto")


def compile_netlist(
    netlist: LUTNetlist,
    *,
    passes: Optional[Sequence] = None,
    max_lut_inputs: Optional[int] = None,
    backend: str = "numpy",
):
    """Compile ``netlist`` for bit-packed batch inference.

    The netlist first runs through the optimisation pipeline of
    :mod:`repro.engine.passes` — constant folding and dead-node pruning,
    single-fanout chain fusion, and (when ``max_lut_inputs`` is given)
    decomposition onto the physical LUT fabric — then lowers to the
    slot-allocated, level-grouped program.  Results are bit-identical to
    ``netlist.evaluate_outputs`` for every pipeline configuration and
    every backend.

    Parameters
    ----------
    passes:
        Explicit pass sequence, ``None`` for the default pipeline, or an
        empty sequence for the raw unoptimised lowering.
    max_lut_inputs:
        Physical fabric width; wide LUTs are Shannon-decomposed onto
        ``max_lut_inputs``-input tables plus dedicated mux steps.  ``None``
        (the default) leaves wide LUTs intact.
    backend:
        ``"numpy"`` (the default) returns the NumPy word-op interpreter;
        ``"native"`` lowers the program further to generated C compiled
        into a cached shared object (see :mod:`repro.engine.native`),
        raising :class:`~repro.engine.native.NativeUnavailableError` when
        the host has no C toolchain; ``"native-mt"`` is the autotuned
        multithreaded/SIMD native runtime — the per-netlist autotuner
        picks threads × unroll × opt tier and ``run_packed`` shards large
        batches across word ranges in-process; ``"auto"`` tries native and
        silently falls back to NumPy when it cannot build (a warning is
        emitted only when a toolchain exists but the build failed — that
        is unexpected, whereas a missing toolchain is a normal
        deployment).
    """
    if backend not in ENGINE_BACKENDS:
        raise ValueError(
            f"unknown engine backend {backend!r} (choose from {ENGINE_BACKENDS})"
        )
    if not netlist.output_signals:
        raise ValueError("netlist must declare at least one output signal")
    optimized = optimize_netlist(netlist, passes=passes, max_lut_inputs=max_lut_inputs)
    program = CompiledNetlist.from_netlist(optimized)
    if backend == "numpy":
        return program
    from repro.engine import native  # deferred: native imports this module

    try:
        if backend == "native-mt":
            return native.NativeCompiledNetlist.tuned(program)
        return native.NativeCompiledNetlist(program)
    except native.NativeUnavailableError as error:
        if backend in ("native", "native-mt"):
            raise
        if native.find_compiler() is not None:
            warnings.warn(
                f"native backend unavailable ({error}); "
                "falling back to the NumPy engine",
                RuntimeWarning,
                stacklevel=2,
            )
        return program
