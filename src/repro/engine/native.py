"""Generated-C native backend for the packed evaluator.

:class:`~repro.engine.compiled_netlist.CompiledNetlist` already lowers a
netlist to a flat, topologically-ordered, slot-allocated word program — but
executing it still means a Python loop dispatching NumPy kernels group by
group, with every mux step writing its intermediate back to memory.  This
module lowers that same program one step further, into a C translation unit
of straight-line ``uint64_t`` statements:

* every LUT becomes an unrolled Shannon-mux expression over its input
  slots, built MSB-first exactly like the NumPy cascade, with the table
  constants folded away at generation time (a leaf pair ``(0, ~0)`` is just
  the address bit; constant arms degrade muxes to ``&``/``|``; identical
  cofactor subtrees are shared through a per-node memo) — for trained,
  structured tables most of the tree collapses;
* mux-shaped 3-input LUTs keep their dedicated 3-op ``a ^ ((a ^ b) & sel)``
  lowering, and arity-0 constants become literal broadcasts;
* the statements are wrapped in ``static`` segment functions of bounded
  size (C compilers are superlinear in function length) called from a
  per-word driver: one ``uint64_t s[n_slots]`` stack array holds the whole
  live state, so the working set is L1-resident instead of a word-matrix
  walk through L2;
* a single exported ``run(const uint64_t* in, uint64_t* out,
  size_t n_words)`` evaluates all packed words.

The unit is compiled at attach time with the host toolchain (``$CC``, else
``cc``/``gcc``/``clang``) into a shared object cached under a digest of the
generated source + build command, so recompiling the same netlist — in this
process, a forked worker, or tomorrow's process — reuses one build.
:class:`NativeCompiledNetlist` wraps the loaded object behind the exact
``run_packed``/``evaluate_outputs``/``predict_batch`` surface of the NumPy
engine and is bit-exact against it (the equivalence suite is the gate).

Unlike the NumPy engine, the native engine keeps no scratch state — the
word loop's state lives on the C stack — so one instance **is**
thread-safe, and ``ctypes`` releases the GIL for the duration of ``run``.

When no C toolchain is present every entry point raises
:class:`NativeUnavailableError`; ``compile_netlist(backend="auto")`` and
the serving layer degrade to the NumPy engine instead of failing.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shlex
import shutil
import subprocess
import tempfile
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.bitpack import pack_bits, unpack_bits
from repro.engine.compiled_netlist import CompiledNetlist, _Group, _MuxGroup
from repro.utils.validation import check_binary_matrix

__all__ = [
    "NativeCompiledNetlist",
    "NativeUnavailableError",
    "find_compiler",
    "generate_c_source",
    "shared_object_cache_dir",
]

#: optimisation level for the generated unit.  Straight-line bitwise code
#: gains ~3x going -O0 -> -O1 (register allocation of the slot array) and
#: nothing measurable beyond; -O1 also compiles ~2x faster than -O2.
_CFLAGS = ("-O1", "-fPIC", "-shared")

#: segment the straight-line program into static functions of at most this
#: many statements — C compilers are superlinear in single-function length
#: (the P=6 benchmark unit compiles 4-5x faster segmented, same runtime)
_SEGMENT_STATEMENTS = 200

_ENV_CACHE_DIR = "REPRO_NATIVE_CACHE"
_ENV_CC = "CC"

_UNSET = object()
_compiler_cache: object = _UNSET
_compiler_lock = threading.Lock()

#: digest -> loaded (CDLL, run) so every instance of the same program in
#: one process shares a single dlopen handle
_loaded_libs: Dict[str, Tuple[ctypes.CDLL, object]] = {}
_loaded_lock = threading.Lock()


class NativeUnavailableError(RuntimeError):
    """The native backend cannot run here (no toolchain, or a build failed).

    ``compile_netlist(backend="native")`` propagates this;
    ``backend="auto"`` catches it and falls back to the NumPy engine.
    """


# ---------------------------------------------------------------- toolchain
def find_compiler() -> Optional[List[str]]:
    """The C compiler command to use, or ``None`` when the host has none.

    ``$CC`` wins when set (split shell-style, resolved on ``$PATH``);
    otherwise the first of ``cc``/``gcc``/``clang`` found.  The result is
    cached for the process; tests monkeypatch this function directly.
    """
    global _compiler_cache
    with _compiler_lock:
        if _compiler_cache is _UNSET:
            _compiler_cache = _discover_compiler()
        return _compiler_cache  # type: ignore[return-value]


def _discover_compiler() -> Optional[List[str]]:
    env_cc = os.environ.get(_ENV_CC)
    if env_cc:
        parts = shlex.split(env_cc)
        if parts and shutil.which(parts[0]):
            return parts
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return [path]
    return None


def toolchain_available() -> bool:
    """Whether the native backend can build on this host."""
    return find_compiler() is not None


def shared_object_cache_dir() -> str:
    """The directory compiled shared objects are cached in.

    ``$REPRO_NATIVE_CACHE`` when set, else a per-user directory under the
    system temp root.  Forked workers inherit the same path, so a model the
    parent compiled at attach time is a file-cache hit in every worker.
    """
    override = os.environ.get(_ENV_CACHE_DIR)
    if override:
        return override
    try:
        user = f"-{os.getuid()}"
    except AttributeError:  # pragma: no cover - non-POSIX
        user = ""
    return os.path.join(tempfile.gettempdir(), f"repro-native{user}")


# ------------------------------------------------------------------ codegen
def _emit_lut(
    statements: List[str],
    temp_counter: List[int],
    table: Tuple[int, ...],
    input_exprs: List[str],
) -> str:
    """Emit statements computing ``table[address]`` for one LUT node.

    ``input_exprs[0]`` is the address MSB, matching the NumPy cascade and
    the netlist's ``binary_to_index`` convention.  Returns the C expression
    (a temp name, an input, or a constant) holding the node's value.
    Constant table entries fold at generation time: a fully-constant
    subtree is a literal, a 2-entry leaf is the address bit or its
    complement, and a mux with one constant arm degrades to a single
    ``&``/``|``.  Structurally identical cofactor subtrees are shared
    through a memo keyed by the subtable, so repeated patterns inside one
    table (ubiquitous in trained tables) cost one temp.
    """
    memo: Dict[Tuple[int, ...], str] = {}

    def emit(text: str) -> str:
        name = f"t{temp_counter[0]}"
        temp_counter[0] += 1
        statements.append(f"uint64_t {name} = {text};")
        return name

    def rec(lo: int, hi: int, depth: int) -> str:
        sub = table[lo:hi]
        if all(v == 0 for v in sub):
            return "C0"
        if all(v == 1 for v in sub):
            return "C1"
        hit = memo.get(sub)
        if hit is not None:
            return hit
        x = input_exprs[depth]
        if hi - lo == 2:
            # leaf pair (0,1) is the bit itself, (1,0) its complement
            result = x if sub == (0, 1) else f"~{x}"
        else:
            mid = (lo + hi) // 2
            a = rec(lo, mid, depth + 1)  # cofactor with x = 0
            b = rec(mid, hi, depth + 1)  # cofactor with x = 1
            if a == b:
                result = a
            elif a == "C0":
                result = emit(f"{b} & {x}")
            elif b == "C0":
                result = emit(f"{a} & ~{x}")
            elif a == "C1":
                result = emit(f"{b} | ~{x}")
            elif b == "C1":
                result = emit(f"{a} | {x}")
            else:
                result = emit(f"{a} ^ (({a} ^ {b}) & {x})")
        memo[sub] = result
        return result

    return rec(0, len(table), 0)


def _node_statements(program: CompiledNetlist) -> List[str]:
    """One straight-line C statement (or brace block) per node, in program
    order — the body the segmenter splits."""
    lines: List[str] = []
    temp_counter = [0]
    for group in program._groups:
        if isinstance(group, _MuxGroup):
            for row in range(group.n_nodes):
                sel, a, b = (int(v) for v in group.input_slots[row])
                out = int(group.output_slots[row])
                lines.append(
                    f"s[{out}] = s[{a}] ^ ((s[{a}] ^ s[{b}]) & s[{sel}]);"
                )
            continue
        assert isinstance(group, _Group)
        tables = (group.table_words[:, :, 0] != 0).astype(np.uint8)
        if group.arity == 0:
            for row in range(group.n_nodes):
                out = int(group.output_slots[row])
                constant = "C1" if tables[row, 0] else "C0"
                lines.append(f"s[{out}] = {constant};")
            continue
        for row in range(group.n_nodes):
            input_exprs = [f"s[{int(v)}]" for v in group.input_slots[row]]
            statements: List[str] = []
            table = tuple(int(v) for v in tables[row])
            value = _emit_lut(statements, temp_counter, table, input_exprs)
            out = int(group.output_slots[row])
            body = " ".join(statements)
            lines.append(f"{{ {body} s[{out}] = {value}; }}")
    return lines


def generate_c_source(program: CompiledNetlist) -> str:
    """The C translation unit evaluating ``program``, ready to compile.

    Deterministic for a given program, so its digest keys the shared-object
    cache: the parent process and every forked worker regenerate the same
    bytes and share one build.
    """
    node_lines = _node_statements(program)
    segments = [
        node_lines[i : i + _SEGMENT_STATEMENTS]
        for i in range(0, len(node_lines), _SEGMENT_STATEMENTS)
    ]
    parts = [
        "#include <stdint.h>",
        "#include <stddef.h>",
        "#define C0 ((uint64_t)0)",
        "#define C1 (~(uint64_t)0)",
        "",
    ]
    for index, segment in enumerate(segments):
        parts.append(f"static void seg{index}(uint64_t* restrict s) {{")
        parts.extend(segment)
        parts.append("}")
        parts.append("")
    parts.append(
        "static void run_word(const uint64_t* restrict in,"
        " uint64_t* restrict out, size_t w, size_t n_words) {"
    )
    parts.append(f"uint64_t s[{max(program.n_slots, 1)}];")
    for i in range(program.n_primary_inputs):
        parts.append(f"s[{i}] = in[{i}*n_words + w];")
    for index in range(len(segments)):
        parts.append(f"seg{index}(s);")
    for j, slot in enumerate(program._output_slots):
        parts.append(f"out[{j}*n_words + w] = s[{int(slot)}];")
    parts.append("}")
    parts.append("")
    parts.append("void run(const uint64_t* in, uint64_t* out, size_t n_words) {")
    parts.append("for (size_t w = 0; w < n_words; ++w) run_word(in, out, w, n_words);")
    parts.append("}")
    return "\n".join(parts) + "\n"


# -------------------------------------------------------------------- build
def _source_digest(source: str, command: List[str]) -> str:
    hasher = hashlib.sha256()
    hasher.update(" ".join(command).encode())
    hasher.update(b"\x00")
    hasher.update(source.encode())
    return hasher.hexdigest()[:24]


def build_shared_object(
    source: str, *, cache_dir: Optional[str] = None
) -> Tuple[str, str]:
    """Compile ``source`` into a cached shared object; ``(digest, path)``.

    The cache key digests the source *and* the build command, so a compiler
    or flag change never serves a stale object.  Builds land under a unique
    temp name and are published with an atomic rename — concurrent builders
    (racing worker processes) both succeed and one result wins.

    Raises :class:`NativeUnavailableError` when the host has no C toolchain
    or the build fails.
    """
    compiler = find_compiler()
    if compiler is None:
        raise NativeUnavailableError(
            "no C toolchain on this host (set $CC or install cc/gcc/clang); "
            "use backend='numpy' or backend='auto'"
        )
    command = list(compiler) + list(_CFLAGS)
    digest = _source_digest(source, command)
    directory = cache_dir or shared_object_cache_dir()
    os.makedirs(directory, exist_ok=True)
    so_path = os.path.join(directory, f"{digest}.so")
    if os.path.exists(so_path):
        return digest, so_path
    c_path = os.path.join(directory, f"{digest}.c")
    unique = f".{os.getpid()}-{threading.get_ident()}.tmp"
    c_tmp = c_path + unique + ".c"  # cc needs the suffix to see C source
    so_tmp = so_path + unique
    try:
        with open(c_tmp, "w") as handle:
            handle.write(source)
        result = subprocess.run(
            command + ["-o", so_tmp, c_tmp],
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            tail = (result.stderr or result.stdout or "").strip()[-2000:]
            raise NativeUnavailableError(
                f"C build failed ({' '.join(command)}): {tail}"
            )
        # keep the source next to the object for debugging, then publish
        os.replace(c_tmp, c_path)
        os.replace(so_tmp, so_path)
    finally:
        for leftover in (c_tmp, so_tmp):
            try:
                os.unlink(leftover)
            except OSError:
                pass
    return digest, so_path


def _load_run(digest: str, so_path: str):
    """dlopen (once per process per digest) and type the entry point."""
    with _loaded_lock:
        cached = _loaded_libs.get(digest)
        if cached is None:
            lib = ctypes.CDLL(so_path)
            run = lib.run
            run.argtypes = [
                ctypes.POINTER(ctypes.c_uint64),
                ctypes.POINTER(ctypes.c_uint64),
                ctypes.c_size_t,
            ]
            run.restype = None
            cached = (lib, run)
            _loaded_libs[digest] = cached
        return cached[1]


# ------------------------------------------------------------------- engine
class NativeCompiledNetlist:
    """A :class:`CompiledNetlist` lowered to a compiled shared object.

    Same evaluation surface as the NumPy engine — ``run_packed`` on packed
    words, ``evaluate_outputs``/``predict_batch`` on 0/1 matrices — and
    bit-exact against it.  Unlike the NumPy engine an instance is
    thread-safe: the generated code's state lives on the C stack and
    ``ctypes`` releases the GIL around ``run``.

    Build one with ``compile_netlist(netlist, backend="native")`` (or
    ``"auto"``); constructing directly from an already-lowered program is
    what the worker pool does.  Raises :class:`NativeUnavailableError`
    when the host cannot build.
    """

    backend = "native"

    def __init__(
        self, program: CompiledNetlist, *, cache_dir: Optional[str] = None
    ) -> None:
        self.program = program
        self.n_primary_inputs = program.n_primary_inputs
        self.n_slots = program.n_slots
        self.n_nodes = program.n_nodes
        self.c_source = generate_c_source(program)
        self.digest, self.shared_object = build_shared_object(
            self.c_source, cache_dir=cache_dir
        )
        self._run = _load_run(self.digest, self.shared_object)

    # ---------------------------------------------------------- statistics
    @property
    def n_outputs(self) -> int:
        return self.program.n_outputs

    @property
    def n_groups(self) -> int:
        return self.program.n_groups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NativeCompiledNetlist({self.n_nodes} LUTs, "
            f"{self.n_primary_inputs} inputs, {self.n_outputs} outputs, "
            f"so={self.digest})"
        )

    # ---------------------------------------------------------- evaluation
    def run_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Evaluate on packed inputs; returns packed output words.

        Same contract as :meth:`CompiledNetlist.run_packed`: input shape
        ``(n_primary_inputs, n_words)``, bits past the last sample
        unspecified in the result.
        """
        packed_inputs = np.ascontiguousarray(packed_inputs, dtype=np.uint64)
        if (
            packed_inputs.ndim != 2
            or packed_inputs.shape[0] != self.n_primary_inputs
        ):
            raise ValueError(
                f"packed_inputs must have shape ({self.n_primary_inputs}, "
                f"n_words), got {packed_inputs.shape}"
            )
        words = packed_inputs.shape[1]
        out = np.empty((self.n_outputs, words), dtype=np.uint64)
        if words:
            self._run(
                packed_inputs.ctypes.data_as(
                    ctypes.POINTER(ctypes.c_uint64)
                ),
                out.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64)),
                words,
            )
        return out

    def evaluate_outputs(self, X_bits: np.ndarray) -> np.ndarray:
        """Bit-exact packed counterpart of ``LUTNetlist.evaluate_outputs``."""
        X_bits = check_binary_matrix(X_bits, "X_bits")
        if X_bits.shape[1] != self.n_primary_inputs:
            raise ValueError(
                f"expected {self.n_primary_inputs} primary inputs, "
                f"got {X_bits.shape[1]}"
            )
        packed = pack_bits(X_bits)
        out = self.run_packed(packed)
        return unpack_bits(out, X_bits.shape[0])

    def predict_batch(self, X_bits: np.ndarray) -> np.ndarray:
        """Alias of :meth:`evaluate_outputs` (the shared batched entry point)."""
        return self.evaluate_outputs(X_bits)
