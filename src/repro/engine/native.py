"""Generated-C native backend for the packed evaluator.

:class:`~repro.engine.compiled_netlist.CompiledNetlist` already lowers a
netlist to a flat, topologically-ordered, slot-allocated word program — but
executing it still means a Python loop dispatching NumPy kernels group by
group, with every mux step writing its intermediate back to memory.  This
module lowers that same program one step further, into a C translation unit
of straight-line word statements:

* every LUT becomes an unrolled Shannon-mux expression over its input
  slots, built MSB-first exactly like the NumPy cascade, with the table
  constants folded away at generation time (a leaf pair ``(0, ~0)`` is just
  the address bit; constant arms degrade muxes to ``&``/``|``; identical
  cofactor subtrees are shared through a per-node memo) — for trained,
  structured tables most of the tree collapses;
* mux-shaped 3-input LUTs keep their dedicated 3-op ``a ^ ((a ^ b) & sel)``
  lowering, and arity-0 constants become literal broadcasts;
* the statements are wrapped in ``static`` segment functions of bounded
  size (C compilers are superlinear in function length) called from a
  per-word driver: one ``W s[n_slots]`` stack array holds the whole live
  state, so the working set is L1-resident instead of a word-matrix walk
  through L2;
* the exported entry points are ``run(in, out, n_words)`` and its
  range-restricted sibling ``run_range(in, out, lo, hi, n_words)`` — the
  latter writes only word columns ``[lo, hi)`` of the full-stride planes,
  which is what makes in-process word sharding possible.

Tier 2: SIMD width and in-process threads
=========================================

The statements are generated against an abstract word type ``W``.  With
``unroll=1`` that is plain ``uint64_t`` (the PR-8 program).  With
``unroll=K`` the same statement stream is *additionally* instantiated
against a GCC/Clang vector type of ``K`` lanes
(``__attribute__((vector_size(K*8))))``), so each emitted statement
processes ``K`` packed words — ``64*K`` samples — per operation and the
host compiler maps the Shannon-mux cascade onto SIMD registers.
``run_range`` runs the vector body over the aligned span and the scalar
body over the ragged tail, so results stay bit-exact for every word count.
The ``"fast"`` optimisation tier (``-O2 -march=native``) exists for exactly
this instantiation; the ``"base"`` tier keeps PR-8's fast-compiling
``-O1``.

Because the generated code keeps no global state (the word loop's state
lives on the C stack) a loaded program is thread-safe, and ``ctypes``
releases the GIL for the duration of every call.  The multithreaded mode
exploits that with a *Python* ``ThreadPoolExecutor`` over ``run_range``
calls on disjoint word ranges — chosen over a pthread pool compiled into
each ``.so`` because (a) the GIL is already released, so Python threads
reach the same parallelism, (b) one process-wide executor is shared by
every engine instead of one pthread pool per generated unit, and (c) the
generated C stays dependency-free and trivially portable.  Batches smaller
than ``min_words_per_thread`` words per shard never split, so small-batch
latency is identical to the single-threaded engine.

The autotuner (:func:`autotune_config`) measures 2–3 candidate configs —
threads × unroll × opt tier — on a calibration batch and pins the winner
per netlist, persisting the choice in a ``<digest>.tune.json`` file next to
the ``.so`` cache; :meth:`NativeCompiledNetlist.tuned` (what
``compile_netlist(backend="native-mt")`` calls) applies it, and
``tune(force=True)`` re-measures on demand.

The unit is compiled at attach time with the host toolchain (``$CC``, else
``cc``/``gcc``/``clang``) into a shared object cached under a digest of the
generated source + build command, so recompiling the same netlist — in this
process, a forked worker, or tomorrow's process — reuses one build.
Concurrent builders of the same digest serialise on a ``<digest>.lock``
file, so exactly one compiler runs per digest per host and the losers reuse
the winner's atomically-published object.
:class:`NativeCompiledNetlist` wraps the loaded object behind the exact
``run_packed``/``evaluate_outputs``/``predict_batch`` surface of the NumPy
engine and is bit-exact against it (the equivalence suite is the gate).

When no C toolchain is present every entry point raises
:class:`NativeUnavailableError`; ``compile_netlist(backend="auto")`` and
the serving layer degrade to the NumPy engine instead of failing.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import shlex
import shutil
import subprocess
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.bitpack import pack_bits, unpack_bits
from repro.engine.compiled_netlist import CompiledNetlist, _Group, _MuxGroup
from repro.utils.validation import check_binary_matrix

try:  # POSIX only; on other platforms builds fall back to the atomic-rename race
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "MTConfig",
    "NativeCompiledNetlist",
    "NativeUnavailableError",
    "autotune_config",
    "default_thread_count",
    "find_compiler",
    "generate_c_source",
    "shared_object_cache_dir",
]

#: optimisation tiers for the generated unit.  Straight-line bitwise code
#: gains ~3x going -O0 -> -O1 (register allocation of the slot array) and
#: little beyond at unroll=1; the vector instantiation wants -O2 plus the
#: host ISA (-march=native) so the compiler picks the widest SIMD register.
#: A tier whose flags the host compiler rejects (e.g. -march=native on some
#: cross toolchains) simply fails the candidate build and the autotuner
#: falls back to "base".
_OPT_TIERS: Dict[str, Tuple[str, ...]] = {
    "base": ("-O1",),
    "fast": ("-O2", "-march=native"),
}

_COMMON_CFLAGS = ("-fPIC", "-shared")

#: vector width (words per statement) the autotuner tries; 4 lanes = 256
#: bits, the sweet spot for AVX2-class hosts and harmless (the compiler
#: splits the vector) elsewhere
DEFAULT_UNROLL = 4

#: a thread shard below this many packed words (64 samples each) is not
#: worth the submit/wake cost — batches under ``threads * grain`` words
#: run on fewer shards, and under ``2 * grain`` words stay single-threaded
DEFAULT_MIN_WORDS_PER_THREAD = 32

#: segment the straight-line program into static functions of at most this
#: many statements — C compilers are superlinear in single-function length
#: (the P=6 benchmark unit compiles 4-5x faster segmented, same runtime)
_SEGMENT_STATEMENTS = 200

#: autotune persistence format version (bump to invalidate stale records)
_TUNE_VERSION = 1

#: words in the autotuner's calibration batch (256 words = 16384 samples —
#: large enough that threading wins show, small enough to measure at attach)
_CALIBRATION_WORDS = 256

_ENV_CACHE_DIR = "REPRO_NATIVE_CACHE"
_ENV_CC = "CC"

_UNSET = object()
_compiler_cache: object = _UNSET
_compiler_lock = threading.Lock()

#: digest -> loaded (CDLL, run, run_range) so every instance of the same
#: program in one process shares a single dlopen handle
_loaded_libs: Dict[str, Tuple[ctypes.CDLL, object, object]] = {}
_loaded_lock = threading.Lock()

#: the process-wide executor shard calls run on; daemon threads, created
#: lazily, shared by every engine so N models never stack N thread pools
_executor: Optional[ThreadPoolExecutor] = None
_executor_lock = threading.Lock()


class NativeUnavailableError(RuntimeError):
    """The native backend cannot run here (no toolchain, or a build failed).

    ``compile_netlist(backend="native")`` propagates this;
    ``backend="auto"`` catches it and falls back to the NumPy engine.
    """


# ---------------------------------------------------------------- toolchain
def find_compiler() -> Optional[List[str]]:
    """The C compiler command to use, or ``None`` when the host has none.

    ``$CC`` wins when set (split shell-style, resolved on ``$PATH``);
    otherwise the first of ``cc``/``gcc``/``clang`` found.  The result is
    cached for the process; tests monkeypatch this function directly.
    """
    global _compiler_cache
    with _compiler_lock:
        if _compiler_cache is _UNSET:
            _compiler_cache = _discover_compiler()
        return _compiler_cache  # type: ignore[return-value]


def _discover_compiler() -> Optional[List[str]]:
    env_cc = os.environ.get(_ENV_CC)
    if env_cc:
        parts = shlex.split(env_cc)
        if parts and shutil.which(parts[0]):
            return parts
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return [path]
    return None


def toolchain_available() -> bool:
    """Whether the native backend can build on this host."""
    return find_compiler() is not None


def default_thread_count() -> int:
    """The thread count the autotuner offers as its parallel candidate."""
    return os.cpu_count() or 1


def shared_object_cache_dir() -> str:
    """The directory compiled shared objects are cached in.

    ``$REPRO_NATIVE_CACHE`` when set, else a per-user directory under the
    system temp root.  Forked workers inherit the same path, so a model the
    parent compiled at attach time is a file-cache hit in every worker.
    Autotune records (``*.tune.json``) live here too, next to the objects
    they describe.
    """
    override = os.environ.get(_ENV_CACHE_DIR)
    if override:
        return override
    try:
        user = f"-{os.getuid()}"
    except AttributeError:  # pragma: no cover - non-POSIX
        user = ""
    return os.path.join(tempfile.gettempdir(), f"repro-native{user}")


# ------------------------------------------------------------------ codegen
def _emit_lut(
    statements: List[str],
    temp_counter: List[int],
    table: Tuple[int, ...],
    input_exprs: List[str],
) -> str:
    """Emit statements computing ``table[address]`` for one LUT node.

    ``input_exprs[0]`` is the address MSB, matching the NumPy cascade and
    the netlist's ``binary_to_index`` convention.  Returns the C expression
    (a temp name, an input, or a constant) holding the node's value.
    Constant table entries fold at generation time: a fully-constant
    subtree is a literal, a 2-entry leaf is the address bit or its
    complement, and a mux with one constant arm degrades to a single
    ``&``/``|``.  Structurally identical cofactor subtrees are shared
    through a memo keyed by the subtable, so repeated patterns inside one
    table (ubiquitous in trained tables) cost one temp.

    Temps are declared with the abstract word type ``W`` so the same
    statement stream instantiates as scalar ``uint64_t`` or as a K-lane
    vector (see :func:`generate_c_source`).
    """
    memo: Dict[Tuple[int, ...], str] = {}

    def emit(text: str) -> str:
        name = f"t{temp_counter[0]}"
        temp_counter[0] += 1
        statements.append(f"W {name} = {text};")
        return name

    def rec(lo: int, hi: int, depth: int) -> str:
        sub = table[lo:hi]
        if all(v == 0 for v in sub):
            return "C0"
        if all(v == 1 for v in sub):
            return "C1"
        hit = memo.get(sub)
        if hit is not None:
            return hit
        x = input_exprs[depth]
        if hi - lo == 2:
            # leaf pair (0,1) is the bit itself, (1,0) its complement
            result = x if sub == (0, 1) else f"~{x}"
        else:
            mid = (lo + hi) // 2
            a = rec(lo, mid, depth + 1)  # cofactor with x = 0
            b = rec(mid, hi, depth + 1)  # cofactor with x = 1
            if a == b:
                result = a
            elif a == "C0":
                result = emit(f"{b} & {x}")
            elif b == "C0":
                result = emit(f"{a} & ~{x}")
            elif a == "C1":
                result = emit(f"{b} | ~{x}")
            elif b == "C1":
                result = emit(f"{a} | {x}")
            else:
                result = emit(f"{a} ^ (({a} ^ {b}) & {x})")
        memo[sub] = result
        return result

    return rec(0, len(table), 0)


def _node_statements(program: CompiledNetlist) -> List[str]:
    """One straight-line C statement (or brace block) per node, in program
    order — the body the segmenter splits."""
    lines: List[str] = []
    temp_counter = [0]
    for group in program._groups:
        if isinstance(group, _MuxGroup):
            for row in range(group.n_nodes):
                sel, a, b = (int(v) for v in group.input_slots[row])
                out = int(group.output_slots[row])
                lines.append(
                    f"s[{out}] = s[{a}] ^ ((s[{a}] ^ s[{b}]) & s[{sel}]);"
                )
            continue
        assert isinstance(group, _Group)
        tables = (group.table_words[:, :, 0] != 0).astype(np.uint8)
        if group.arity == 0:
            for row in range(group.n_nodes):
                out = int(group.output_slots[row])
                constant = "C1" if tables[row, 0] else "C0"
                lines.append(f"s[{out}] = {constant};")
            continue
        for row in range(group.n_nodes):
            input_exprs = [f"s[{int(v)}]" for v in group.input_slots[row]]
            statements: List[str] = []
            table = tuple(int(v) for v in tables[row])
            value = _emit_lut(statements, temp_counter, table, input_exprs)
            out = int(group.output_slots[row])
            body = " ".join(statements)
            lines.append(f"{{ {body} s[{out}] = {value}; }}")
    return lines


def generate_c_source(program: CompiledNetlist, unroll: int = 1) -> str:
    """The C translation unit evaluating ``program``, ready to compile.

    Deterministic for a given ``(program, unroll)``, so its digest keys the
    shared-object cache: the parent process and every forked worker
    regenerate the same bytes and share one build.

    ``unroll=1`` emits only the scalar (``uint64_t``) instantiation —
    PR-8's program plus the ``run_range`` export.  ``unroll=K`` (K > 1)
    additionally instantiates the same statement stream against a K-lane
    GCC/Clang vector type; ``run_range`` runs the vector body over the
    K-aligned span of the range and the scalar body over the tail, so the
    result is bit-exact for every word count.
    """
    if unroll < 1:
        raise ValueError("unroll must be >= 1")
    node_lines = _node_statements(program)
    segments = [
        node_lines[i : i + _SEGMENT_STATEMENTS]
        for i in range(0, len(node_lines), _SEGMENT_STATEMENTS)
    ]
    n_slots = max(program.n_slots, 1)
    parts = [
        "#include <stdint.h>",
        "#include <stddef.h>",
        "",
        "/* C0/C1 broadcast against whichever word type W is in effect. */",
        "#define C0 ((W){0})",
        "#define C1 (~(W){0})",
        "",
    ]
    widths = [1] if unroll == 1 else [1, unroll]
    for k in widths:
        if k == 1:
            parts.append("typedef uint64_t w1;")
        else:
            # may_alias: the lanes are loaded straight out of the uint64
            # planes, so the vector type must be allowed to alias them;
            # aligned(8): packed planes are only word-aligned
            parts.append(
                f"typedef uint64_t w{k} __attribute__((vector_size({k * 8}),"
                " aligned(8), may_alias));"
            )
        parts.append(f"#define W w{k}")
        for index, segment in enumerate(segments):
            parts.append(f"static void seg{index}_w{k}(W* restrict s) {{")
            parts.extend(segment)
            parts.append("}")
            parts.append("")
        parts.append(
            f"static void run_word_w{k}(const uint64_t* restrict in,"
            " uint64_t* restrict out, size_t w, size_t n_words) {"
        )
        parts.append(f"W s[{n_slots}];")
        for i in range(program.n_primary_inputs):
            parts.append(f"s[{i}] = *(const W*)(in + (size_t){i} * n_words + w);")
        for index in range(len(segments)):
            parts.append(f"seg{index}_w{k}(s);")
        for j, slot in enumerate(program._output_slots):
            parts.append(
                f"*(W*)(out + (size_t){j} * n_words + w) = s[{int(slot)}];"
            )
        parts.append("}")
        parts.append("#undef W")
        parts.append("")
    parts.append(
        "void run_range(const uint64_t* in, uint64_t* out,"
        " size_t lo, size_t hi, size_t n_words) {"
    )
    parts.append("size_t w = lo;")
    if unroll > 1:
        parts.append(
            f"for (; w + {unroll} <= hi; w += {unroll}) "
            f"run_word_w{unroll}(in, out, w, n_words);"
        )
    parts.append("for (; w < hi; ++w) run_word_w1(in, out, w, n_words);")
    parts.append("}")
    parts.append("")
    parts.append("void run(const uint64_t* in, uint64_t* out, size_t n_words) {")
    parts.append("run_range(in, out, 0, n_words, n_words);")
    parts.append("}")
    return "\n".join(parts) + "\n"


# -------------------------------------------------------------------- build
def _source_digest(source: str, command: List[str]) -> str:
    hasher = hashlib.sha256()
    hasher.update(" ".join(command).encode())
    hasher.update(b"\x00")
    hasher.update(source.encode())
    return hasher.hexdigest()[:24]


@contextmanager
def _build_lock(directory: str, digest: str):
    """Serialise concurrent builders of one digest on a lock file.

    Two processes attaching the same model (e.g. racing pool workers) would
    otherwise both run the compiler; with the lock, the loser blocks until
    the winner publishes and then reuses the cached object.  Where
    ``fcntl`` is unavailable the old behaviour stands: both build under
    unique temp names and the atomic rename picks a winner — correct,
    merely one build wasted.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    lock_path = os.path.join(directory, f"{digest}.lock")
    with open(lock_path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def build_shared_object(
    source: str, *, cache_dir: Optional[str] = None, opt_tier: str = "base"
) -> Tuple[str, str]:
    """Compile ``source`` into a cached shared object; ``(digest, path)``.

    The cache key digests the source *and* the build command (so a
    compiler, flag, or ``opt_tier`` change never serves a stale object).
    Builds land under a unique temp name and are published with an atomic
    rename; concurrent builders of the same digest additionally serialise
    on a ``<digest>.lock`` file so only one compiler runs per digest.

    Raises :class:`NativeUnavailableError` when the host has no C toolchain
    or the build fails (including an ``opt_tier`` whose flags the host
    compiler rejects).
    """
    compiler = find_compiler()
    if compiler is None:
        raise NativeUnavailableError(
            "no C toolchain on this host (set $CC or install cc/gcc/clang); "
            "use backend='numpy' or backend='auto'"
        )
    if opt_tier not in _OPT_TIERS:
        raise ValueError(
            f"unknown opt_tier {opt_tier!r} (choose from {sorted(_OPT_TIERS)})"
        )
    command = list(compiler) + list(_OPT_TIERS[opt_tier]) + list(_COMMON_CFLAGS)
    digest = _source_digest(source, command)
    directory = cache_dir or shared_object_cache_dir()
    os.makedirs(directory, exist_ok=True)
    so_path = os.path.join(directory, f"{digest}.so")
    if os.path.exists(so_path):
        return digest, so_path
    with _build_lock(directory, digest):
        # the lock's previous holder may have published while we waited
        if os.path.exists(so_path):
            return digest, so_path
        c_path = os.path.join(directory, f"{digest}.c")
        unique = f".{os.getpid()}-{threading.get_ident()}.tmp"
        c_tmp = c_path + unique + ".c"  # cc needs the suffix to see C source
        so_tmp = so_path + unique
        try:
            with open(c_tmp, "w") as handle:
                handle.write(source)
            result = subprocess.run(
                command + ["-o", so_tmp, c_tmp],
                capture_output=True,
                text=True,
            )
            if result.returncode != 0:
                tail = (result.stderr or result.stdout or "").strip()[-2000:]
                raise NativeUnavailableError(
                    f"C build failed ({' '.join(command)}): {tail}"
                )
            # keep the source next to the object for debugging, then publish
            os.replace(c_tmp, c_path)
            os.replace(so_tmp, so_path)
        finally:
            for leftover in (c_tmp, so_tmp):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
    return digest, so_path


def _load_entry_points(digest: str, so_path: str):
    """dlopen (once per process per digest) and type the entry points."""
    with _loaded_lock:
        cached = _loaded_libs.get(digest)
        if cached is None:
            lib = ctypes.CDLL(so_path)
            word_ptr = ctypes.POINTER(ctypes.c_uint64)
            run = lib.run
            run.argtypes = [word_ptr, word_ptr, ctypes.c_size_t]
            run.restype = None
            run_range = lib.run_range
            run_range.argtypes = [
                word_ptr,
                word_ptr,
                ctypes.c_size_t,
                ctypes.c_size_t,
                ctypes.c_size_t,
            ]
            run_range.restype = None
            cached = (lib, run, run_range)
            _loaded_libs[digest] = cached
        return cached[1], cached[2]


def _shared_executor() -> ThreadPoolExecutor:
    """The process-wide shard executor (lazy, shared by every engine).

    Sized to the host core count: engine ``threads`` values above it still
    produce correct output (the extra shards queue), they just cannot run
    more parallel than the hardware.
    """
    global _executor
    with _executor_lock:
        if _executor is None:
            _executor = ThreadPoolExecutor(
                max_workers=max(2, default_thread_count()),
                thread_name_prefix="repro-native",
            )
        return _executor


# ---------------------------------------------------------------- autotuner
@dataclass(frozen=True)
class MTConfig:
    """One native-runtime configuration the autotuner can pin.

    ``threads`` is the word-shard fan-out of :meth:`NativeCompiledNetlist.
    run_packed`, ``unroll`` the vector lane count of the generated code,
    ``opt_tier`` the compiler flag set (see ``_OPT_TIERS``).
    """

    threads: int
    unroll: int
    opt_tier: str


def _candidate_configs(n_cpus: int) -> List[MTConfig]:
    """The 2–3 configs the autotuner measures, baseline first.

    Baseline is PR-8's engine exactly; the second candidate isolates the
    SIMD win (same single thread, vector code, fast tier); the third adds
    the thread fan-out on multi-core hosts.  Keeping the list this small
    bounds attach-time cost at three cached builds and a few dozen
    calibration runs.
    """
    candidates = [
        MTConfig(threads=1, unroll=1, opt_tier="base"),
        MTConfig(threads=1, unroll=DEFAULT_UNROLL, opt_tier="fast"),
    ]
    if n_cpus > 1:
        candidates.append(
            MTConfig(threads=n_cpus, unroll=DEFAULT_UNROLL, opt_tier="fast")
        )
    return candidates


def _program_tune_digest(program: CompiledNetlist) -> str:
    """The netlist-identity digest autotune records are keyed by.

    Derived from the canonical scalar source only — *not* the flags — so
    one record covers every (unroll, tier) variant of the same program.
    """
    source = generate_c_source(program, unroll=1)
    return hashlib.sha256(source.encode()).hexdigest()[:24]


def autotune_config(
    program: CompiledNetlist,
    *,
    cache_dir: Optional[str] = None,
    force: bool = False,
    calibration_words: int = _CALIBRATION_WORDS,
) -> MTConfig:
    """Measure the candidate configs for ``program`` and pin the winner.

    The winner is persisted as ``<digest>.tune.json`` next to the ``.so``
    cache, keyed by the program's scalar source digest and the host core
    count — a later attach of the same netlist on the same host is a file
    read, not a re-measurement (``force=True`` re-measures).  Candidates
    whose build fails (e.g. the ``fast`` tier's ``-march=native`` on an
    unsupporting toolchain) are skipped; the baseline build failing raises
    :class:`NativeUnavailableError` like any native attach.
    """
    if calibration_words < 1:
        raise ValueError("calibration_words must be positive")
    directory = cache_dir or shared_object_cache_dir()
    digest = _program_tune_digest(program)
    record_path = os.path.join(directory, f"{digest}.tune.json")
    n_cpus = default_thread_count()
    if not force:
        try:
            with open(record_path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            if (
                record.get("version") == _TUNE_VERSION
                and record.get("n_cpus") == n_cpus
            ):
                return MTConfig(
                    threads=int(record["threads"]),
                    unroll=int(record["unroll"]),
                    opt_tier=str(record["opt_tier"]),
                )
        except (OSError, ValueError, KeyError, TypeError):
            pass  # missing/stale/corrupt record: re-measure below
    rng = np.random.default_rng(0xB17AC5)
    calibration = rng.integers(
        0,
        np.iinfo(np.uint64).max,
        size=(max(program.n_primary_inputs, 1), calibration_words),
        dtype=np.uint64,
        endpoint=True,
    )
    best: Optional[MTConfig] = None
    best_time = float("inf")
    timings: Dict[str, float] = {}
    for index, candidate in enumerate(_candidate_configs(n_cpus)):
        try:
            engine = NativeCompiledNetlist(
                program,
                cache_dir=cache_dir,
                threads=candidate.threads,
                unroll=candidate.unroll,
                opt_tier=candidate.opt_tier,
            )
        except NativeUnavailableError:
            if index == 0:
                raise  # no toolchain / broken base tier: not tunable at all
            continue
        engine.run_packed(calibration)  # warm: page in code, spin up threads
        elapsed = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            engine.run_packed(calibration)
            elapsed = min(elapsed, time.perf_counter() - start)
        timings[f"{candidate.threads}x{candidate.unroll}:{candidate.opt_tier}"] = (
            elapsed
        )
        if elapsed < best_time:
            best, best_time = candidate, elapsed
    assert best is not None  # the baseline either measured or raised
    record = {
        "version": _TUNE_VERSION,
        "n_cpus": n_cpus,
        "calibration_words": calibration_words,
        "timings_s": {k: round(v, 9) for k, v in timings.items()},
        **asdict(best),
    }
    os.makedirs(directory, exist_ok=True)
    tmp = f"{record_path}.{os.getpid()}-{threading.get_ident()}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, record_path)
    except OSError:  # pragma: no cover - read-only cache dir: tune anyway
        try:
            os.unlink(tmp)
        except OSError:
            pass
    return best


# ------------------------------------------------------------------- engine
class NativeCompiledNetlist:
    """A :class:`CompiledNetlist` lowered to a compiled shared object.

    Same evaluation surface as the NumPy engine — ``run_packed`` on packed
    words, ``evaluate_outputs``/``predict_batch`` on 0/1 matrices — and
    bit-exact against it.  Unlike the NumPy engine an instance is
    thread-safe: the generated code's state lives on the C stack and
    ``ctypes`` releases the GIL around every call.

    Tier-2 knobs (all default to PR-8 behaviour):

    ``threads``
        Word-shard fan-out of :meth:`run_packed`.  ``> 1`` splits the batch
        into contiguous word ranges evaluated concurrently on the shared
        in-process executor via the ``run_range`` export — bit-exact, since
        packed words are independent.  Batches below
        ``2 * min_words_per_thread`` words never split.
    ``unroll``
        Vector lane count of the generated code (words per statement).
    ``opt_tier``
        Compiler flag tier: ``"base"`` (``-O1``) or ``"fast"``
        (``-O2 -march=native``).

    Build one with ``compile_netlist(netlist, backend="native")`` (or
    ``"auto"``), or :meth:`tuned` / ``backend="native-mt"`` for the
    autotuned multithreaded configuration; constructing directly from an
    already-lowered program is what the worker pool does.  Raises
    :class:`NativeUnavailableError` when the host cannot build.
    """

    backend = "native"

    def __init__(
        self,
        program: CompiledNetlist,
        *,
        cache_dir: Optional[str] = None,
        threads: int = 1,
        unroll: int = 1,
        opt_tier: str = "base",
        min_words_per_thread: int = DEFAULT_MIN_WORDS_PER_THREAD,
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if min_words_per_thread < 1:
            raise ValueError("min_words_per_thread must be >= 1")
        self.program = program
        self.n_primary_inputs = program.n_primary_inputs
        self.n_slots = program.n_slots
        self.n_nodes = program.n_nodes
        self.threads = threads
        self.min_words_per_thread = min_words_per_thread
        self._cache_dir = cache_dir
        self._apply_build(unroll=unroll, opt_tier=opt_tier)
        if threads > 1:
            self.backend = "native-mt"

    def _apply_build(self, *, unroll: int, opt_tier: str) -> None:
        self.unroll = unroll
        self.opt_tier = opt_tier
        self.c_source = generate_c_source(self.program, unroll=unroll)
        self.digest, self.shared_object = build_shared_object(
            self.c_source, cache_dir=self._cache_dir, opt_tier=opt_tier
        )
        self._run, self._run_range = _load_entry_points(
            self.digest, self.shared_object
        )

    # ------------------------------------------------------------ autotuning
    @classmethod
    def tuned(
        cls,
        program: CompiledNetlist,
        *,
        cache_dir: Optional[str] = None,
        max_threads: Optional[int] = None,
        min_words_per_thread: int = DEFAULT_MIN_WORDS_PER_THREAD,
    ) -> "NativeCompiledNetlist":
        """The autotuned engine for ``program`` (backend ``"native-mt"``).

        Runs :func:`autotune_config` (a cache-file read after the first
        attach of a netlist on a host) and builds the winner.
        ``max_threads`` caps the pinned thread count without re-tuning —
        the worker pool uses it to divide the host between processes and
        threads instead of oversubscribing.
        """
        config = autotune_config(program, cache_dir=cache_dir)
        threads = config.threads
        if max_threads is not None:
            threads = max(1, min(threads, max_threads))
        instance = cls(
            program,
            cache_dir=cache_dir,
            threads=threads,
            unroll=config.unroll,
            opt_tier=config.opt_tier,
            min_words_per_thread=min_words_per_thread,
        )
        instance.backend = "native-mt"
        instance.tuned_config = config
        return instance

    def tune(self, *, force: bool = True) -> MTConfig:
        """Re-run the autotuner for this program and adopt the winner.

        ``force=True`` (default) re-measures even when a persisted record
        exists — the explicit knob for hosts whose load profile changed.
        Returns the adopted config; the instance's ``threads``/``unroll``/
        ``opt_tier`` and loaded code are switched in place.
        """
        config = autotune_config(
            self.program, cache_dir=self._cache_dir, force=force
        )
        self._apply_build(unroll=config.unroll, opt_tier=config.opt_tier)
        self.threads = config.threads
        self.backend = "native-mt"
        self.tuned_config = config
        return config

    # ---------------------------------------------------------- statistics
    @property
    def n_outputs(self) -> int:
        return self.program.n_outputs

    @property
    def n_groups(self) -> int:
        return self.program.n_groups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NativeCompiledNetlist({self.n_nodes} LUTs, "
            f"{self.n_primary_inputs} inputs, {self.n_outputs} outputs, "
            f"threads={self.threads}, unroll={self.unroll}, "
            f"tier={self.opt_tier}, so={self.digest})"
        )

    # ---------------------------------------------------------- evaluation
    def run_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Evaluate on packed inputs; returns packed output words.

        Same contract as :meth:`CompiledNetlist.run_packed`: input shape
        ``(n_primary_inputs, n_words)``, bits past the last sample
        unspecified in the result.  With ``threads > 1`` the word axis is
        split into contiguous shards evaluated concurrently — the shards
        write disjoint ``[lo, hi)`` column ranges of the same output
        planes, so the result is bit-identical to the serial call.
        """
        packed_inputs = np.ascontiguousarray(packed_inputs, dtype=np.uint64)
        if (
            packed_inputs.ndim != 2
            or packed_inputs.shape[0] != self.n_primary_inputs
        ):
            raise ValueError(
                f"packed_inputs must have shape ({self.n_primary_inputs}, "
                f"n_words), got {packed_inputs.shape}"
            )
        words = packed_inputs.shape[1]
        out = np.empty((self.n_outputs, words), dtype=np.uint64)
        if not words:
            return out
        word_ptr = ctypes.POINTER(ctypes.c_uint64)
        in_ptr = packed_inputs.ctypes.data_as(word_ptr)
        out_ptr = out.ctypes.data_as(word_ptr)
        n_shards = 1
        if self.threads > 1:
            n_shards = min(self.threads, words // self.min_words_per_thread)
        if n_shards <= 1:
            self._run(in_ptr, out_ptr, words)
            return out
        executor = _shared_executor()
        edges = [(i * words) // n_shards for i in range(n_shards + 1)]
        futures = [
            executor.submit(self._run_range, in_ptr, out_ptr, lo, hi, words)
            for lo, hi in zip(edges, edges[1:])
            if hi > lo
        ]
        first_error = None
        for future in futures:
            try:
                future.result()
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return out

    def evaluate_outputs(self, X_bits: np.ndarray) -> np.ndarray:
        """Bit-exact packed counterpart of ``LUTNetlist.evaluate_outputs``."""
        X_bits = check_binary_matrix(X_bits, "X_bits")
        if X_bits.shape[1] != self.n_primary_inputs:
            raise ValueError(
                f"expected {self.n_primary_inputs} primary inputs, "
                f"got {X_bits.shape[1]}"
            )
        packed = pack_bits(X_bits)
        out = self.run_packed(packed)
        return unpack_bits(out, X_bits.shape[0])

    def predict_batch(self, X_bits: np.ndarray) -> np.ndarray:
        """Alias of :meth:`evaluate_outputs` (the shared batched entry point)."""
        return self.evaluate_outputs(X_bits)
