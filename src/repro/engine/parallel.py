"""A shared, model-agnostic worker pool for compiled LUT netlists.

Packed evaluation is embarrassingly parallel across words: bit ``s % 64`` of
word ``s // 64`` only ever combines with other bits of the *same* word, so
any contiguous word range of the packed batch can be evaluated independently
and the per-range outputs concatenated — bit for bit what the serial engine
produces.

Since PR 5 that fact is exploited by two classes instead of one:

:class:`WorkerPool`
    A standalone pool of worker processes (or threads) that is **not** bound
    to any netlist.  Models are *attached* by id — each worker holds a
    registry of compiled engines, built lazily per model — and every task is
    a ``(model_id, word_range)`` shard, so one pool serves many netlists and
    multiple in-flight requests concurrently.  This is the substrate of the
    multi-model serving layer: one box, one pool, N models.

:class:`ShardedEngine`
    A thin per-model view over a pool.  The PR-3 constructor is preserved —
    ``ShardedEngine(netlist, n_workers=4)`` creates a private single-model
    pool, exactly the old behaviour — and ``ShardedEngine(netlist,
    pool=shared)`` attaches the model to a shared pool instead.

Backends
========

``"process"`` (default where ``fork`` is available)
    A ``multiprocessing`` pool.  Workers compile their own
    :class:`~repro.engine.compiled_netlist.CompiledNetlist` per attached
    model (netlists attached before the fork are inherited, not pickled) and
    exchange batches through ``multiprocessing.shared_memory`` buffers, so
    per-call IPC is a handful of integers — no pickling of sample data.
    CPython's GIL never serialises the workers.

``"thread"``
    A ``ThreadPoolExecutor`` over per-shard engine instances (the compiled
    engine's scratch reuse makes a single instance thread-unsafe).  NumPy
    releases the GIL inside large bitwise kernels, but the many small
    dispatches of the mux cascade still contend; this backend is the
    portable fallback, not the fast path.

``"serial"``
    No pool at all — each model's serial engine, for debugging and tiny
    batches.

Batches too small to be worth splitting (fewer than
``min_words_per_worker`` packed words per worker) run serially whatever the
backend, so the executor is safe to leave enabled for ragged traffic.

Orthogonal to the pool flavour, each attached model picks its *evaluation
engine* via ``engine_backend``: the NumPy word-op interpreter (default),
the generated-C native engine of :mod:`repro.engine.native` (``"native"`` /
``"auto"``), or the autotuned multithreaded native runtime
(``"native-mt"``).  The parent builds the shared object once at attach
time; workers — forked or threaded — regenerate the same source and reuse
the digest-keyed cache, so a native model costs one C build per host,
total.

``native-mt`` and the fork question
===================================

The ``native-mt`` engine shards ``run_packed`` across word ranges on an
in-process thread pool (ctypes releases the GIL, so the threads genuinely
run in parallel) — which means it can saturate the host on its own,
without this module's fork+shm machinery.  Two rules keep the layers from
fighting over the same cores:

* **The pool does not fork for a model whose engine already threads.**
  When an attached model's serial engine is multithreaded (autotuned
  ``threads > 1``), :meth:`WorkerPool.run_packed` routes every batch down
  the serial path — the engine's own thread shards replace the pool's
  process shards.  Pass ``prefer_threads=False`` to the pool to override
  the heuristic and force process sharding anyway.
* **When processes *are* used, worker-side threads are capped.**  A model
  attached with ``engine_backend="native-mt"`` on a multi-worker pool
  ships workers the backend string ``"native-mt@{cap}"`` with
  ``cap = cpu_count // n_workers`` (min 1), so processes × threads never
  oversubscribes the host by default.

The fork + shared-memory contract
=================================

The process backend relies on five invariants that new contributors should
not break:

1. **Netlists cross the fork, samples never do.**  The pool is forked with
   the *optimised* netlists of every model attached so far as the
   initializer argument; workers compile each model's program lazily on its
   first shard.  Per-call messages are a model key, two segment names and a
   word range.  Sample data never goes through a pipe.
2. **Models attached after the fork re-attach lazily.**  A model registered
   once the pool is already running cannot be fork-inherited, so its
   optimised netlist is pickled once in the parent and shipped inside each
   task; a worker that has not seen the model unpickles and compiles it on
   first contact, then serves from its local registry (the payload is
   ignored thereafter).  Each shard reports its worker's pid back, and the
   parent stops shipping the payload as soon as every worker has confirmed
   a copy — so the per-task cost decays to the usual handful of integers
   after the first call or two.  Detaching frees the parent's references
   immediately; worker-side copies are reclaimed when the pool closes
   (attach keys are unique per attach, so a stale worker copy can never
   serve a new model).
3. **Batches travel through named shared memory.**  The parent owns a
   free-list of segment pairs (``in``/``out``) — one pair per concurrently
   in-flight evaluation, leased per call under a lock — and workers attach
   by name, wrap them in ``np.ndarray`` views and write disjoint
   ``[lo, hi)`` column ranges of the output.  No locks are needed
   worker-side because shards never overlap.
4. **The pool is persistent and thread-safe.**  It is created lazily on the
   first sharded call and then *outlives the call*: a serving layer issuing
   thousands of small evaluations for many models pays the fork cost once
   (:meth:`WorkerPool.warm_up` lets a server pay it at startup instead of
   on the first request).  Concurrent :meth:`WorkerPool.run_packed` calls
   from different threads — one per model queue in the multi-model server —
   interleave their shards on the same workers.  Cleanup is owned by a
   ``weakref.finalize`` on a plain resource dict so abandoned pools are
   reclaimed without keeping the pool alive.
5. **Failure degrades, it does not crash.**  If ``/dev/shm`` is missing or
   the pool dies mid-flight, the pool permanently falls back to the thread
   backend and re-runs the batch; worker-side model errors propagate
   unchanged.

Usage
=====

>>> with WorkerPool(n_workers=4) as pool:
...     a = ShardedEngine(netlist_a, pool=pool)    # multi-model serving
...     b = ShardedEngine(netlist_b, pool=pool)
...     labels = a.predict_batch(X_a)              # == serial, bit for bit
...
>>> with ShardedEngine(netlist, n_workers=4) as engine:   # single model
...     labels = engine.predict_batch(X_bits)

Both own OS resources (worker processes, shared memory); close them or use
context managers.  Closing a :class:`ShardedEngine` view over a shared pool
detaches its model but leaves the pool running.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import pickle
import threading
import warnings
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.netlist import LUTNetlist
from repro.engine.bitpack import pack_bits, unpack_bits
from repro.engine.compiled_netlist import ENGINE_BACKENDS, CompiledNetlist
from repro.engine.passes import optimize_netlist
from repro.utils.validation import check_binary_matrix

__all__ = ["ShardedEngine", "WorkerPool", "shard_bounds"]


def _build_engine(
    netlist: LUTNetlist, engine_backend: str, *, strict: bool = False
):
    """Compile an already-optimised ``netlist`` for ``engine_backend``.

    Besides the public backend names, this accepts the worker-side form
    ``"native-mt@N"`` — the autotuned engine with its thread count capped
    at ``N``, which is how a multi-worker pool divides the host between
    processes and threads (see the module docstring).

    ``strict`` is the parent-side attach contract: ``engine_backend=
    "native"``/``"native-mt"`` must surface the build failure.
    Worker-side (and ``"auto"`` everywhere) a failed native build degrades
    to the NumPy engine instead — bit-exact, just slower — so a worker
    missing the toolchain the parent had can still serve its shards.
    """
    program = CompiledNetlist.from_netlist(netlist)
    if engine_backend == "numpy":
        return program
    base, _, cap_text = engine_backend.partition("@")
    try:
        from repro.engine.native import NativeCompiledNetlist

        if base == "native-mt":
            max_threads = int(cap_text) if cap_text else None
            return NativeCompiledNetlist.tuned(program, max_threads=max_threads)
        return NativeCompiledNetlist(program)
    except Exception:
        if strict and base in ("native", "native-mt"):
            raise
        return program


def shard_bounds(n_words: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``n_words`` into ``n_shards`` near-equal contiguous ranges."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    edges = [(i * n_words) // n_shards for i in range(n_shards + 1)]
    return [
        (edges[i], edges[i + 1])
        for i in range(n_shards)
        if edges[i + 1] > edges[i]
    ]


# --------------------------------------------------------------------------
# process-pool worker side.  Module-level state: each worker process holds
# its model registry (optimised netlists and the engines compiled from
# them, keyed by attach key) and its current shared-memory attachments.
# --------------------------------------------------------------------------
_WORKER: dict = {}

#: worker-side cap on cached shared-memory attachments; the parent's
#: free-list reuses a handful of segment pairs, so anything beyond this is
#: a segment the parent has already replaced or unlinked
_WORKER_SHM_CACHE = 16


def _worker_init(netlists: Dict[str, LUTNetlist]) -> None:
    _WORKER["netlists"] = dict(netlists)
    _WORKER["engines"] = {}
    _WORKER["shm"] = {}


def _worker_engine(key: str, payload: Optional[bytes], engine_backend: str):
    """This worker's compiled engine for attach key ``key`` (lazy).

    Fork-inherited netlists compile on first contact; models attached after
    the fork arrive pickled in ``payload`` and re-attach lazily.  A native
    model is a shared-object *cache hit* here, not a rebuild: the parent
    compiled the digest-keyed .so at attach time, the worker regenerates
    the same source, hashes it, and ``dlopen``\\ s the cached build.
    """
    engine = _WORKER["engines"].get(key)
    if engine is None:
        netlist = _WORKER["netlists"].get(key)
        if netlist is None:
            if payload is None:
                raise RuntimeError(
                    f"worker holds no netlist for model key {key!r}"
                )
            netlist = pickle.loads(payload)
            _WORKER["netlists"][key] = netlist
        engine = _build_engine(netlist, engine_backend)
        _WORKER["engines"][key] = engine
    return engine


def _worker_attach_shm(name: str) -> shared_memory.SharedMemory:
    shm = _WORKER["shm"].get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        _WORKER["shm"][name] = shm
    return shm


def _worker_evict(retired: Tuple[str, ...]) -> None:
    """Drop detached models from this worker's registries.

    Without this, a model attached after the fork (netlist shipped in the
    task payload) would live in ``_WORKER["netlists"]``/``["engines"]``
    forever after the parent detached it — version churn through a
    long-lived pool would grow worker memory without bound.  Attach keys
    are unique per attach, so a retired key can never name a live model.
    """
    for key in retired:
        _WORKER["netlists"].pop(key, None)
        _WORKER["engines"].pop(key, None)


def _worker_run(
    task: Tuple[
        str,
        Optional[bytes],
        str,
        str,
        str,
        int,
        int,
        int,
        int,
        int,
        Tuple[str, ...],
    ],
) -> int:
    """Evaluate one shard; returns this worker's pid (the parent uses the
    pid set to decide when a lazily-attached model's payload has reached
    every worker and can stop being shipped — and, symmetrically, when a
    detached model's eviction notice has reached every worker)."""
    (
        key,
        payload,
        engine_backend,
        in_name,
        out_name,
        n_inputs,
        n_outputs,
        words,
        lo,
        hi,
        retired,
    ) = task
    _worker_evict(retired)
    engine = _worker_engine(key, payload, engine_backend)
    shm_in = _worker_attach_shm(in_name)
    shm_out = _worker_attach_shm(out_name)
    # buffers are grow-only, so they may be larger than this batch needs
    packed = np.ndarray(
        (n_inputs, words), dtype=np.uint64, buffer=shm_in.buf
    )
    out = np.ndarray((n_outputs, words), dtype=np.uint64, buffer=shm_out.buf)
    out[:, lo:hi] = engine.run_packed(packed[:, lo:hi])
    # bound the attachment cache: segments beyond the cap are ones the
    # parent has replaced with larger buffers (a live name just re-attaches)
    if len(_WORKER["shm"]) > _WORKER_SHM_CACHE:
        for name in [
            n for n in _WORKER["shm"] if n not in (in_name, out_name)
        ]:
            _WORKER["shm"].pop(name).close()
    return os.getpid()


def _worker_census(retired: Tuple[str, ...]) -> Tuple[int, int, int]:
    """``(pid, n_netlists, n_engines)`` for this worker's registries.

    Applies pending evictions first, so the census doubles as an eviction
    pump for pools with no traffic (see :meth:`WorkerPool.worker_registry_sizes`).
    """
    _worker_evict(retired)
    return os.getpid(), len(_WORKER["netlists"]), len(_WORKER["engines"])


def _release_resources(resources: dict) -> None:
    """Tear down a pool-and-shared-memory holder (idempotent).

    Module-level so :func:`weakref.finalize` can call it without keeping the
    owning :class:`WorkerPool` alive — abandoned pools are then garbage
    collected normally and their worker processes reclaimed, while pools
    still alive at interpreter exit are cleaned up by the finalizer's
    built-in atexit hook.
    """
    pool = resources.pop("pool", None)
    if pool is not None:
        pool.terminate()
        pool.join()
    threads = resources.pop("thread_pool", None)
    if threads is not None:
        threads.shutdown(wait=True)
    for shm in resources.pop("shm_all", []):
        try:
            shm.close()
            shm.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
    resources["pool"] = None
    resources["thread_pool"] = None
    resources["shm_all"] = []
    resources["shm_free"] = []


@dataclass
class _PoolModel:
    """Parent-side record of one attached model."""

    model_id: str
    #: unique per attach — a re-attached id never aliases a stale worker copy
    key: str
    netlist: LUTNetlist
    serial: object  # CompiledNetlist or NativeCompiledNetlist
    #: resolved engine backend label ("numpy", "native" or "native-mt")
    engine_backend: str = "numpy"
    #: backend string shipped to workers — equals ``engine_backend`` except
    #: for native-mt on a multi-worker pool, where it carries the
    #: per-worker thread cap as ``"native-mt@N"``
    worker_backend: str = "numpy"
    #: pickled optimised netlist for lazy re-attach; ``None`` when the
    #: netlist is (or will be, at the fork) fork-inherited, and cleared
    #: again once every worker has confirmed compiling its copy
    payload: Optional[bytes] = None
    #: pids of workers that have executed a shard for this model while the
    #: payload was live — at ``n_workers`` distinct pids the payload drops
    confirmed_pids: set = field(default_factory=set)
    #: free-list of thread-backend engine instances (the NumPy engine's
    #: scratch is not thread-safe, so concurrent shards each lease their own)
    thread_engines: List[object] = field(default_factory=list)


class WorkerPool:
    """A persistent, model-agnostic pool executing ``(model, words)`` shards.

    Parameters
    ----------
    n_workers:
        Shard count; defaults to the CPU count.  ``1`` degenerates to the
        serial engine for every model.
    backend:
        ``"process"``, ``"thread"`` or ``"serial"``; ``None`` picks
        ``"process"`` where ``fork`` is available, else ``"thread"``.
    min_words_per_worker:
        Batches with fewer packed words than ``n_workers *
        min_words_per_worker`` run serially — below that, pool latency
        dominates any parallel win.
    prefer_threads:
        ``None`` (default) applies the oversubscription heuristic: a model
        whose serial engine already threads in-process (autotuned
        ``native-mt`` with ``threads > 1``) is served on the serial path
        instead of being forked across workers — its own thread shards
        saturate the host without the fork+shm tax.  ``True`` states the
        same preference explicitly; ``False`` disables it, forcing such
        models through the process/thread pool (whose workers then run
        with capped thread counts — see the module docstring).

    Models are attached with :meth:`attach` (the optimisation pipeline runs
    once, in the parent) and evaluated with :meth:`run_packed`; concurrent
    calls for different models are allowed and interleave their shards on
    the same workers.
    """

    _auto_ids = itertools.count()

    def __init__(
        self,
        n_workers: Optional[int] = None,
        backend: Optional[str] = None,
        *,
        min_words_per_worker: int = 4,
        prefer_threads: Optional[bool] = None,
    ) -> None:
        if backend not in (None, "process", "thread", "serial"):
            raise ValueError(f"unknown backend {backend!r}")
        if n_workers is not None and n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if min_words_per_worker <= 0:
            raise ValueError("min_words_per_worker must be positive")
        self.n_workers = n_workers or os.cpu_count() or 1
        if backend is None:
            backend = (
                "process"
                if "fork" in mp.get_all_start_methods()
                else "thread"
            )
        if self.n_workers == 1:
            backend = "serial"
        self.backend = backend
        self.min_words_per_worker = min_words_per_worker
        self.prefer_threads = prefer_threads
        self._models: Dict[str, _PoolModel] = {}
        # worker-side eviction ledger: attach-key of each detached model →
        # set of worker pids confirmed to have dropped it.  Keys ride along
        # with every task (and every census probe) until all n_workers pids
        # have confirmed, then the ledger entry is deleted.
        self._retired: Dict[str, set] = {}
        self._attach_seq = itertools.count()
        # One lock guards pool creation, the shm free-list and the model
        # registry; evaluation itself (pool.map / executor.submit) runs
        # outside it, so concurrent multi-model calls overlap fully.
        self._lock = threading.Lock()
        # The lazily created pool and shared-memory segments live in a plain
        # dict so the finalizer below can release them without referencing
        # (and thereby immortalising) the pool object itself.
        self._resources: dict = {
            "pool": None,
            "thread_pool": None,
            "shm_all": [],
            "shm_free": [],
        }
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release_resources, self._resources
        )

    # -------------------------------------------------------- model registry
    def attach(
        self,
        model_id: Optional[str],
        netlist: LUTNetlist,
        *,
        passes: Optional[Sequence] = None,
        max_lut_inputs: Optional[int] = None,
        engine_backend: str = "numpy",
    ) -> str:
        """Register ``netlist`` under ``model_id`` and return the id.

        The optimisation pipeline (see
        :func:`~repro.engine.passes.optimize_netlist`) runs once here; all
        workers execute the same optimised program.  ``model_id=None``
        generates a unique one.  Attaching an id that is already attached
        raises — detach first (re-attaching then gets a fresh worker-side
        key, so stale worker copies can never serve the new model).

        ``engine_backend`` picks the per-worker evaluation engine:
        ``"native"`` compiles the generated-C shared object here (so the
        build cost is paid once, at attach — forked workers regenerate the
        same source and hit the digest-keyed .so cache), ``"native-mt"``
        runs the autotuner and serves the multithreaded native runtime
        (workers get thread counts capped at ``cpu_count // n_workers`` so
        processes × threads never oversubscribes), ``"auto"`` degrades to
        ``"numpy"`` when the host cannot build.  The resolved choice is
        readable via :meth:`engine_backend`, the in-process thread count
        via :meth:`engine_threads`.
        """
        self._check_open()
        if model_id is not None and (
            not isinstance(model_id, str) or not model_id
        ):
            raise ValueError("model_id must be a non-empty string")
        if engine_backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"unknown engine backend {engine_backend!r} "
                f"(choose from {ENGINE_BACKENDS})"
            )
        optimized = optimize_netlist(
            netlist, passes=passes, max_lut_inputs=max_lut_inputs
        )
        serial = _build_engine(optimized, engine_backend, strict=True)
        worker_backend = serial.backend
        if worker_backend == "native-mt" and self.n_workers > 1:
            # divide the host between pool processes and in-process threads
            cap = max(1, (os.cpu_count() or 1) // self.n_workers)
            worker_backend = f"native-mt@{cap}"
        entry = _PoolModel(
            model_id="",  # assigned under the lock below
            key=f"#{next(self._attach_seq)}",
            netlist=optimized,
            serial=serial,
            engine_backend=serial.backend,
            worker_backend=worker_backend,
        )

        def insert() -> bool:
            """Register under the lock; False when the forked pool needs a
            payload first (pickled *outside* the lock — it can be large,
            and this lock also gates every other model's evaluations)."""
            if entry.model_id != model_id and model_id is not None:
                entry.model_id = model_id
            if model_id is None:
                while True:
                    entry.model_id = f"model-{next(self._auto_ids)}"
                    if entry.model_id not in self._models:
                        break
            elif model_id in self._models:
                raise ValueError(f"model {model_id!r} is already attached")
            if self._resources["pool"] is not None and entry.payload is None:
                return False  # forked: lazy re-attach, payload required
            self._models[entry.model_id] = entry
            return True

        with self._lock:
            inserted = insert()
        if not inserted:
            entry.payload = pickle.dumps(optimized)
            with self._lock:
                insert()
        return entry.model_id

    def detach(self, model_id: str) -> None:
        """Drop a model from the registry (its in-flight calls complete).

        With a live process pool the model's worker-side copies (netlist +
        compiled engine, keyed by the unique attach key) are evicted too:
        the key is recorded in a retirement ledger that piggybacks on every
        subsequent task, and each worker drops its copy before its next
        evaluation.  Serving stacks that hot-swap model versions through a
        long-lived pool would otherwise grow worker memory monotonically.
        """
        with self._lock:
            entry = self._models.pop(model_id, None)
            if entry is not None and self._resources["pool"] is not None:
                self._retired[entry.key] = set()

    @property
    def model_ids(self) -> List[str]:
        with self._lock:
            return list(self._models)

    def _confirm_retired_locked(
        self, retired: Tuple[str, ...], worker_pids
    ) -> None:
        """Record which workers have seen the eviction notices in
        ``retired``; a key confirmed by every worker leaves the ledger
        (callers hold ``self._lock``)."""
        for key in retired:
            pids = self._retired.get(key)
            if pids is not None:
                pids.update(worker_pids)
                if len(pids) >= self.n_workers:
                    del self._retired[key]

    def worker_registry_sizes(self, rounds: int = 4) -> Dict[int, Tuple[int, int]]:
        """Sample each worker's registry sizes: pid → (n_netlists, n_engines).

        Sends eviction-only probe tasks through the process pool, so this
        doubles as an eviction pump: pending retirements are applied in
        every sampled worker even on an idle pool.  Probes are mapped with
        ``chunksize=1`` over ``rounds`` passes so each pass tends to touch
        every worker, but a fast worker can still absorb a slow worker's
        probe — treat the result as a sample of the worker set, not a
        guaranteed full census.  Returns ``{}`` when no process pool is
        live (serial/thread backends keep no worker-side registries).
        """
        self._check_open()
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        with self._lock:
            pool = self._resources["pool"]
            retired = tuple(self._retired)
        if pool is None:
            return {}
        sizes: Dict[int, Tuple[int, int]] = {}
        try:
            for _ in range(rounds):
                results = pool.map(
                    _worker_census, [retired] * self.n_workers, chunksize=1
                )
                pids = [pid for pid, _, _ in results]
                for pid, n_netlists, n_engines in results:
                    sizes[pid] = (n_netlists, n_engines)
                with self._lock:
                    self._confirm_retired_locked(retired, pids)
                if len(sizes) >= self.n_workers:
                    break
        except (OSError, mp.ProcessError, ValueError):
            # pool died or was torn down by a concurrent fallback: return
            # what was sampled — callers use this for observability only
            pass
        return sizes

    def _entry(self, model_id: str) -> _PoolModel:
        with self._lock:
            entry = self._models.get(model_id)
        if entry is None:
            raise KeyError(
                f"model {model_id!r} is not attached to this WorkerPool "
                f"(attached: {sorted(self.model_ids)})"
            )
        return entry

    def serial_engine(self, model_id: str):
        """The single-threaded engine all of a model's shards match."""
        return self._entry(model_id).serial

    def engine_backend(self, model_id: str) -> str:
        """The resolved engine backend serving ``model_id``
        (``"numpy"``, ``"native"`` or ``"native-mt"``)."""
        return self._entry(model_id).engine_backend

    def engine_threads(self, model_id: str) -> int:
        """The in-process thread count of ``model_id``'s serial engine
        (1 for every backend except an autotuned ``native-mt``)."""
        return getattr(self._entry(model_id).serial, "threads", 1)

    def optimized_netlist(self, model_id: str) -> LUTNetlist:
        """The post-pipeline netlist the pool serves for ``model_id``."""
        return self._entry(model_id).netlist

    # ------------------------------------------------------------- lifecycle
    def warm_up(self) -> "WorkerPool":
        """Start the worker pool now instead of on the first sharded call.

        Long-lived servers call this once at startup (after attaching their
        models) so the fork cost is paid before traffic arrives rather than
        inside the first request's latency budget — and so every model
        attached so far is fork-inherited instead of lazily re-shipped.
        No-op for the serial backend and after fallback to threads.
        """
        self._check_open()
        if self.backend == "process":
            try:
                self._ensure_process_pool()
            except (OSError, mp.ProcessError) as error:
                self._fall_back_to_threads(error, stacklevel=3)
        return self

    def close(self) -> None:
        """Shut down workers and release shared memory (idempotent)."""
        with self._lock:
            if self._closed:
                return
            # flagged under the lock: an in-flight fallback checks it there
            # before creating an executor, so nothing can repopulate the
            # resources dict after the finalizer below has released it
            self._closed = True
        self._finalizer()
        with self._lock:
            self._models = {}
            self._retired = {}

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this WorkerPool has been closed")

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerPool({self.n_workers} x {self.backend}, "
            f"{len(self._models)} models)"
        )

    # ------------------------------------------------------------ evaluation
    def run_packed(
        self, model_id: str, packed_inputs: np.ndarray
    ) -> np.ndarray:
        """Sharded ``CompiledNetlist.run_packed`` for one attached model.

        Thread-safe: the serving layer calls this concurrently from one
        executor thread per model queue.  (Per *model*, callers must
        serialise their own calls on the serial path — each model's serial
        engine reuses scratch buffers, which is exactly the discipline the
        per-model batching queue already enforces.)
        """
        self._check_open()
        entry = self._entry(model_id)
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        n_inputs = entry.serial.n_primary_inputs
        if packed_inputs.ndim != 2 or packed_inputs.shape[0] != n_inputs:
            raise ValueError(
                f"packed_inputs for model {model_id!r} must have shape "
                f"({n_inputs}, n_words), got {packed_inputs.shape}"
            )
        words = packed_inputs.shape[1]
        bounds = shard_bounds(words, self.n_workers) if words else []
        if (
            self.backend == "serial"
            or len(bounds) <= 1
            or words < self.n_workers * self.min_words_per_worker
            or self._prefer_in_process(entry)
        ):
            return entry.serial.run_packed(packed_inputs)
        if self.backend == "process":
            return self._run_process(entry, packed_inputs, bounds)
        return self._run_thread(entry, packed_inputs, bounds)

    def _prefer_in_process(self, entry: _PoolModel) -> bool:
        """Whether this model should skip the pool and thread in-process.

        The oversubscription heuristic (see the module docstring): an
        engine that already shards across in-process threads saturates the
        host without forking, so the pool stands aside unless
        ``prefer_threads=False`` explicitly forces process sharding.
        """
        if self.prefer_threads is False:
            return False
        return getattr(entry.serial, "threads", 1) > 1

    def evaluate_outputs(self, model_id: str, X_bits: np.ndarray) -> np.ndarray:
        """Bit-exact sharded ``LUTNetlist.evaluate_outputs`` for one model."""
        entry = self._entry(model_id)
        X_bits = check_binary_matrix(X_bits, "X_bits")
        if X_bits.shape[1] != entry.serial.n_primary_inputs:
            raise ValueError(
                f"model {model_id!r} expects "
                f"{entry.serial.n_primary_inputs} primary inputs, "
                f"got {X_bits.shape[1]}"
            )
        out = self.run_packed(model_id, pack_bits(X_bits))
        return unpack_bits(out, X_bits.shape[0])

    # ------------------------------------------------------- process backend
    def _run_process(
        self,
        entry: _PoolModel,
        packed: np.ndarray,
        bounds: List[Tuple[int, int]],
    ) -> np.ndarray:
        words = packed.shape[1]
        n_inputs = entry.serial.n_primary_inputs
        n_outputs = entry.serial.n_outputs
        try:
            pool = self._ensure_process_pool()
            pair = self._lease_shm(n_inputs * words * 8, n_outputs * words * 8)
            try:
                shm_in, shm_out = pair
                view_in = np.ndarray(
                    packed.shape, dtype=np.uint64, buffer=shm_in.buf
                )
                view_in[:] = packed
                with self._lock:
                    retired = tuple(self._retired)
                tasks = [
                    (
                        entry.key,
                        entry.payload,
                        entry.worker_backend,
                        shm_in.name,
                        shm_out.name,
                        n_inputs,
                        n_outputs,
                        words,
                        lo,
                        hi,
                        retired,
                    )
                    for lo, hi in bounds
                ]
                worker_pids = pool.map(_worker_run, tasks)
                if entry.payload is not None or retired:
                    with self._lock:
                        if entry.payload is not None:
                            # lazy re-attach bookkeeping: once every worker
                            # has compiled this model, stop shipping the
                            # payload
                            entry.confirmed_pids.update(worker_pids)
                            if len(entry.confirmed_pids) >= self.n_workers:
                                entry.payload = None
                        self._confirm_retired_locked(retired, worker_pids)
                view_out = np.ndarray(
                    (n_outputs, words), dtype=np.uint64, buffer=shm_out.buf
                )
                return view_out.copy()
            finally:
                self._return_shm(pair)
        except (OSError, mp.ProcessError) as error:
            # no /dev/shm, fork refused, pool died mid-flight: degrade to
            # threads permanently rather than failing the prediction.
            # Worker-side model errors (ValueError etc.) propagate as-is.
            self._fall_back_to_threads(error, stacklevel=4)
            return self._run_thread(entry, packed, bounds)
        except ValueError:
            # a concurrent call's fallback may have terminated the pool
            # under us, which surfaces as ValueError("Pool not running");
            # only then is this a degrade-don't-crash case — a ValueError
            # with the pool still registered is a worker-side model error
            # and must propagate
            with self._lock:
                pool_gone = self._resources["pool"] is None
            if not pool_gone:
                raise
            return self._run_thread(entry, packed, bounds)

    def _fall_back_to_threads(self, error: BaseException, stacklevel: int) -> None:
        warnings.warn(
            f"WorkerPool process backend failed ({error!r}); "
            "falling back to the thread backend",
            RuntimeWarning,
            stacklevel=stacklevel,
        )
        with self._lock:
            self.backend = "thread"
            pool = self._resources["pool"]
            self._resources["pool"] = None
            # worker registries die with the pool — nothing left to evict
            self._retired.clear()
            # the thread backend never leases shared memory again: unlink
            # the free pairs now; pairs still leased by concurrent calls
            # are unlinked when returned (see _return_shm)
            stale = self._resources["shm_free"]
            self._resources["shm_free"] = []
            for shm_pair in stale:
                for shm in shm_pair:
                    self._resources["shm_all"].remove(shm)
        for shm_pair in stale:
            for shm in shm_pair:
                try:
                    shm.close()
                    shm.unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
        if pool is not None:
            pool.terminate()
            pool.join()

    def _ensure_process_pool(self):
        with self._lock:
            if self._resources["pool"] is None:
                # Start the shared-memory resource tracker *before* forking,
                # so every worker inherits it: attachments then deduplicate
                # into one tracker cache entry that the parent's unlink
                # retires, instead of each worker spawning a tracker that
                # warns about "leaked" segments it never owned at shutdown.
                try:  # pragma: no cover - private but stable since 3.8
                    from multiprocessing import resource_tracker

                    resource_tracker.ensure_running()
                except Exception:
                    pass
                inherited = {
                    entry.key: entry.netlist
                    for entry in self._models.values()
                }
                ctx = mp.get_context("fork")
                self._resources["pool"] = ctx.Pool(
                    self.n_workers,
                    initializer=_worker_init,
                    initargs=(inherited,),
                )
                # everything in the snapshot is now fork-inherited
                for entry in self._models.values():
                    entry.payload = None
                # fresh workers inherited only live models — nothing to evict
                self._retired.clear()
            return self._resources["pool"]

    def _lease_shm(
        self, in_bytes: int, out_bytes: int
    ) -> Tuple[shared_memory.SharedMemory, shared_memory.SharedMemory]:
        """Borrow an (in, out) segment pair big enough for one evaluation.

        Pairs live on a free-list so concurrent evaluations never share a
        buffer; too-small pairs are retired (workers drop their stale
        attachments via the bounded cache) and replaced with 2x headroom so
        ragged batch sizes don't reallocate every call.
        """
        in_bytes, out_bytes = max(in_bytes, 8), max(out_bytes, 8)
        with self._lock:
            free = self._resources["shm_free"]
            for index, (shm_in, shm_out) in enumerate(free):
                if shm_in.size >= in_bytes and shm_out.size >= out_bytes:
                    return free.pop(index)
            if free:
                # retire the smallest stale pair rather than accumulating
                smallest = min(
                    free, key=lambda pair: pair[0].size + pair[1].size
                )
                free.remove(smallest)
                for shm in smallest:
                    self._resources["shm_all"].remove(shm)
                    shm.close()
                    shm.unlink()
            pair = (
                shared_memory.SharedMemory(create=True, size=in_bytes * 2),
                shared_memory.SharedMemory(create=True, size=out_bytes * 2),
            )
            self._resources["shm_all"].extend(pair)
            return pair

    def _return_shm(self, pair) -> None:
        with self._lock:
            # re-list only while the process backend is alive and the pair
            # still tracked; after a fallback (or close) the lease is the
            # last reference, so retire the segments instead of hoarding
            if (
                self.backend == "process"
                and not self._closed
                and pair[0] in self._resources["shm_all"]
            ):
                self._resources["shm_free"].append(pair)
                return
            for shm in pair:
                if shm in self._resources["shm_all"]:
                    self._resources["shm_all"].remove(shm)
        for shm in pair:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    # -------------------------------------------------------- thread backend
    def _run_thread(
        self,
        entry: _PoolModel,
        packed: np.ndarray,
        bounds: List[Tuple[int, int]],
    ) -> np.ndarray:
        with self._lock:
            # checked under the lock so a close() racing an in-flight
            # fallback cannot have its released resources repopulated with
            # an executor nothing would ever shut down
            if self._closed:
                raise RuntimeError("this WorkerPool has been closed")
            if self._resources["thread_pool"] is None:
                self._resources["thread_pool"] = ThreadPoolExecutor(
                    max_workers=self.n_workers
                )
            executor = self._resources["thread_pool"]
            engines = []
            for _ in bounds:
                if entry.thread_engines:
                    engines.append(entry.thread_engines.pop())
                else:
                    engines.append(None)
        for index, engine in enumerate(engines):
            if engine is None:  # compile outside the lock
                engines[index] = _build_engine(
                    entry.netlist, entry.worker_backend
                )
        futures = [
            executor.submit(engines[i].run_packed, packed[:, lo:hi])
            for i, (lo, hi) in enumerate(bounds)
        ]
        # every future must be consumed before the engines go back on the
        # free-list: returning them while a sibling shard still runs would
        # let a concurrent call lease an engine mid-execution and share its
        # scratch buffers (silently wrong output)
        results, first_error = [], None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
        with self._lock:
            entry.thread_engines.extend(engines)
        if first_error is not None:
            raise first_error
        return np.concatenate(results, axis=1)


class ShardedEngine:
    """A per-model view over a :class:`WorkerPool` — bit-exact vs serial.

    Parameters
    ----------
    netlist:
        The netlist to serve; optimised once at attach time.
    n_workers, backend, min_words_per_worker:
        Forwarded to the private pool (ignored when ``pool`` is given —
        those are pool-level knobs).
    passes, max_lut_inputs:
        Optimisation-pipeline options for *this model*.
    engine_backend:
        ``"numpy"`` (default), ``"native"`` (generated-C shared object,
        compiled at attach, shared with forked workers through the
        digest-keyed .so cache), ``"native-mt"`` (the autotuned
        multithreaded native runtime — such models run in-process by
        default instead of forking, see ``prefer_threads``) or ``"auto"``
        (native when the host can build, else NumPy).  Orthogonal to
        ``backend``, which picks the *pool* flavour
        (processes/threads/serial).
    prefer_threads:
        Forwarded to the private pool (see :class:`WorkerPool`); ignored
        when ``pool`` is given.
    pool:
        A shared :class:`WorkerPool` to attach to.  ``None`` (the PR-3
        behaviour) creates a private single-model pool that this engine
        owns and closes.
    model_id:
        The id to attach under (``None`` generates one).

    Closing a view over a shared pool detaches the model and leaves the
    pool running; closing an engine that owns its pool shuts the pool down.
    """

    def __init__(
        self,
        netlist: LUTNetlist,
        n_workers: Optional[int] = None,
        backend: Optional[str] = None,
        *,
        passes: Optional[Sequence] = None,
        max_lut_inputs: Optional[int] = None,
        engine_backend: str = "numpy",
        min_words_per_worker: int = 4,
        prefer_threads: Optional[bool] = None,
        pool: Optional[WorkerPool] = None,
        model_id: Optional[str] = None,
    ) -> None:
        if pool is None:
            pool = WorkerPool(
                n_workers=n_workers,
                backend=backend,
                min_words_per_worker=min_words_per_worker,
                prefer_threads=prefer_threads,
            )
            self._owns_pool = True
        else:
            self._owns_pool = False
        self.pool = pool
        try:
            self.model_id = pool.attach(
                model_id,
                netlist,
                passes=passes,
                max_lut_inputs=max_lut_inputs,
                engine_backend=engine_backend,
            )
        except BaseException:
            if self._owns_pool:
                pool.close()
            raise
        self._closed = False

    # ------------------------------------------------------------ properties
    @property
    def n_workers(self) -> int:
        return self.pool.n_workers

    @property
    def backend(self) -> str:
        return self.pool.backend

    @property
    def min_words_per_worker(self) -> int:
        return self.pool.min_words_per_worker

    @property
    def engine_backend(self) -> str:
        """The resolved evaluation backend
        (``"numpy"``, ``"native"`` or ``"native-mt"``)."""
        return self.pool.engine_backend(self.model_id)

    @property
    def engine_threads(self) -> int:
        """In-process thread count of the serial engine (1 unless
        autotuned ``native-mt``)."""
        return self.pool.engine_threads(self.model_id)

    @property
    def _netlist(self) -> LUTNetlist:
        return self.pool.optimized_netlist(self.model_id)

    @property
    def serial_engine(self):
        """The single-threaded engine all shards are bit-identical to."""
        return self.pool.serial_engine(self.model_id)

    @property
    def n_primary_inputs(self) -> int:
        return self.serial_engine.n_primary_inputs

    @property
    def n_outputs(self) -> int:
        return self.serial_engine.n_outputs

    @property
    def _pool(self):
        """The raw OS pool, if one has been created (None before first use)."""
        resources = self.pool._resources
        return resources["pool"] or resources["thread_pool"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine({self.model_id!r} on {self.n_workers} x "
            f"{self.backend}, {self.serial_engine.n_nodes} LUTs)"
        )

    def warm_up(self) -> "ShardedEngine":
        """Start the underlying pool now (see :meth:`WorkerPool.warm_up`)."""
        self._check_open()
        self.pool.warm_up()
        return self

    # ------------------------------------------------------------ evaluation
    def run_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Sharded counterpart of ``CompiledNetlist.run_packed``."""
        self._check_open()
        return self.pool.run_packed(self.model_id, packed_inputs)

    def evaluate_outputs(self, X_bits: np.ndarray) -> np.ndarray:
        """Bit-exact sharded counterpart of ``LUTNetlist.evaluate_outputs``."""
        self._check_open()
        return self.pool.evaluate_outputs(self.model_id, X_bits)

    def predict_batch(
        self, X_bits: np.ndarray, batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Alias of :meth:`evaluate_outputs` (the shared batched entry point)."""
        from repro.engine.batching import predict_in_batches

        return predict_in_batches(self.evaluate_outputs, X_bits, batch_size)

    # --------------------------------------------------------------- cleanup
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this ShardedEngine has been closed")

    def close(self) -> None:
        """Detach the model; shut the pool down too if this engine owns it."""
        if self._closed:
            return
        self._closed = True
        if self._owns_pool:
            self.pool.close()
        else:
            self.pool.detach(self.model_id)

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
