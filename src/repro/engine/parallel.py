"""Sharded parallel execution of compiled netlists.

Packed evaluation is embarrassingly parallel across words: bit ``s % 64`` of
word ``s // 64`` only ever combines with other bits of the *same* word, so
any contiguous word range of the packed batch can be evaluated independently
and the per-range outputs concatenated — bit for bit what the serial engine
produces.  :class:`ShardedEngine` exploits that by fanning word ranges of
``predict_batch`` out across a pool of workers.

Backends
========

``"process"`` (default where ``fork`` is available)
    A ``multiprocessing`` pool.  Each worker compiles its own
    :class:`~repro.engine.compiled_netlist.CompiledNetlist` once (the
    optimised netlist is inherited through ``fork``, not pickled) and
    exchanges batches through ``multiprocessing.shared_memory`` buffers, so
    per-call IPC is a handful of integers — no pickling of sample data.
    CPython's GIL never serialises the workers.

``"thread"``
    A ``ThreadPoolExecutor`` over per-worker engine instances (the compiled
    engine's scratch reuse makes a single instance thread-unsafe).  NumPy
    releases the GIL inside large bitwise kernels, but the many small
    dispatches of the mux cascade still contend; this backend is the
    portable fallback, not the fast path.

``"serial"``
    No pool at all — the serial engine, for debugging and tiny batches.

Batches too small to be worth splitting (fewer than
``min_words_per_worker`` packed words per worker) run serially whatever the
backend, so the executor is safe to leave enabled for ragged traffic.

The fork + shared-memory contract
=================================

The process backend relies on four invariants that new contributors should
not break:

1. **The netlist crosses the fork, nothing else does.**  Workers are forked
   with the *optimised* netlist as the pool initializer argument and compile
   their own program in ``_worker_init``; after that, per-call messages are
   seven integers/strings (segment names and a word range).  Sample data
   never goes through a pipe.
2. **Batches travel through named shared memory.**  The parent owns two
   grow-only segments (``in``/``out``); workers attach by name, wrap them in
   ``np.ndarray`` views and write disjoint ``[lo, hi)`` column ranges of the
   output — no locks needed because shards never overlap.
3. **The pool is persistent.**  It is created lazily on the first sharded
   call and then *outlives the call*: a serving layer issuing thousands of
   small evaluations pays the fork cost once (:meth:`ShardedEngine.warm_up`
   lets a server pay it at startup instead of on the first request).
   Cleanup is owned by a ``weakref.finalize`` on a plain resource dict so
   abandoned engines are reclaimed without keeping the engine alive.
4. **Failure degrades, it does not crash.**  If ``/dev/shm`` is missing or
   the pool dies mid-flight, the engine permanently falls back to the
   thread backend and re-runs the batch; worker-side model errors propagate
   unchanged.

Usage
=====

>>> with ShardedEngine(netlist, n_workers=4) as engine:
...     labels = engine.predict_batch(X_bits)      # == serial, bit for bit

The executor owns OS resources (worker processes, shared memory); call
:meth:`ShardedEngine.close` or use it as a context manager.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import warnings
import weakref
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.netlist import LUTNetlist
from repro.engine.bitpack import pack_bits, unpack_bits
from repro.engine.compiled_netlist import CompiledNetlist
from repro.engine.passes import optimize_netlist
from repro.utils.validation import check_binary_matrix

__all__ = ["ShardedEngine", "shard_bounds"]


def shard_bounds(n_words: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``n_words`` into ``n_shards`` near-equal contiguous ranges."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    edges = [(i * n_words) // n_shards for i in range(n_shards + 1)]
    return [
        (edges[i], edges[i + 1])
        for i in range(n_shards)
        if edges[i + 1] > edges[i]
    ]


# --------------------------------------------------------------------------
# process-pool worker side.  Module-level state: each worker process holds
# its own compiled engine and its current shared-memory attachments.
# --------------------------------------------------------------------------
_WORKER: dict = {}


def _worker_init(netlist: LUTNetlist) -> None:
    _WORKER["engine"] = CompiledNetlist.from_netlist(netlist)
    _WORKER["shm"] = {}


def _worker_attach(name: str) -> shared_memory.SharedMemory:
    shm = _WORKER["shm"].get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        _WORKER["shm"][name] = shm
    return shm


def _release_resources(resources: dict) -> None:
    """Tear down a pool-and-shared-memory holder (idempotent).

    Module-level so :func:`weakref.finalize` can call it without keeping the
    owning :class:`ShardedEngine` alive — abandoned engines are then garbage
    collected normally and their worker processes reclaimed, while engines
    still alive at interpreter exit are cleaned up by the finalizer's
    built-in atexit hook.
    """
    pool = resources.pop("pool", None)
    if isinstance(pool, ThreadPoolExecutor):
        pool.shutdown(wait=True)
    elif pool is not None:
        pool.terminate()
        pool.join()
    for shm in resources.pop("shm", {}).values():
        try:
            shm.close()
            shm.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
    resources["pool"] = None
    resources["shm"] = {}


def _worker_run(task: Tuple[str, str, int, int, int, int, int]) -> None:
    in_name, out_name, n_inputs, n_outputs, words, lo, hi = task
    shm_in = _worker_attach(in_name)
    shm_out = _worker_attach(out_name)
    # buffers are grow-only, so they may be larger than this batch needs
    packed = np.ndarray(
        (n_inputs, words), dtype=np.uint64, buffer=shm_in.buf
    )
    out = np.ndarray((n_outputs, words), dtype=np.uint64, buffer=shm_out.buf)
    out[:, lo:hi] = _WORKER["engine"].run_packed(packed[:, lo:hi])
    # drop attachments the parent has since replaced with larger buffers
    for name in [n for n in _WORKER["shm"] if n not in (in_name, out_name)]:
        _WORKER["shm"].pop(name).close()


class ShardedEngine:
    """Evaluate a LUT netlist in parallel word shards, bit-exactly.

    Parameters
    ----------
    netlist:
        The netlist to serve.  The optimisation pipeline (see
        :func:`~repro.engine.passes.optimize_netlist`) runs once here; all
        workers execute the same optimised program.
    n_workers:
        Shard count; defaults to the CPU count.  ``1`` degenerates to the
        serial engine.
    backend:
        ``"process"``, ``"thread"`` or ``"serial"``; ``None`` picks
        ``"process"`` where ``fork`` is available, else ``"thread"``.
    min_words_per_worker:
        Batches with fewer packed words than ``n_workers *
        min_words_per_worker`` run serially — below that, pool latency
        dominates any parallel win.
    """

    def __init__(
        self,
        netlist: LUTNetlist,
        n_workers: Optional[int] = None,
        backend: Optional[str] = None,
        *,
        passes: Optional[Sequence] = None,
        max_lut_inputs: Optional[int] = None,
        min_words_per_worker: int = 4,
    ) -> None:
        if backend not in (None, "process", "thread", "serial"):
            raise ValueError(f"unknown backend {backend!r}")
        if n_workers is not None and n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if min_words_per_worker <= 0:
            raise ValueError("min_words_per_worker must be positive")
        self._netlist = optimize_netlist(
            netlist, passes=passes, max_lut_inputs=max_lut_inputs
        )
        self._serial = CompiledNetlist.from_netlist(self._netlist)
        self.n_workers = n_workers or os.cpu_count() or 1
        if backend is None:
            backend = (
                "process"
                if "fork" in mp.get_all_start_methods()
                else "thread"
            )
        if self.n_workers == 1:
            backend = "serial"
        self.backend = backend
        self.min_words_per_worker = min_words_per_worker
        # The lazily created pool and shared-memory segments live in a plain
        # dict so the finalizer below can release them without referencing
        # (and thereby immortalising) the engine itself.
        self._resources: dict = {"pool": None, "shm": {}}
        self._thread_engines: List[CompiledNetlist] = []
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release_resources, self._resources
        )

    # ------------------------------------------------------------ properties
    @property
    def n_primary_inputs(self) -> int:
        return self._serial.n_primary_inputs

    @property
    def n_outputs(self) -> int:
        return self._serial.n_outputs

    @property
    def serial_engine(self) -> CompiledNetlist:
        """The single-threaded engine all shards are bit-identical to."""
        return self._serial

    @property
    def _pool(self):
        return self._resources["pool"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine({self.n_workers} x {self.backend}, "
            f"{self._serial.n_nodes} LUTs)"
        )

    def warm_up(self) -> "ShardedEngine":
        """Start the worker pool now instead of on the first sharded call.

        Long-lived servers call this once at startup so the fork cost (and
        the first shared-memory allocation) is paid before traffic arrives
        rather than inside the first request's latency budget.  No-op for
        the serial backend and after fallback to threads.
        """
        self._check_open()
        if self.backend == "process":
            try:
                self._ensure_process_pool()
            except (OSError, mp.ProcessError) as error:
                warnings.warn(
                    f"ShardedEngine warm-up failed ({error!r}); "
                    "falling back to the thread backend",
                    RuntimeWarning,
                    stacklevel=2,
                )
                _release_resources(self._resources)
                self.backend = "thread"
        return self

    # ------------------------------------------------------------ evaluation
    def run_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Sharded counterpart of ``CompiledNetlist.run_packed``."""
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        if (
            packed_inputs.ndim != 2
            or packed_inputs.shape[0] != self.n_primary_inputs
        ):
            raise ValueError(
                f"packed_inputs must have shape ({self.n_primary_inputs}, "
                f"n_words), got {packed_inputs.shape}"
            )
        self._check_open()
        words = packed_inputs.shape[1]
        bounds = shard_bounds(words, self.n_workers) if words else []
        if (
            self.backend == "serial"
            or len(bounds) <= 1
            or words < self.n_workers * self.min_words_per_worker
        ):
            return self._serial.run_packed(packed_inputs)
        if self.backend == "process":
            return self._run_process(packed_inputs, bounds)
        return self._run_thread(packed_inputs, bounds)

    def evaluate_outputs(self, X_bits: np.ndarray) -> np.ndarray:
        """Bit-exact sharded counterpart of ``LUTNetlist.evaluate_outputs``."""
        X_bits = check_binary_matrix(X_bits, "X_bits")
        if X_bits.shape[1] != self.n_primary_inputs:
            raise ValueError(
                f"expected {self.n_primary_inputs} primary inputs, "
                f"got {X_bits.shape[1]}"
            )
        out = self.run_packed(pack_bits(X_bits))
        return unpack_bits(out, X_bits.shape[0])

    def predict_batch(
        self, X_bits: np.ndarray, batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Alias of :meth:`evaluate_outputs` (the shared batched entry point)."""
        from repro.engine.batching import predict_in_batches

        return predict_in_batches(self.evaluate_outputs, X_bits, batch_size)

    # ------------------------------------------------------- process backend
    def _run_process(
        self, packed: np.ndarray, bounds: List[Tuple[int, int]]
    ) -> np.ndarray:
        try:
            pool = self._ensure_process_pool()
            words = packed.shape[1]
            shm_in = self._ensure_shm("in", self.n_primary_inputs * words * 8)
            shm_out = self._ensure_shm("out", self.n_outputs * words * 8)
            view_in = np.ndarray(
                packed.shape, dtype=np.uint64, buffer=shm_in.buf
            )
            view_in[:] = packed
            tasks = [
                (
                    shm_in.name,
                    shm_out.name,
                    self.n_primary_inputs,
                    self.n_outputs,
                    words,
                    lo,
                    hi,
                )
                for lo, hi in bounds
            ]
            pool.map(_worker_run, tasks)
            view_out = np.ndarray(
                (self.n_outputs, words), dtype=np.uint64, buffer=shm_out.buf
            )
            return view_out.copy()
        except (OSError, mp.ProcessError) as error:
            # no /dev/shm, fork refused, pool died mid-flight: degrade to
            # threads permanently rather than failing the prediction.
            # Worker-side model errors (ValueError etc.) propagate as-is.
            warnings.warn(
                f"ShardedEngine process backend failed ({error!r}); "
                "falling back to the thread backend",
                RuntimeWarning,
                stacklevel=3,
            )
            _release_resources(self._resources)
            self.backend = "thread"
            return self._run_thread(packed, bounds)

    def _ensure_process_pool(self):
        if self._resources["pool"] is None:
            # Start the shared-memory resource tracker *before* forking, so
            # every worker inherits it: attachments then deduplicate into
            # one tracker cache entry that the parent's unlink retires,
            # instead of each worker spawning a tracker that warns about
            # "leaked" segments it never owned when the pool shuts down.
            try:  # pragma: no cover - private but stable since 3.8
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:
                pass
            ctx = mp.get_context("fork")
            self._resources["pool"] = ctx.Pool(
                self.n_workers,
                initializer=_worker_init,
                initargs=(self._netlist,),
            )
        return self._resources["pool"]

    def _ensure_shm(self, role: str, n_bytes: int) -> shared_memory.SharedMemory:
        n_bytes = max(n_bytes, 8)
        current = self._resources["shm"].get(role)
        if current is not None and current.size >= n_bytes:
            return current
        if current is not None:
            current.close()
            current.unlink()
        # grow-only with headroom, so ragged batch sizes don't reallocate
        shm = shared_memory.SharedMemory(create=True, size=n_bytes * 2)
        self._resources["shm"][role] = shm
        return shm

    # -------------------------------------------------------- thread backend
    def _run_thread(
        self, packed: np.ndarray, bounds: List[Tuple[int, int]]
    ) -> np.ndarray:
        if not isinstance(self._resources["pool"], ThreadPoolExecutor):
            _release_resources(self._resources)
            self._resources["pool"] = ThreadPoolExecutor(
                max_workers=self.n_workers
            )
        while len(self._thread_engines) < len(bounds):
            self._thread_engines.append(
                CompiledNetlist.from_netlist(self._netlist)
            )
        pool = self._resources["pool"]
        futures = [
            pool.submit(self._thread_engines[i].run_packed, packed[:, lo:hi])
            for i, (lo, hi) in enumerate(bounds)
        ]
        return np.concatenate([f.result() for f in futures], axis=1)

    # --------------------------------------------------------------- cleanup
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this ShardedEngine has been closed")

    def close(self) -> None:
        """Shut down worker pools and release shared memory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()
        self._thread_engines = []

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
