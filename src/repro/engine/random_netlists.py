"""Randomised LUT netlists for equivalence testing and benchmarking.

The generator produces DAGs with the same shape family the RINC bank emits —
layers of LUT nodes reading primary inputs and earlier nodes — but with
uniformly random truth tables and wiring, which exercises the compiled
engine far more adversarially than trained netlists do.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.netlist import LUTNetlist, primary_input
from repro.utils.rng import SeedLike, as_rng


def random_netlist(
    n_primary_inputs: int,
    n_nodes: int,
    seed: SeedLike = 0,
    lut_widths: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    n_outputs: Optional[int] = None,
) -> LUTNetlist:
    """Build a random DAG of LUT nodes over ``n_primary_inputs`` feature bits.

    Each node draws a random width ``P`` from ``lut_widths`` and reads ``P``
    distinct signals chosen among the primary inputs and all earlier nodes,
    so depth grows naturally with ``n_nodes``.  Output signals are a random
    sample of ``n_outputs`` node outputs (all nodes when ``None``), with a
    primary input thrown in occasionally to cover the pass-through case.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    rng = as_rng(seed)
    netlist = LUTNetlist(n_primary_inputs=n_primary_inputs)
    signals = [primary_input(i) for i in range(n_primary_inputs)]
    node_signals = []
    for index in range(n_nodes):
        width = int(rng.choice(list(lut_widths)))
        width = min(width, len(signals))
        chosen = rng.choice(len(signals), size=width, replace=False)
        table = rng.integers(0, 2, size=1 << width, dtype=np.uint8)
        name = netlist.add_node(
            name=f"lut{index}",
            kind="rinc0" if index % 3 else "mat",
            input_signals=[signals[i] for i in chosen],
            table=table,
        )
        signals.append(name)
        node_signals.append(name)

    if n_outputs is None:
        outputs = list(node_signals)
    else:
        if not 1 <= n_outputs <= len(node_signals):
            raise ValueError(
                f"n_outputs must lie in [1, {len(node_signals)}], got {n_outputs}"
            )
        chosen = rng.choice(len(node_signals), size=n_outputs, replace=False)
        outputs = [node_signals[i] for i in sorted(chosen)]
    for sig in outputs:
        netlist.mark_output(sig)
    if n_outputs is None and rng.random() < 0.5:
        netlist.mark_output(primary_input(int(rng.integers(n_primary_inputs))))
    return netlist


def rinc_bank_netlist(
    n_primary_inputs: int,
    n_trees: int,
    n_mats: int,
    n_outputs: int,
    lut_width: int = 6,
    seed: SeedLike = 0,
) -> LUTNetlist:
    """A netlist with the exact shape the trained RINC bank emits.

    Three levels, as in the paper's RINC-2 configuration: ``n_trees`` RINC-0
    tree LUTs reading primary inputs, ``n_mats`` first-level MAT LUTs reading
    trees, and ``n_outputs`` output MAT LUTs reading first-level MATs — but
    with uniformly random truth tables and wiring, which is the adversarial
    worst case for the compiled engine (trained tables are more regular).
    """
    if min(n_trees, n_mats, n_outputs) <= 0:
        raise ValueError("n_trees, n_mats and n_outputs must be positive")
    if not 1 <= lut_width <= min(n_primary_inputs, n_trees, n_mats):
        raise ValueError("lut_width must fit every level's fan-in")
    rng = as_rng(seed)

    def table() -> np.ndarray:
        return rng.integers(0, 2, size=1 << lut_width, dtype=np.uint8)

    netlist = LUTNetlist(n_primary_inputs=n_primary_inputs)
    trees = []
    for index in range(n_trees):
        chosen = rng.choice(n_primary_inputs, size=lut_width, replace=False)
        trees.append(
            netlist.add_node(
                f"t{index}", "rinc0", [primary_input(int(i)) for i in chosen], table()
            )
        )
    mats = []
    for index in range(n_mats):
        chosen = rng.choice(n_trees, size=lut_width, replace=False)
        mats.append(
            netlist.add_node(
                f"m{index}", "mat", [trees[i] for i in chosen], table()
            )
        )
    for index in range(n_outputs):
        chosen = rng.choice(n_mats, size=lut_width, replace=False)
        netlist.mark_output(
            netlist.add_node(
                f"o{index}", "mat", [mats[i] for i in chosen], table()
            )
        )
    return netlist
