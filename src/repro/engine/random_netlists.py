"""Randomised LUT netlists for equivalence testing and benchmarking.

Two table families, two purposes:

* :func:`random_netlist` / :func:`rinc_bank_netlist` draw *uniformly random*
  truth tables — the optimiser's adversarial worst case (a uniformly random
  ``P``-input table almost surely depends on all ``P`` inputs, so folding
  and support reduction can prune nothing).  These exercise the compiled
  engine's raw evaluation cost.
* :func:`structured_bank_netlist` draws *trained-shaped* tables — bounded
  depth decision trees for the RINC-0 level (a depth-``d`` tree touches at
  most ``2^d - 1`` of its ``P`` inputs, so support reduction shrinks the
  Shannon cascade) and popcount thresholds for the MAT levels (the boosted
  majority votes RINC actually learns).  This is the serving-shaped
  workload the optimiser is measured on: folding prunes hard here, as it
  does on real trained banks, and the benchmark gates keep it honest.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.netlist import LUTNetlist, primary_input
from repro.utils.rng import SeedLike, as_rng


def random_netlist(
    n_primary_inputs: int,
    n_nodes: int,
    seed: SeedLike = 0,
    lut_widths: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    n_outputs: Optional[int] = None,
) -> LUTNetlist:
    """Build a random DAG of LUT nodes over ``n_primary_inputs`` feature bits.

    Each node draws a random width ``P`` from ``lut_widths`` and reads ``P``
    distinct signals chosen among the primary inputs and all earlier nodes,
    so depth grows naturally with ``n_nodes``.  Output signals are a random
    sample of ``n_outputs`` node outputs (all nodes when ``None``), with a
    primary input thrown in occasionally to cover the pass-through case.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    rng = as_rng(seed)
    netlist = LUTNetlist(n_primary_inputs=n_primary_inputs)
    signals = [primary_input(i) for i in range(n_primary_inputs)]
    node_signals = []
    for index in range(n_nodes):
        width = int(rng.choice(list(lut_widths)))
        width = min(width, len(signals))
        chosen = rng.choice(len(signals), size=width, replace=False)
        table = rng.integers(0, 2, size=1 << width, dtype=np.uint8)
        name = netlist.add_node(
            name=f"lut{index}",
            kind="rinc0" if index % 3 else "mat",
            input_signals=[signals[i] for i in chosen],
            table=table,
        )
        signals.append(name)
        node_signals.append(name)

    if n_outputs is None:
        outputs = list(node_signals)
    else:
        if not 1 <= n_outputs <= len(node_signals):
            raise ValueError(
                f"n_outputs must lie in [1, {len(node_signals)}], got {n_outputs}"
            )
        chosen = rng.choice(len(node_signals), size=n_outputs, replace=False)
        outputs = [node_signals[i] for i in sorted(chosen)]
    for sig in outputs:
        netlist.mark_output(sig)
    if n_outputs is None and rng.random() < 0.5:
        netlist.mark_output(primary_input(int(rng.integers(n_primary_inputs))))
    return netlist


def _threshold_table(n_inputs: int, threshold: int) -> np.ndarray:
    """Truth table of ``popcount(inputs) >= threshold`` — a MAT-style vote."""
    index = np.arange(1 << n_inputs, dtype=np.uint32)
    popcount = np.zeros_like(index)
    for bit in range(n_inputs):
        popcount += (index >> bit) & 1
    return (popcount >= threshold).astype(np.uint8)


def _tree_table(rng, n_inputs: int, depth: int) -> np.ndarray:
    """Truth table of a random decision tree of at most ``depth`` levels.

    Built bottom-up over the full ``2^P`` index space: a leaf is a constant,
    an internal node muxes two subtrees on a randomly chosen input.  The
    tree touches at most ``2^depth - 1`` distinct inputs (fewer when choices
    repeat), so the table's *support* is far below ``P`` — the structure
    support reduction exists to exploit.
    """
    if depth <= 0:
        return np.full(1 << n_inputs, rng.integers(0, 2), dtype=np.uint8)
    variable = int(rng.integers(n_inputs))
    low = _tree_table(rng, n_inputs, depth - 1)
    high = _tree_table(rng, n_inputs, depth - 1)
    takes_high = ((np.arange(1 << n_inputs) >> variable) & 1).astype(bool)
    return np.where(takes_high, high, low).astype(np.uint8)


def structured_bank_netlist(
    n_primary_inputs: int,
    n_trees: int,
    n_mats: int,
    n_outputs: int,
    lut_width: int = 6,
    tree_depth: int = 2,
    seed: SeedLike = 0,
) -> LUTNetlist:
    """A RINC-bank-shaped netlist with *trained-shaped* tables.

    Same three-level topology as :func:`rinc_bank_netlist`, but the tables
    have the structure training actually produces: RINC-0 tree LUTs are
    bounded-depth decision trees (low support — the classic trained-tree
    shape), and both MAT levels are popcount thresholds over their inputs
    (the boosted majority vote).  Random banks are the optimiser's
    adversarial floor; this is its representative workload — constant
    leaves fold away, low-support tables shrink their Shannon cascades, and
    the pruning cascades level to level.
    """
    if min(n_trees, n_mats, n_outputs) <= 0:
        raise ValueError("n_trees, n_mats and n_outputs must be positive")
    if not 1 <= lut_width <= min(n_primary_inputs, n_trees, n_mats):
        raise ValueError("lut_width must fit every level's fan-in")
    if tree_depth < 0:
        raise ValueError("tree_depth must be non-negative")
    rng = as_rng(seed)

    def threshold() -> int:
        return int(rng.integers(1, lut_width + 1))

    netlist = LUTNetlist(n_primary_inputs=n_primary_inputs)
    trees = []
    for index in range(n_trees):
        chosen = rng.choice(n_primary_inputs, size=lut_width, replace=False)
        trees.append(
            netlist.add_node(
                f"t{index}",
                "rinc0",
                [primary_input(int(i)) for i in chosen],
                _tree_table(rng, lut_width, tree_depth),
            )
        )
    mats = []
    for index in range(n_mats):
        chosen = rng.choice(n_trees, size=lut_width, replace=False)
        mats.append(
            netlist.add_node(
                f"m{index}",
                "mat",
                [trees[i] for i in chosen],
                _threshold_table(lut_width, threshold()),
            )
        )
    for index in range(n_outputs):
        chosen = rng.choice(n_mats, size=lut_width, replace=False)
        netlist.mark_output(
            netlist.add_node(
                f"o{index}",
                "mat",
                [mats[i] for i in chosen],
                _threshold_table(lut_width, threshold()),
            )
        )
    return netlist


def rinc_bank_netlist(
    n_primary_inputs: int,
    n_trees: int,
    n_mats: int,
    n_outputs: int,
    lut_width: int = 6,
    seed: SeedLike = 0,
) -> LUTNetlist:
    """A netlist with the exact shape the trained RINC bank emits.

    Three levels, as in the paper's RINC-2 configuration: ``n_trees`` RINC-0
    tree LUTs reading primary inputs, ``n_mats`` first-level MAT LUTs reading
    trees, and ``n_outputs`` output MAT LUTs reading first-level MATs — but
    with uniformly random truth tables and wiring, which is the adversarial
    worst case for the compiled engine (trained tables are more regular).
    """
    if min(n_trees, n_mats, n_outputs) <= 0:
        raise ValueError("n_trees, n_mats and n_outputs must be positive")
    if not 1 <= lut_width <= min(n_primary_inputs, n_trees, n_mats):
        raise ValueError("lut_width must fit every level's fan-in")
    rng = as_rng(seed)

    def table() -> np.ndarray:
        return rng.integers(0, 2, size=1 << lut_width, dtype=np.uint8)

    netlist = LUTNetlist(n_primary_inputs=n_primary_inputs)
    trees = []
    for index in range(n_trees):
        chosen = rng.choice(n_primary_inputs, size=lut_width, replace=False)
        trees.append(
            netlist.add_node(
                f"t{index}", "rinc0", [primary_input(int(i)) for i in chosen], table()
            )
        )
    mats = []
    for index in range(n_mats):
        chosen = rng.choice(n_trees, size=lut_width, replace=False)
        mats.append(
            netlist.add_node(
                f"m{index}", "mat", [trees[i] for i in chosen], table()
            )
        )
    for index in range(n_outputs):
        chosen = rng.choice(n_mats, size=lut_width, replace=False)
        netlist.mark_output(
            netlist.add_node(
                f"o{index}", "mat", [mats[i] for i in chosen], table()
            )
        )
    return netlist
