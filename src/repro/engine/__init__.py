"""``repro.engine`` — an optimising compiler and parallel runtime for LUT netlists.

PoET-BiN's selling point is that inference is *pure LUT lookups*: no
multiplies, no adds, just boolean logic.  The FPGA exploits that by
evaluating every LUT in parallel fabric; this package is the software
analogue, exploiting the 64-bit CPU word instead.  A binary signal packed as
one bit per sample turns every LUT evaluation into a handful of bitwise
word instructions that process 64 samples at once.

Since PR 3 the engine is structured as a multi-stage compiler plus a
sharded runtime rather than a one-shot translator.

Compiler
========

``ir``
    The engine IR: :class:`~repro.engine.ir.IRGraph`, a mutable,
    name-indexed, pass-friendly view of a
    :class:`~repro.core.netlist.LUTNetlist` that round-trips losslessly.

``passes``
    Ordered, individually testable optimisation passes:
    :class:`~repro.engine.passes.ConstantFoldPass` (constant propagation,
    support reduction, dead-node pruning),
    :class:`~repro.engine.passes.FuseChainsPass` (single-fanout LUT chains
    fused into wider tables under the packed cost model — fewer levels,
    fewer Shannon mux steps),
    :class:`~repro.engine.passes.DedupTablesPass` (structurally identical
    tables collapsed to one shared node; never raises
    :func:`~repro.engine.passes.table_cost`) and
    :class:`~repro.engine.passes.DecomposePass` (LUTs wider than the
    physical fabric split onto max-``P``-input tables plus mux nodes,
    shared with ``repro.hardware.lut_decompose``).
    :func:`~repro.engine.passes.default_passes` assembles the default
    pipeline; :func:`~repro.engine.passes.optimize_netlist` runs it
    netlist-to-netlist.

``compiled_netlist``
    Lowering and execution: :func:`compile_netlist(netlist, *, passes=...,
    max_lut_inputs=...) <repro.engine.compiled_netlist.compile_netlist>`
    runs the pipeline and lowers to a
    :class:`~repro.engine.compiled_netlist.CompiledNetlist` — a
    topologically-ordered program with slot-recycled signal storage whose
    steps each evaluate all same-width LUTs of a level at once by iterated
    Shannon expansion (the bitwise mux ``f = f0 ^ ((f0 ^ f1) & x)``),
    cache-blocked to stay L2-resident; mux-shaped 3-input LUTs lower to a
    dedicated single-mux step, the software mirror of free F7/F8 muxes.
    Results are bit-identical to ``LUTNetlist.evaluate_outputs`` under
    every pipeline configuration.

``native``
    The generated-C backend:
    :func:`compile_netlist(..., backend="native") <repro.engine.compiled_netlist.compile_netlist>`
    lowers the already-flat program once more, into straight-line
    ``uint64_t`` C (per-arity-unrolled Shannon-mux expressions with the
    table constants folded at generation time, the 3-op word mux for
    mux groups, literal broadcasts for constants), builds it with the
    host toolchain into a shared object cached by source digest, and
    wraps it as a
    :class:`~repro.engine.native.NativeCompiledNetlist` with the exact
    ``run_packed``/``predict_batch`` surface — bit-exact vs NumPy and
    an order of magnitude faster.  ``backend="auto"`` falls back to the
    NumPy engine on hosts without a C compiler.
    ``backend="native-mt"`` is tier 2: the same statements are also
    instantiated against a K-lane GCC/Clang vector type (so the compiler
    autovectorises the mux cascades across words), ``run_packed`` shards
    large batches across word ranges on an in-process thread pool (ctypes
    releases the GIL), and a per-netlist autotuner
    (:func:`~repro.engine.native.autotune_config`) measures threads ×
    unroll × opt-tier candidates on a calibration batch and persists the
    winner next to the ``.so`` cache.

Runtime
=======

``parallel``
    :class:`~repro.engine.parallel.WorkerPool`, a persistent, model-agnostic
    process (or thread) pool: netlists attach/detach by model id, workers
    hold a per-model engine registry, and every task is a
    ``(model_id, word_range)`` shard — so one pool serves many netlists and
    multiple in-flight requests concurrently (shared-memory IPC, per-worker
    compiled programs, serial fallback for small batches).
    :class:`~repro.engine.parallel.ShardedEngine` is the per-model view —
    ``ShardedEngine(netlist, n_workers=4)`` owns a private pool, the PR-3
    behaviour; ``ShardedEngine(netlist, pool=shared)`` attaches to a shared
    one.  Packed 64-sample word blocks are independent, so sharded results
    are bit-identical to serial.

``bitpack``
    Packs an ``(n_samples, n_signals)`` 0/1 matrix into an
    ``(n_signals, ceil(n/64))`` ``uint64`` matrix (samples along the bit
    axis, little-endian) and back, plus
    :func:`~repro.engine.bitpack.packed_weighted_sums` — per-sample integer
    dot products computed with bit-sliced word adders (the popcount path
    that keeps the quantised output layer packed end to end).

``batching``
    The shared ``predict_batch(X, batch_size=None)`` entry point.
    :class:`~repro.engine.batching.BatchedPredictorMixin` gives any
    vectorised ``predict`` a chunked batched counterpart; the PoET-BiN and
    RINC classifiers override it with the compiled fast path.  The
    :func:`~repro.engine.batching.coalesce_batches` /
    :func:`~repro.engine.batching.split_batches` pair goes the other way —
    many small requests stacked into one evaluation and scattered back —
    and is the substrate of the :mod:`repro.serving` batching server.

``random_netlists``
    Adversarially random LUT DAGs used by the equivalence property tests and
    the throughput benchmarks.

Usage
=====

>>> from repro.engine import compile_netlist
>>> compiled = compile_netlist(classifier.to_netlist(), max_lut_inputs=6)
>>> bits = compiled.predict_batch(X_bits)          # == netlist.evaluate_outputs(X_bits)

or simply ``classifier.predict_batch(X_bits, n_workers=4)``, which compiles,
caches and shards the engine on first use — and keeps PoET-BiN serving
packed from the feature bits through the RINC bank into the popcount
read-out.
"""

from repro.engine.batching import (
    BatchedPredictorMixin,
    coalesce_batches,
    predict_in_batches,
    split_batches,
)
from repro.engine.bitpack import (
    WORD_BITS,
    concat_packed,
    mask_padding,
    n_words,
    pack_bits,
    packed_weighted_sums,
    unpack_bits,
)
from repro.engine.compiled_netlist import (
    ENGINE_BACKENDS,
    CompiledNetlist,
    compile_netlist,
)
from repro.engine.ir import IRGraph, IRNode
from repro.engine.native import (
    MTConfig,
    NativeCompiledNetlist,
    NativeUnavailableError,
    autotune_config,
)
from repro.engine.parallel import ShardedEngine, WorkerPool, shard_bounds
from repro.engine.passes import (
    MUX_TABLE,
    ConstantFoldPass,
    DecomposePass,
    DedupTablesPass,
    FuseChainsPass,
    Pass,
    PassManager,
    default_passes,
    optimize_netlist,
    table_cost,
)
from repro.engine.random_netlists import (
    random_netlist,
    rinc_bank_netlist,
    structured_bank_netlist,
)

__all__ = [
    "BatchedPredictorMixin",
    "CompiledNetlist",
    "ConstantFoldPass",
    "DecomposePass",
    "DedupTablesPass",
    "ENGINE_BACKENDS",
    "FuseChainsPass",
    "IRGraph",
    "IRNode",
    "MTConfig",
    "MUX_TABLE",
    "NativeCompiledNetlist",
    "NativeUnavailableError",
    "Pass",
    "PassManager",
    "ShardedEngine",
    "WORD_BITS",
    "WorkerPool",
    "autotune_config",
    "coalesce_batches",
    "concat_packed",
    "compile_netlist",
    "default_passes",
    "mask_padding",
    "n_words",
    "optimize_netlist",
    "pack_bits",
    "packed_weighted_sums",
    "predict_in_batches",
    "random_netlist",
    "rinc_bank_netlist",
    "shard_bounds",
    "split_batches",
    "structured_bank_netlist",
    "table_cost",
    "unpack_bits",
]
