"""``repro.engine`` — bit-packed batch inference for LUT netlists.

PoET-BiN's selling point is that inference is *pure LUT lookups*: no
multiplies, no adds, just boolean logic.  The FPGA exploits that by
evaluating every LUT in parallel fabric; this package is the software
analogue, exploiting the 64-bit CPU word instead.  A binary signal packed as
one bit per sample turns every LUT evaluation into a handful of bitwise
word instructions that process 64 samples at once.

Architecture
============

``bitpack``
    Packs an ``(n_samples, n_signals)`` 0/1 matrix into an
    ``(n_signals, ceil(n/64))`` matrix of ``uint64`` words (samples along
    the bit axis, little-endian within a word) and back.  Round-trips exactly
    for ragged, empty and single-sample batches.

``compiled_netlist``
    Compiles a :class:`~repro.core.netlist.LUTNetlist` into a
    :class:`~repro.engine.compiled_netlist.CompiledNetlist`: a
    topologically-ordered program with slot-allocated signal storage (slots
    are recycled after a signal's last use) whose steps each evaluate *all*
    same-width LUTs of a netlist level at once.  A LUT is applied to packed
    words by iterated Shannon expansion — the truth table, materialised as
    all-zero/all-one words, is halved once per address bit with the bitwise
    mux ``f = f0 ^ ((f0 ^ f1) & x)`` — a cascade of ``P`` in-place vector
    steps, cache-blocked so the working set stays L2-resident.  Results are
    bit-identical to ``LUTNetlist.evaluate_outputs``.

``batching``
    The shared ``predict_batch(X, batch_size=None)`` entry point.
    :class:`~repro.engine.batching.BatchedPredictorMixin` gives any
    vectorised ``predict`` a chunked batched counterpart; the PoET-BiN and
    RINC classifiers override it with the compiled fast path.

``random_netlists``
    Adversarially random LUT DAGs used by the equivalence property tests and
    the throughput benchmarks.

Usage
=====

>>> from repro.engine import compile_netlist
>>> compiled = compile_netlist(classifier.to_netlist())
>>> bits = compiled.predict_batch(X_bits)          # == netlist.evaluate_outputs(X_bits)

or simply ``classifier.predict_batch(X_bits)``, which compiles and caches
the engine on first use.

Follow-on work (see ROADMAP.md): multi-core sharding of packed batches and
fusing single-fanout LUT chains into wider tables before compilation.
"""

from repro.engine.batching import BatchedPredictorMixin, predict_in_batches
from repro.engine.bitpack import WORD_BITS, n_words, pack_bits, unpack_bits
from repro.engine.compiled_netlist import CompiledNetlist, compile_netlist
from repro.engine.random_netlists import random_netlist, rinc_bank_netlist

__all__ = [
    "BatchedPredictorMixin",
    "CompiledNetlist",
    "WORD_BITS",
    "compile_netlist",
    "n_words",
    "pack_bits",
    "predict_in_batches",
    "random_netlist",
    "rinc_bank_netlist",
    "unpack_bits",
]
