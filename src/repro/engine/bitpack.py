"""Bit-packing of binary sample batches into machine words.

The bit-packed layout is the software analogue of the FPGA datapath: one
``uint64`` word holds the value of one binary *signal* for 64 *samples*, so a
single bitwise CPU instruction evaluates that signal for a whole word of
samples at once.  A batch of ``n`` samples over ``F`` signals therefore
becomes an ``(F, ceil(n / 64))`` matrix of words — signals along the rows,
samples along the bit axis.

Bit order is little-endian within a word: sample ``s`` lives at bit
``s % 64`` of word ``s // 64``.  Words are padded with zero bits past the
last sample; consumers that invert signals may leave garbage in the padding,
which :func:`unpack_bits` discards by truncating to the requested sample
count.
"""

from __future__ import annotations

import numpy as np

#: Number of samples carried by one packed word.
WORD_BITS = 64

#: dtype of a packed word, with explicit byte order so that the byte-level
#: (de)packing below is platform independent.
_WORD_DTYPE = np.dtype("<u8")


def n_words(n_samples: int) -> int:
    """Number of ``uint64`` words needed to hold ``n_samples`` bits."""
    if n_samples < 0:
        raise ValueError(f"n_samples must be non-negative, got {n_samples}")
    return (n_samples + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a binary sample matrix into words, samples along the bit axis.

    Parameters
    ----------
    bits:
        Array of shape ``(n_samples, n_signals)`` containing 0/1 values.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of shape ``(n_signals, n_words(n_samples))`` where
        bit ``s % 64`` of word ``[f, s // 64]`` is ``bits[s, f]``.
    """
    arr = np.asarray(bits)
    if arr.ndim != 2:
        raise ValueError(f"bits must be 2-D, got shape {arr.shape}")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must contain only 0/1 values")
    arr = arr.astype(np.uint8, copy=False)
    samples, signals = arr.shape
    words = n_words(samples)
    # packbits is much faster along a contiguous axis, so pay for one byte
    # transpose copy up front and pack each signal's samples contiguously.
    transposed = np.ascontiguousarray(arr.T)
    packed_bytes = np.packbits(transposed, axis=1, bitorder="little")
    padded = np.zeros((signals, words * (WORD_BITS // 8)), dtype=np.uint8)
    padded[:, : packed_bytes.shape[1]] = packed_bytes
    return padded.view(_WORD_DTYPE).astype(np.uint64, copy=False)


def packed_weighted_sums(
    packed: np.ndarray, weights: np.ndarray, n_samples: int
) -> np.ndarray:
    """Per-sample integer dot product of packed signals with integer weights.

    Computes ``sum_k weights[k] * bit[s, k]`` for every sample ``s`` without
    unpacking the signals: each weight's binary planes are accumulated into a
    bit-sliced (vertical) counter with word-wide full adders — the software
    form of a hardware popcount tree.  Only the few count planes of the
    result are unpacked at the end, so the cost scales with ``log2(sum
    |weights|)`` words per sample instead of one byte per signal per sample.

    Parameters
    ----------
    packed:
        ``uint64`` array of shape ``(n_signals, n_words)`` as produced by
        :func:`pack_bits`.  Padding bits may hold garbage; the corresponding
        samples are truncated from the result.
    weights:
        Integer weights of shape ``(n_signals,)``; any sign.
    n_samples:
        Number of samples to recover.

    Returns
    -------
    numpy.ndarray
        ``int64`` vector of shape ``(n_samples,)``.
    """
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise ValueError(f"packed must be 2-D, got shape {packed.shape}")
    weights = np.asarray(weights)
    if weights.shape != (packed.shape[0],):
        raise ValueError(
            f"weights must have shape ({packed.shape[0]},), got {weights.shape}"
        )
    if not np.issubdtype(weights.dtype, np.integer):
        raise ValueError("weights must be integers (quantise first)")
    total = np.zeros(n_samples, dtype=np.int64)
    for sign in (1, -1):
        magnitudes = np.maximum(sign * weights.astype(np.int64), 0)
        planes = _vertical_accumulate(packed, magnitudes)
        if not planes:
            continue
        counts = unpack_bits(np.stack(planes), n_samples).astype(np.int64)
        total += sign * (counts @ (np.int64(1) << np.arange(len(planes), dtype=np.int64)))
    return total


def _vertical_accumulate(packed: np.ndarray, magnitudes: np.ndarray) -> list:
    """Bit-sliced sum ``sum_k magnitudes[k] * row_k``: one word per plane.

    Each set bit ``j`` of a weight adds its signal's word row at plane ``j``
    of the counter; carries ripple upward through word-wide half adders
    (``sum = a ^ b``, ``carry = a & b``), exactly like a hardware counter
    column.
    """
    planes: list = []
    for row, magnitude in zip(packed, magnitudes):
        magnitude = int(magnitude)
        plane = 0
        while magnitude:
            if magnitude & 1:
                carry = row
                level = plane
                while len(planes) < level:  # counter not yet this tall
                    planes.append(np.zeros_like(row))
                while True:
                    if level == len(planes):
                        planes.append(carry.copy())
                        break
                    carry_out = planes[level] & carry
                    planes[level] = planes[level] ^ carry
                    if not carry_out.any():
                        break
                    carry = carry_out
                    level += 1
            magnitude >>= 1
            plane += 1
    return planes


def mask_padding(packed: np.ndarray, n_samples: int) -> np.ndarray:
    """Zero the padding bits past ``n_samples`` in the last word (a copy
    when masking is needed, the input unchanged otherwise).

    Consumers that invert signals leave garbage in the padding; anything
    that *merges* packed blocks (:func:`concat_packed`) must clear it first
    or one block's garbage lands inside the next block's samples.
    """
    arr = np.asarray(packed, dtype=np.uint64)
    if arr.ndim != 2:
        raise ValueError(f"packed must be 2-D, got shape {arr.shape}")
    words = arr.shape[1]
    if n_samples < 0 or n_samples > words * WORD_BITS:
        raise ValueError(
            f"n_samples must lie in [0, {words * WORD_BITS}], got {n_samples}"
        )
    tail_bits = n_samples - (words - 1) * WORD_BITS if words else 0
    if words == 0 or tail_bits == WORD_BITS:
        return arr
    arr = arr.copy()
    if tail_bits <= 0:  # more words than the samples need: whole words die
        live_words = n_words(n_samples)
        arr[:, live_words:] = 0
        tail_bits = n_samples - (live_words - 1) * WORD_BITS
        if live_words == 0 or tail_bits == WORD_BITS:
            return arr
        words = live_words
    mask = np.uint64((1 << tail_bits) - 1)
    arr[:, words - 1] &= mask
    return arr


def concat_packed(chunks, n_samples_list) -> np.ndarray:
    """Concatenate packed blocks along the *sample* (bit) axis, staying packed.

    The packed-domain analogue of ``np.concatenate(rows_list)`` followed by
    :func:`pack_bits`: block ``i``'s samples land at bit offset
    ``sum(n_samples_list[:i])`` of the result, without ever expanding to
    bytes.  Blocks whose sample counts are not multiples of 64 are merged
    by word-wide shifts with carry into the neighbouring word — a few
    vector ops per block, independent of the sample count.

    This is what lets the serving layer coalesce many small *pre-packed*
    requests into one engine-shaped word matrix: clients pack once, the
    queue concatenates words, and the engine never sees bytes.

    Parameters
    ----------
    chunks:
        Sequence of ``uint64`` arrays, each ``(n_signals, n_words(k_i))``
        as produced by :func:`pack_bits` (padding bits may hold garbage —
        they are masked here).  All blocks must agree on ``n_signals``.
    n_samples_list:
        Per-block sample counts ``k_i`` (each ``>= 0``).

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of shape ``(n_signals, n_words(sum(k_i)))``.
    """
    chunks = [np.asarray(c, dtype=np.uint64) for c in chunks]
    counts = [int(k) for k in n_samples_list]
    if len(chunks) != len(counts):
        raise ValueError(
            f"{len(chunks)} chunks but {len(counts)} sample counts"
        )
    if not chunks:
        raise ValueError("concat_packed needs at least one chunk")
    signals = chunks[0].shape[0]
    for chunk, k in zip(chunks, counts):
        if chunk.ndim != 2 or chunk.shape[0] != signals:
            raise ValueError(
                f"all chunks must be 2-D with {signals} signal rows, "
                f"got shape {chunk.shape}"
            )
        if chunk.shape[1] < n_words(k):
            raise ValueError(
                f"chunk of {chunk.shape[1]} words cannot hold {k} samples"
            )
    total = sum(counts)
    out = np.zeros((signals, n_words(total)), dtype=np.uint64)
    offset = 0
    for chunk, k in zip(chunks, counts):
        if k == 0:
            continue
        live = mask_padding(chunk[:, : n_words(k)], k)
        word, bit = divmod(offset, WORD_BITS)
        span = live.shape[1]
        if bit == 0:
            out[:, word : word + span] |= live
        else:
            shift = np.uint64(bit)
            unshift = np.uint64(WORD_BITS - bit)
            out[:, word : word + span] |= live << shift
            spill = live >> unshift
            # the last spill word may fall past the result when the final
            # samples fit below the word boundary; masked bits make it zero
            stop = min(word + 1 + span, out.shape[1])
            out[:, word + 1 : stop] |= spill[:, : stop - word - 1]
        offset += k
    return out


def unpack_bits(packed: np.ndarray, n_samples: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`, truncated to ``n_samples`` rows.

    Parameters
    ----------
    packed:
        ``uint64`` array of shape ``(n_signals, n_words)``.
    n_samples:
        Number of samples to recover; must fit in the packed words.

    Returns
    -------
    numpy.ndarray
        ``uint8`` matrix of shape ``(n_samples, n_signals)``.
    """
    arr = np.asarray(packed, dtype=np.uint64)
    if arr.ndim != 2:
        raise ValueError(f"packed must be 2-D, got shape {arr.shape}")
    if n_samples < 0:
        raise ValueError(f"n_samples must be non-negative, got {n_samples}")
    signals, words = arr.shape
    if n_samples > words * WORD_BITS:
        raise ValueError(
            f"packed data holds {words * WORD_BITS} bits per signal, "
            f"cannot recover {n_samples} samples"
        )
    as_bytes = np.ascontiguousarray(arr.astype(_WORD_DTYPE, copy=False)).view(np.uint8)
    as_bytes = as_bytes.reshape(signals, words * (WORD_BITS // 8))
    # Transpose the byte matrix first so the expansion to bits lands directly
    # in (samples, signals) layout instead of needing a bit-matrix transpose.
    unpacked = np.unpackbits(
        np.ascontiguousarray(as_bytes.T), axis=0, bitorder="little"
    )
    return unpacked[:n_samples]
