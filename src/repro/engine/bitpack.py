"""Bit-packing of binary sample batches into machine words.

The bit-packed layout is the software analogue of the FPGA datapath: one
``uint64`` word holds the value of one binary *signal* for 64 *samples*, so a
single bitwise CPU instruction evaluates that signal for a whole word of
samples at once.  A batch of ``n`` samples over ``F`` signals therefore
becomes an ``(F, ceil(n / 64))`` matrix of words — signals along the rows,
samples along the bit axis.

Bit order is little-endian within a word: sample ``s`` lives at bit
``s % 64`` of word ``s // 64``.  Words are padded with zero bits past the
last sample; consumers that invert signals may leave garbage in the padding,
which :func:`unpack_bits` discards by truncating to the requested sample
count.
"""

from __future__ import annotations

import numpy as np

#: Number of samples carried by one packed word.
WORD_BITS = 64

#: dtype of a packed word, with explicit byte order so that the byte-level
#: (de)packing below is platform independent.
_WORD_DTYPE = np.dtype("<u8")


def n_words(n_samples: int) -> int:
    """Number of ``uint64`` words needed to hold ``n_samples`` bits."""
    if n_samples < 0:
        raise ValueError(f"n_samples must be non-negative, got {n_samples}")
    return (n_samples + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a binary sample matrix into words, samples along the bit axis.

    Parameters
    ----------
    bits:
        Array of shape ``(n_samples, n_signals)`` containing 0/1 values.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of shape ``(n_signals, n_words(n_samples))`` where
        bit ``s % 64`` of word ``[f, s // 64]`` is ``bits[s, f]``.
    """
    arr = np.asarray(bits)
    if arr.ndim != 2:
        raise ValueError(f"bits must be 2-D, got shape {arr.shape}")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must contain only 0/1 values")
    arr = arr.astype(np.uint8, copy=False)
    samples, signals = arr.shape
    words = n_words(samples)
    # packbits is much faster along a contiguous axis, so pay for one byte
    # transpose copy up front and pack each signal's samples contiguously.
    transposed = np.ascontiguousarray(arr.T)
    packed_bytes = np.packbits(transposed, axis=1, bitorder="little")
    padded = np.zeros((signals, words * (WORD_BITS // 8)), dtype=np.uint8)
    padded[:, : packed_bytes.shape[1]] = packed_bytes
    return padded.view(_WORD_DTYPE).astype(np.uint64, copy=False)


def packed_weighted_sums(
    packed: np.ndarray, weights: np.ndarray, n_samples: int
) -> np.ndarray:
    """Per-sample integer dot product of packed signals with integer weights.

    Computes ``sum_k weights[k] * bit[s, k]`` for every sample ``s`` without
    unpacking the signals: each weight's binary planes are accumulated into a
    bit-sliced (vertical) counter with word-wide full adders — the software
    form of a hardware popcount tree.  Only the few count planes of the
    result are unpacked at the end, so the cost scales with ``log2(sum
    |weights|)`` words per sample instead of one byte per signal per sample.

    Parameters
    ----------
    packed:
        ``uint64`` array of shape ``(n_signals, n_words)`` as produced by
        :func:`pack_bits`.  Padding bits may hold garbage; the corresponding
        samples are truncated from the result.
    weights:
        Integer weights of shape ``(n_signals,)``; any sign.
    n_samples:
        Number of samples to recover.

    Returns
    -------
    numpy.ndarray
        ``int64`` vector of shape ``(n_samples,)``.
    """
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise ValueError(f"packed must be 2-D, got shape {packed.shape}")
    weights = np.asarray(weights)
    if weights.shape != (packed.shape[0],):
        raise ValueError(
            f"weights must have shape ({packed.shape[0]},), got {weights.shape}"
        )
    if not np.issubdtype(weights.dtype, np.integer):
        raise ValueError("weights must be integers (quantise first)")
    total = np.zeros(n_samples, dtype=np.int64)
    for sign in (1, -1):
        magnitudes = np.maximum(sign * weights.astype(np.int64), 0)
        planes = _vertical_accumulate(packed, magnitudes)
        if not planes:
            continue
        counts = unpack_bits(np.stack(planes), n_samples).astype(np.int64)
        total += sign * (counts @ (np.int64(1) << np.arange(len(planes), dtype=np.int64)))
    return total


def _vertical_accumulate(packed: np.ndarray, magnitudes: np.ndarray) -> list:
    """Bit-sliced sum ``sum_k magnitudes[k] * row_k``: one word per plane.

    Each set bit ``j`` of a weight adds its signal's word row at plane ``j``
    of the counter; carries ripple upward through word-wide half adders
    (``sum = a ^ b``, ``carry = a & b``), exactly like a hardware counter
    column.
    """
    planes: list = []
    for row, magnitude in zip(packed, magnitudes):
        magnitude = int(magnitude)
        plane = 0
        while magnitude:
            if magnitude & 1:
                carry = row
                level = plane
                while len(planes) < level:  # counter not yet this tall
                    planes.append(np.zeros_like(row))
                while True:
                    if level == len(planes):
                        planes.append(carry.copy())
                        break
                    carry_out = planes[level] & carry
                    planes[level] = planes[level] ^ carry
                    if not carry_out.any():
                        break
                    carry = carry_out
                    level += 1
            magnitude >>= 1
            plane += 1
    return planes


def unpack_bits(packed: np.ndarray, n_samples: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`, truncated to ``n_samples`` rows.

    Parameters
    ----------
    packed:
        ``uint64`` array of shape ``(n_signals, n_words)``.
    n_samples:
        Number of samples to recover; must fit in the packed words.

    Returns
    -------
    numpy.ndarray
        ``uint8`` matrix of shape ``(n_samples, n_signals)``.
    """
    arr = np.asarray(packed, dtype=np.uint64)
    if arr.ndim != 2:
        raise ValueError(f"packed must be 2-D, got shape {arr.shape}")
    if n_samples < 0:
        raise ValueError(f"n_samples must be non-negative, got {n_samples}")
    signals, words = arr.shape
    if n_samples > words * WORD_BITS:
        raise ValueError(
            f"packed data holds {words * WORD_BITS} bits per signal, "
            f"cannot recover {n_samples} samples"
        )
    as_bytes = np.ascontiguousarray(arr.astype(_WORD_DTYPE, copy=False)).view(np.uint8)
    as_bytes = as_bytes.reshape(signals, words * (WORD_BITS // 8))
    # Transpose the byte matrix first so the expansion to bits lands directly
    # in (samples, signals) layout instead of needing a bit-matrix transpose.
    unpacked = np.unpackbits(
        np.ascontiguousarray(as_bytes.T), axis=0, bitorder="little"
    )
    return unpacked[:n_samples]
