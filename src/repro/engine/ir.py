"""Engine IR: a mutable, pass-friendly view of a LUT netlist.

:class:`~repro.core.netlist.LUTNetlist` is an append-only build artefact —
ideal for classifiers emitting their LUTs, hostile to a compiler that wants
to fold, fuse, split and delete nodes.  :class:`IRGraph` is the engine's
intermediate representation: the same DAG-of-LUTs semantics, but with nodes
held in a name-indexed topological list that passes may freely rewrite, plus
the analyses passes need (fanout counts, level structure, reachability).

The IR round-trips losslessly: ``IRGraph.from_netlist(n).to_netlist()``
reproduces the netlist node for node, so every pass can be equivalence-checked
against ``LUTNetlist.evaluate_outputs`` on the original graph.

Conventions shared with the netlist (and relied on by every pass):

* primary inputs occupy the reserved ``in<i>`` namespace and have no node;
* a node's first input is the most significant truth-table address bit;
* node order is topological — every input of a node is a primary input or an
  earlier node.

For pass authors
================

A pass receives the graph, mutates it and returns it.  The workflow that
keeps passes honest:

* query the analyses (:meth:`IRGraph.fanout_counts`,
  :meth:`IRGraph.live_nodes`, :meth:`IRGraph.node_levels`) *before*
  rewriting — they are computed fresh per call, not cached, so a pass that
  interleaves queries and mutations must keep its own bookkeeping (see
  ``FuseChainsPass`` updating its local fanout dict);
* nodes may pass through transiently inconsistent states (wrong table size
  for the input count) mid-rewrite; call :meth:`IRGraph.validate` at the end
  of the pass in tests to prove the invariants were restored;
* delete via :meth:`IRGraph.remove_nodes`, whose contract is trust-based:
  the caller guarantees nothing (no node input, no declared output) still
  reads the removed signals — :meth:`IRGraph.validate` catches a violation
  after the fact;
* never drop or rename a declared output signal: downstream consumers (the
  lowering, the hardware codegen) address results by output position, which
  is only stable because passes preserve the ``outputs`` list (constant
  folding *aliases* an output to a constant node rather than deleting it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core.netlist import (
    LUTNetlist,
    is_primary_input,
    primary_input_index,
)


@dataclass
class IRNode:
    """One LUT node, mutable so passes can rewrite it in place.

    Unlike :class:`~repro.core.netlist.NetlistNode`, the invariants (table
    size, duplicate inputs) are checked by :meth:`IRGraph.validate` rather
    than at construction, so a pass may move a node through transiently
    inconsistent states while rewriting it.
    """

    name: str
    kind: str
    inputs: List[str]
    table: np.ndarray
    metadata: dict = field(default_factory=dict)

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    def is_constant(self) -> bool:
        """True for zero-input nodes (the IR's constant representation)."""
        return not self.inputs

    def constant_value(self) -> int:
        if not self.is_constant():
            raise ValueError(f"node {self.name!r} is not a constant")
        return int(self.table[0])


class IRGraph:
    """A topologically ordered, name-indexed DAG of :class:`IRNode` LUTs."""

    def __init__(self, n_primary_inputs: int) -> None:
        if n_primary_inputs <= 0:
            raise ValueError("n_primary_inputs must be positive")
        self.n_primary_inputs = n_primary_inputs
        self._nodes: List[IRNode] = []
        self._by_name: Dict[str, IRNode] = {}
        self.outputs: List[str] = []

    # ------------------------------------------------------------ conversion
    @classmethod
    def from_netlist(cls, netlist: LUTNetlist) -> "IRGraph":
        """Build an IR graph from a netlist; tables are copied, not shared."""
        graph = cls(n_primary_inputs=netlist.n_primary_inputs)
        for node in netlist.nodes:
            graph.add_node(
                node.name,
                node.kind,
                list(node.input_signals),
                node.table.copy(),
                dict(node.metadata),
            )
        graph.outputs = list(netlist.output_signals)
        return graph

    def to_netlist(self) -> LUTNetlist:
        """Lower back to an immutable netlist (validates on the way out)."""
        netlist = LUTNetlist(n_primary_inputs=self.n_primary_inputs)
        for node in self._nodes:
            netlist.add_node(
                node.name, node.kind, list(node.inputs), node.table, dict(node.metadata)
            )
        for signal in self.outputs:
            netlist.mark_output(signal)
        return netlist

    # ------------------------------------------------------------- accessors
    @property
    def nodes(self) -> List[IRNode]:
        """The nodes in topological order (a live list — do not mutate)."""
        return self._nodes

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def node(self, name: str) -> IRNode:
        return self._by_name[name]

    def is_primary_input(self, signal: str) -> bool:
        return (
            is_primary_input(signal)
            and primary_input_index(signal) < self.n_primary_inputs
        )

    # -------------------------------------------------------------- building
    def add_node(
        self,
        name: str,
        kind: str,
        inputs: List[str],
        table: np.ndarray,
        metadata: Optional[dict] = None,
    ) -> IRNode:
        """Append a node at the end of the topological order."""
        if name in self._by_name:
            raise ValueError(f"duplicate node name {name!r}")
        if self.is_primary_input(name):
            raise ValueError(f"node name {name!r} shadows a primary input")
        node = IRNode(
            name=name,
            kind=kind,
            inputs=list(inputs),
            table=np.asarray(table, dtype=np.uint8),
            metadata=metadata or {},
        )
        self._nodes.append(node)
        self._by_name[name] = node
        return node

    def remove_nodes(self, names: Iterable[str]) -> None:
        """Drop a set of nodes; callers guarantee nothing still reads them."""
        doomed = set(names)
        if not doomed:
            return
        self._nodes = [n for n in self._nodes if n.name not in doomed]
        for name in doomed:
            self._by_name.pop(name, None)

    # -------------------------------------------------------------- analyses
    def fanout_counts(self) -> Dict[str, int]:
        """Number of reads of every node's output signal.

        Declared graph outputs count as one read each (they are read by the
        outside world), so a node with fanout zero is genuinely dead.
        """
        counts = {node.name: 0 for node in self._nodes}
        for node in self._nodes:
            for sig in node.inputs:
                if sig in counts:
                    counts[sig] += 1
        for sig in self.outputs:
            if sig in counts:
                counts[sig] += 1
        return counts

    def live_nodes(self) -> set:
        """Names of nodes reachable from the declared outputs."""
        live: set = set()
        stack = [sig for sig in self.outputs if sig in self._by_name]
        while stack:
            name = stack.pop()
            if name in live:
                continue
            live.add(name)
            for sig in self._by_name[name].inputs:
                if sig in self._by_name:
                    stack.append(sig)
        return live

    def node_levels(self) -> Dict[str, int]:
        """Longest-chain level of every node (primary inputs sit at level 0)."""
        level: Dict[str, int] = {}
        for node in self._nodes:
            input_levels = [
                level[sig] if sig in level else 0 for sig in node.inputs
            ]
            level[node.name] = (max(input_levels) if input_levels else 0) + 1
        return level

    def logic_depth(self) -> int:
        """Longest LUT chain from any primary input to any declared output."""
        level = self.node_levels()
        if not self.outputs:
            return max(level.values(), default=0)
        return max((level.get(sig, 0) for sig in self.outputs), default=0)

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check the pass invariants; raises ``ValueError`` on violation."""
        seen: set = set()
        for node in self._nodes:
            if self._by_name.get(node.name) is not node:
                raise ValueError(f"node {node.name!r} is not indexed by name")
            expected = 1 << node.n_inputs
            if node.table.shape != (expected,):
                raise ValueError(
                    f"node {node.name!r}: table must have {expected} entries, "
                    f"got {node.table.shape}"
                )
            if len(set(node.inputs)) != len(node.inputs):
                raise ValueError(f"node {node.name!r}: duplicate input signals")
            for sig in node.inputs:
                if self.is_primary_input(sig) or sig in seen:
                    continue
                raise ValueError(
                    f"node {node.name!r} reads {sig!r} before it is defined"
                )
            seen.add(node.name)
        for sig in self.outputs:
            if sig not in seen and not self.is_primary_input(sig):
                raise ValueError(f"output {sig!r} is not produced by the graph")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IRGraph({self.n_nodes} nodes, {self.n_primary_inputs} inputs, "
            f"{len(self.outputs)} outputs)"
        )
