"""Optimisation passes over the engine IR.

The compiler pipeline between a :class:`~repro.core.netlist.LUTNetlist` and
the lowered :class:`~repro.engine.compiled_netlist.CompiledNetlist` program is
a sequence of ordered, individually testable passes over
:class:`~repro.engine.ir.IRGraph`:

``ConstantFoldPass``
    Propagates constants through truth tables, drops don't-care inputs
    (support reduction), eliminates identity buffers, and prunes every node
    unreachable from the declared outputs.

``FuseChainsPass``
    Fuses single-fanout LUT chains into wider tables.  Fusion is driven by
    the packed engine's cost model — a LUT costs ``~2**P`` word muxes — so a
    chain is merged exactly when the fused table is no more expensive than
    the pair it replaces, which also cuts levels, groups and scatter/gather
    traffic.

``DedupTablesPass``
    Merges structurally identical nodes — same ordered inputs, same truth
    table — into one, rewriting every consumer (and declared output) to the
    surviving copy.  Trained banks repeat tables constantly (tied trees,
    duplicated constants, mirrored comparators), and in the lowered program
    each survivor costs its word cascade exactly once.  The pass only ever
    removes nodes, so program cost (see :func:`table_cost`) never increases
    — an invariant the test suite asserts.

``DecomposePass``
    Shannon-decomposes LUTs wider than the physical fabric onto
    ``max_inputs``-input tables plus mux nodes, exactly like the FPGA
    synthesiser does with ``P = 8`` designs (``repro.hardware.lut_decompose``
    is a thin wrapper over this pass, so hardware codegen and the engine
    share one implementation).

Pass ordering
=============

:func:`default_passes` runs **fold → fuse → dedup → decompose**, and the
order is load-bearing:

* folding first shrinks supports (a constant or don't-care input severs a
  chain link), which both exposes more single-fanout chains to the fuser and
  keeps fused tables small;
* deduplication runs *after* fusion, not before: merging two copies of a
  node raises its fanout above one, which would block the chain walk from
  inlining either copy — fuse first, then collapse whatever identical
  tables remain (including ones fusion itself just created);
* fusion runs before decomposition because fusing *then* splitting can
  re-balance a deep chain onto the fabric, whereas decomposing first would
  introduce multi-fanout mux nodes that block the chain walk;
* decomposition runs late so the invariant "no node wider than
  ``max_inputs``" is established in one place (fusion is additionally capped
  at the fabric width, so it never builds a table decomposition would
  immediately split again);
* a second fold runs after decomposition to clean up degenerate cofactors
  (a cofactor table that collapsed to a constant or a buffer), and a second
  dedup after that catches equal cofactor tables decomposition splits out
  of sibling wide LUTs.

Each pass is a semantics-preserving graph-to-graph rewrite, so inserting a
custom pass anywhere in the list is safe as long as it preserves the
input/output behaviour.

The fusion cost rule
====================

The packed engine evaluates a ``P``-input LUT with ``2**P - 1`` word muxes,
so table cost is ``~2**P``.  Fusing a producer (width ``Pp``) into its sole
consumer (width ``Pc``) yields a table on the union support of width ``W``;
the fusion is accepted iff

    ``2**W  <  2**Pp + 2**Pc``

i.e. strictly cheaper than the pair it replaces.  Equal cost is rejected on
purpose: the rewrite would be measured as a loss once the extra
scatter/gather of the wider group is counted, and strictness keeps the pass
monotone (every accepted fusion reduces total mux count, so the walk
terminates without a fixpoint budget).  ``_MAX_TABLE_WIDTH`` caps ``W`` as a
safety net against pathological chains.

Every pass preserves the graph's input/output semantics bit for bit: for any
binary batch, ``run(graph).to_netlist().evaluate_outputs`` equals the
original netlist's.  The property tests in ``tests/engine/test_ir_passes.py``
enforce this per pass and for the full pipeline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.ir import IRGraph, IRNode
from repro.utils.bitops import binary_to_index, enumerate_binary_inputs

#: Truth table of a 2:1 mux with address bits (select, a, b):
#: ``select = 0 -> a``, ``select = 1 -> b``.  Decomposition emits these and
#: the lowered program evaluates them with a dedicated 3-op word mux.
MUX_TABLE = np.array([0, 0, 1, 1, 0, 1, 0, 1], dtype=np.uint8)

#: Hard ceiling on fused table width; ``2**16`` entries is the largest table
#: worth materialising (the cost rule keeps real fusions far below this).
_MAX_TABLE_WIDTH = 16


class Pass:
    """Base class: a named graph-to-graph rewrite."""

    name: str = "pass"

    def run(self, graph: IRGraph) -> IRGraph:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class PassManager:
    """Runs an ordered sequence of passes.

    With ``validate=True`` the graph invariants are re-checked after every
    pass — cheap insurance while developing a new pass, skipped in
    production compiles.
    """

    def __init__(self, passes: Iterable[Pass], validate: bool = False) -> None:
        self.passes: List[Pass] = list(passes)
        self.validate = validate

    def run(self, graph: IRGraph) -> IRGraph:
        for p in self.passes:
            graph = p.run(graph)
            if self.validate:
                graph.validate()
        return graph


# --------------------------------------------------------------------------
# constant folding + support reduction + dead-node pruning
# --------------------------------------------------------------------------
class ConstantFoldPass(Pass):
    """Fold constants, drop don't-care inputs, prune dead nodes.

    One topological sweep per invocation:

    * zero-input nodes and nodes whose table collapses are recorded as
      constants and substituted into every consumer's truth table;
    * inputs a table does not actually depend on are dropped (support
      reduction — Shannon cofactors on that input are equal);
    * identity buffers (1-input ``[0, 1]`` tables) are aliased away;
    * finally, every node unreachable from the declared outputs is removed.
    """

    name = "constant-fold"

    def run(self, graph: IRGraph) -> IRGraph:
        const: Dict[str, int] = {}
        alias: Dict[str, str] = {}

        def resolve(signal: str) -> str:
            while signal in alias:
                signal = alias[signal]
            return signal

        for node in graph.nodes:
            inputs = [resolve(sig) for sig in node.inputs]
            if any(sig in const for sig in inputs) or len(set(inputs)) != len(
                inputs
            ) or inputs != node.inputs:
                self._rebuild_table(node, inputs, const)
            self._reduce_support(node)
            if node.n_inputs == 0:
                const[node.name] = node.constant_value()
            elif node.n_inputs == 1 and np.array_equal(
                node.table, np.array([0, 1], dtype=np.uint8)
            ):
                alias[node.name] = node.inputs[0]

        graph.outputs = [resolve(sig) for sig in graph.outputs]
        live = graph.live_nodes()
        graph.remove_nodes(
            [node.name for node in graph.nodes if node.name not in live]
        )
        return graph

    @staticmethod
    def _rebuild_table(node: IRNode, inputs: List[str], const: Dict[str, int]) -> None:
        """Re-express the table over the distinct non-constant inputs."""
        kept: List[str] = []
        for sig in inputs:
            if sig not in const and sig not in kept:
                kept.append(sig)
        rows = enumerate_binary_inputs(len(kept))
        columns = []
        for sig in inputs:
            if sig in const:
                columns.append(
                    np.full(rows.shape[0], const[sig], dtype=np.uint8)
                )
            else:
                columns.append(rows[:, kept.index(sig)])
        if columns:
            node.table = node.table[binary_to_index(np.column_stack(columns))]
        node.inputs = kept

    @staticmethod
    def _reduce_support(node: IRNode) -> None:
        """Drop inputs whose two Shannon cofactors are identical."""
        axis = 0
        while axis < node.n_inputs:
            cube = node.table.reshape((2,) * node.n_inputs)
            zero = np.take(cube, 0, axis=axis)
            one = np.take(cube, 1, axis=axis)
            if np.array_equal(zero, one):
                node.table = np.ascontiguousarray(zero).reshape(-1)
                node.inputs = node.inputs[:axis] + node.inputs[axis + 1 :]
            else:
                axis += 1


# --------------------------------------------------------------------------
# single-fanout chain fusion
# --------------------------------------------------------------------------
class FuseChainsPass(Pass):
    """Fuse single-fanout LUT chains into wider tables.

    A node read by exactly one consumer (and not declared an output) can be
    inlined into that consumer by composing the truth tables.  Fusion is
    applied only when the packed-engine cost strictly decreases —
    ``2**W < 2**P_parent + 2**P_child`` for fused width ``W`` — i.e. when
    parent and child overlap enough that the fused table is genuinely
    narrower than the pair.  (Equal-cost fusions such as two disjoint
    2-input LUTs into a 3-input table trade the saved gather/scatter for a
    deeper Shannon cascade and measure as a wash or a loss, so they are
    rejected.)  Chains over a shared support therefore collapse to a single
    table while wide LUTs are left alone.  ``max_width`` additionally caps
    ``W``; when the pipeline later decomposes onto a physical fabric, the
    cap is the fabric width, so fusion never creates a table the decomposer
    would immediately split back apart.
    """

    name = "fuse-chains"

    def __init__(self, max_width: Optional[int] = None) -> None:
        if max_width is not None and max_width < 1:
            raise ValueError("max_width must be positive")
        self.max_width = min(max_width or _MAX_TABLE_WIDTH, _MAX_TABLE_WIDTH)

    def run(self, graph: IRGraph) -> IRGraph:
        changed = True
        while changed:
            changed = False
            fanout = graph.fanout_counts()
            outputs = set(graph.outputs)
            fused: set = set()
            for parent in graph.nodes:
                if parent.name in fused:
                    continue
                while True:
                    child = self._pick_child(graph, parent, fanout, outputs, fused)
                    if child is None:
                        break
                    self._fuse(parent, child, fanout)
                    fused.add(child.name)
                    changed = True
            graph.remove_nodes(fused)
        return graph

    def _pick_child(
        self,
        graph: IRGraph,
        parent: IRNode,
        fanout: Dict[str, int],
        outputs: set,
        fused: set,
    ) -> Optional[IRNode]:
        for sig in parent.inputs:
            if sig not in graph or sig in outputs or sig in fused:
                continue
            if fanout.get(sig) != 1:
                continue
            child = graph.node(sig)
            if child.n_inputs == 0:
                continue  # constants are ConstantFoldPass territory
            width = len(self._fused_inputs(parent, child))
            if width > self.max_width:
                continue
            if (1 << width) < (1 << parent.n_inputs) + (1 << child.n_inputs):
                return child
        return None

    @staticmethod
    def _fused_inputs(parent: IRNode, child: IRNode) -> List[str]:
        inputs = [sig for sig in parent.inputs if sig != child.name]
        for sig in child.inputs:
            if sig not in inputs:
                inputs.append(sig)
        return inputs

    def _fuse(self, parent: IRNode, child: IRNode, fanout: Dict[str, int]) -> None:
        """Inline ``child`` into ``parent``, composing the truth tables."""
        inputs = self._fused_inputs(parent, child)
        rows = enumerate_binary_inputs(len(inputs))
        child_columns = rows[:, [inputs.index(sig) for sig in child.inputs]]
        child_values = child.table[binary_to_index(child_columns)]
        columns = [
            child_values if sig == child.name else rows[:, inputs.index(sig)]
            for sig in parent.inputs
        ]
        # Signals read by both parent and child are merged into one column,
        # so their fanout drops by the number of duplicate reads.
        for sig in set(parent.inputs) & set(child.inputs):
            if sig in fanout:
                fanout[sig] -= 1
        fanout.pop(child.name, None)
        parent.table = parent.table[binary_to_index(np.column_stack(columns))]
        parent.inputs = inputs
        parent.metadata.setdefault("fused_from", []).append(child.name)


# --------------------------------------------------------------------------
# structural truth-table deduplication
# --------------------------------------------------------------------------
def table_cost(graph) -> int:
    """The packed engine's cost model: ``sum(2**P)`` over all live nodes.

    A ``P``-input LUT lowers to ``2**P - 1`` word muxes (plus a constant
    broadcast at ``P = 0``), so this is the mux-count proxy every
    cost-driven pass optimises against.  Duck-typed over anything with
    ``.nodes`` carrying ``n_inputs`` — both :class:`~repro.engine.ir.IRGraph`
    and :class:`~repro.core.netlist.LUTNetlist`.
    """
    return sum(1 << node.n_inputs for node in graph.nodes)


class DedupTablesPass(Pass):
    """Merge structurally identical nodes into one shared copy.

    One topological sweep: each node's inputs are first rewritten through
    the alias map (so duplicates whose inputs were themselves duplicates
    still converge), then the node is keyed by ``(inputs, table bytes)``.
    The first node with a given key survives; later ones are aliased to it
    and removed, with declared outputs re-pointed at the survivor (the IR
    contract allows output aliasing — ``ConstantFoldPass`` relies on the
    same rule).  Aliases never chain: a surviving node is by construction
    never itself aliased.

    When aliasing makes a consumer read the same surviving signal through
    two of its inputs (its two producers were duplicates of each other),
    the consumer's table is re-expressed over the distinct inputs — a
    strictly narrower table, so the netlist invariant "no duplicate input
    signals" holds and cost still only goes down.

    The pass only removes nodes and never widens a table, so
    :func:`table_cost` is monotonically non-increasing — asserted by the
    property tests, and the reason it can sit anywhere in the pipeline
    without a budget check.
    """

    name = "dedup-tables"

    def run(self, graph: IRGraph) -> IRGraph:
        seen: Dict[Tuple, str] = {}
        alias: Dict[str, str] = {}
        dropped: List[str] = []
        for node in graph.nodes:
            inputs = [alias.get(sig, sig) for sig in node.inputs]
            if len(set(inputs)) != len(inputs):
                ConstantFoldPass._rebuild_table(node, inputs, {})
            else:
                node.inputs = inputs
            key = (tuple(node.inputs), node.table.tobytes())
            survivor = seen.get(key)
            if survivor is None:
                seen[key] = node.name
            else:
                alias[node.name] = survivor
                dropped.append(node.name)
        graph.outputs = [alias.get(sig, sig) for sig in graph.outputs]
        graph.remove_nodes(dropped)
        return graph


# --------------------------------------------------------------------------
# decomposition onto the physical LUT fabric
# --------------------------------------------------------------------------
class DecomposePass(Pass):
    """Shannon-decompose wide LUTs onto ``max_inputs``-input tables.

    A ``P > max_inputs`` node splits recursively on its most significant
    input into two cofactor tables combined by a mux node (kind ``"mux"``,
    table :data:`MUX_TABLE`) — the software mirror of Xilinx F7/F8 muxes.
    The final mux inherits the original node's name, so downstream output
    declarations and consumers are untouched.  Naming (``<n>_c0``,
    ``<n>_c1``, ``<n>_mux``) and metadata (``decomposed_from``) match what
    ``repro.hardware.lut_decompose`` historically produced; that module now
    delegates here.
    """

    name = "decompose"

    def __init__(self, max_inputs: int = 6) -> None:
        if max_inputs < 2:
            raise ValueError("max_inputs must be at least 2")
        self.max_inputs = max_inputs

    def run(self, graph: IRGraph) -> IRGraph:
        result = IRGraph(n_primary_inputs=graph.n_primary_inputs)
        for node in graph.nodes:
            if node.n_inputs <= self.max_inputs:
                result.add_node(
                    node.name, node.kind, list(node.inputs), node.table, dict(node.metadata)
                )
                continue
            self._split(result, node, node.name, list(node.inputs), node.table)
        result.outputs = list(graph.outputs)
        return result

    def _split(
        self,
        result: IRGraph,
        node: IRNode,
        name: str,
        signals: List[str],
        table: np.ndarray,
    ) -> str:
        if len(signals) <= self.max_inputs:
            result.add_node(name, node.kind, signals, table, dict(node.metadata))
            return name
        half = table.size // 2
        low = self._split(result, node, f"{name}_c0", signals[1:], table[:half])
        high = self._split(result, node, f"{name}_c1", signals[1:], table[half:])
        mux_name = f"{name}_mux" if name != node.name else name
        result.add_node(
            mux_name,
            "mux",
            [signals[0], low, high],
            MUX_TABLE,
            {"decomposed_from": node.name},
        )
        return mux_name


# --------------------------------------------------------------------------
# pipeline assembly
# --------------------------------------------------------------------------
def default_passes(max_lut_inputs: Optional[int] = None) -> Tuple[Pass, ...]:
    """The default pipeline: fold → fuse → dedup [→ decompose → fold → dedup].

    Without a fabric width the pipeline folds, fuses, and deduplicates;
    with ``max_lut_inputs`` it additionally decomposes wide LUTs onto the
    fabric, folds once more to clean up degenerate cofactors, and
    deduplicates again to collapse equal cofactor tables the split exposed.
    Fusion is capped at the fabric width so it never produces a table
    decomposition would immediately split again.
    """
    passes: List[Pass] = [
        ConstantFoldPass(),
        FuseChainsPass(max_width=max_lut_inputs),
        DedupTablesPass(),
    ]
    if max_lut_inputs is not None:
        passes.append(DecomposePass(max_inputs=max_lut_inputs))
        passes.append(ConstantFoldPass())
        passes.append(DedupTablesPass())
    return tuple(passes)


def optimize_netlist(
    netlist,
    *,
    passes: Optional[Sequence[Pass]] = None,
    max_lut_inputs: Optional[int] = None,
):
    """Run the pass pipeline on a netlist, returning an equivalent netlist.

    ``passes=None`` selects :func:`default_passes`; an explicit empty
    sequence returns the input untouched (the raw PR-1 lowering).
    """
    if passes is None:
        passes = default_passes(max_lut_inputs)
    elif max_lut_inputs is not None:
        raise ValueError(
            "max_lut_inputs configures the default pipeline; "
            "with an explicit pass list, add DecomposePass yourself"
        )
    if not passes:
        return netlist
    graph = PassManager(passes).run(IRGraph.from_netlist(netlist))
    return graph.to_netlist()
