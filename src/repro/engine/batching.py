"""Shared batched-prediction API.

Every classifier in the library exposes the same batched entry point,
``predict_batch(X, batch_size=None)``.  Models with a bit-packed fast path
(PoET-BiN, RINC) override it to run the compiled engine; arithmetic models
(the output layer, the baselines) inherit :class:`BatchedPredictorMixin`,
which chunks the batch so memory stays bounded under serving-sized inputs.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np


def predict_in_batches(
    predict: Callable[[np.ndarray], np.ndarray],
    X: np.ndarray,
    batch_size: Optional[int] = None,
) -> np.ndarray:
    """Apply ``predict`` to ``X`` in row chunks and concatenate the results.

    ``batch_size=None`` runs the whole batch at once.  Empty inputs are
    passed straight through so the model decides the output shape.
    """
    X = np.asarray(X)
    if batch_size is None or X.shape[0] <= batch_size:
        return predict(X)
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    chunks = [
        predict(X[start : start + batch_size])
        for start in range(0, X.shape[0], batch_size)
    ]
    return np.concatenate(chunks, axis=0)


class BatchedPredictorMixin:
    """Default ``predict_batch`` for models whose ``predict`` is vectorised."""

    def predict_batch(
        self, X: np.ndarray, batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Predict in row chunks of ``batch_size`` (all rows when ``None``)."""
        return predict_in_batches(self.predict, X, batch_size)
