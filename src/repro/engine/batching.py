"""Shared batched-prediction API and request coalescing primitives.

Every classifier in the library exposes the same batched entry point,
``predict_batch(X, batch_size=None)``.  Models with a bit-packed fast path
(PoET-BiN, RINC) override it to run the compiled engine; arithmetic models
(the output layer, the baselines) inherit :class:`BatchedPredictorMixin`,
which chunks the batch so memory stays bounded under serving-sized inputs.

The inverse direction — many *small* requests sharing one *large* packed
evaluation — is served by the pack/scatter pair
:func:`coalesce_batches` / :func:`split_batches`: the serving layer
(:mod:`repro.serving`) stacks concurrent requests into a single matrix, runs
the engine once, and scatters per-request slices of the result back to the
callers.  In the multi-model server each hosted model runs its own
coalesce/scatter queue over this pair while sharing one
:class:`~repro.engine.parallel.WorkerPool` underneath.  The pair itself is
pure array bookkeeping, usable by any batching front end (asyncio server,
thread pool, offline scheduler).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


def predict_in_batches(
    predict: Callable[[np.ndarray], np.ndarray],
    X: np.ndarray,
    batch_size: Optional[int] = None,
) -> np.ndarray:
    """Apply ``predict`` to ``X`` in row chunks and concatenate the results.

    ``batch_size=None`` runs the whole batch at once.  Empty inputs are
    passed straight through so the model decides the output shape.
    """
    X = np.asarray(X)
    if batch_size is None or X.shape[0] <= batch_size:
        return predict(X)
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    chunks = [
        predict(X[start : start + batch_size])
        for start in range(0, X.shape[0], batch_size)
    ]
    return np.concatenate(chunks, axis=0)


def coalesce_batches(
    chunks: Sequence[np.ndarray],
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Stack row chunks into one matrix, remembering each chunk's row span.

    Returns ``(X, bounds)`` where ``X`` is the vertical concatenation of
    ``chunks`` and ``bounds[i] = (lo, hi)`` is the half-open row range of
    chunk ``i`` inside ``X``.  All chunks must be 2-D with the same column
    count; zero-row chunks are allowed and keep their (empty) span so the
    scatter side stays positional.
    """
    if not chunks:
        raise ValueError("coalesce_batches needs at least one chunk")
    arrays = [np.asarray(c) for c in chunks]
    widths = {a.shape[1] for a in arrays if a.ndim == 2}
    if any(a.ndim != 2 for a in arrays) or len(widths) > 1:
        shapes = [a.shape for a in arrays]
        raise ValueError(f"chunks must be 2-D with equal widths, got {shapes}")
    bounds: List[Tuple[int, int]] = []
    offset = 0
    for a in arrays:
        bounds.append((offset, offset + a.shape[0]))
        offset += a.shape[0]
    return np.concatenate(arrays, axis=0), bounds


def split_batches(
    result: np.ndarray, bounds: Sequence[Tuple[int, int]]
) -> List[np.ndarray]:
    """Scatter a coalesced result back into per-chunk slices.

    ``result`` is any array whose first axis is the coalesced sample axis
    (labels ``(n,)``, scores ``(n, nc)``, bit matrices ``(n, F)`` — the
    trailing shape is preserved).  ``bounds`` is the span list produced by
    :func:`coalesce_batches`; the returned views are in the same order.
    """
    result = np.asarray(result)
    if bounds and result.shape[0] != bounds[-1][1]:
        raise ValueError(
            f"result has {result.shape[0]} rows but bounds cover "
            f"{bounds[-1][1]}"
        )
    return [result[lo:hi] for lo, hi in bounds]


class BatchedPredictorMixin:
    """Default ``predict_batch`` for models whose ``predict`` is vectorised."""

    def predict_batch(
        self, X: np.ndarray, batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Predict in row chunks of ``batch_size`` (all rows when ``None``)."""
        return predict_in_batches(self.predict, X, batch_size)
