"""BinaryNet-style classifier baseline.

The classifier portion of BinaryNet (Courbariaux et al., 2016): fully
connected layers whose weights are binarised to ±1 in the forward pass, with
±1 sign activations, trained with straight-through estimators, squared hinge
loss and Adam, clipping the shadow weights to [-1, 1] after every update.  At
inference every MAC is an XNOR + popcount, which is what the paper's 1-bit
energy estimate of Table 6 models.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.batching import BatchedPredictorMixin
from repro.nn.layers.base import Layer
from repro.nn.layers.binary import BinaryDense, xnor_popcount_matmul
from repro.nn.layers.activations import Sign
from repro.nn.layers.dense import Dense
from repro.nn.losses import SquaredHingeLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam
from repro.nn.schedulers import ExponentialDecay
from repro.nn.trainer import Trainer
from repro.utils.metrics import accuracy
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_binary_matrix, check_labels


class BinaryNetClassifier(BatchedPredictorMixin):
    """Binary-weight, binary-activation MLP over binary features.

    Parameters
    ----------
    n_classes:
        Number of output classes.
    hidden_sizes:
        Widths of the binarised hidden layers.
    epochs, batch_size, learning_rate, lr_decay:
        Training hyper-parameters (Adam + exponential decay, as in the paper).
    """

    def __init__(
        self,
        n_classes: int,
        hidden_sizes: Sequence[int] = (256, 256),
        epochs: int = 25,
        batch_size: int = 64,
        learning_rate: float = 0.005,
        lr_decay: float = 0.95,
        seed: SeedLike = 0,
    ) -> None:
        if n_classes <= 1:
            raise ValueError("n_classes must be at least 2")
        if not hidden_sizes or any(h <= 0 for h in hidden_sizes):
            raise ValueError("hidden_sizes must be non-empty and positive")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.n_classes = n_classes
        self.hidden_sizes = tuple(hidden_sizes)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.lr_decay = lr_decay
        self.seed = seed
        self.model_: Optional[Sequential] = None
        self.n_features_: Optional[int] = None

    def _build(self, n_features: int) -> Sequential:
        rng = as_rng(self.seed)
        layers: List[Layer] = []
        in_dim = n_features
        for width in self.hidden_sizes:
            layers.append(BinaryDense(in_dim, width, seed=int(rng.integers(2**31))))
            layers.append(Sign())
            in_dim = width
        # the final read-out keeps real-valued weights, as in the reference
        # BinaryNet classifier (the last layer is not binarised)
        layers.append(Dense(in_dim, self.n_classes, seed=int(rng.integers(2**31))))
        return Sequential(layers)

    # ------------------------------------------------------------------ fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BinaryNetClassifier":
        X = check_binary_matrix(X, "X")
        y = check_labels(y, self.n_classes, "y")
        self.n_features_ = X.shape[1]
        self.model_ = self._build(self.n_features_)
        trainer = Trainer(
            self.model_,
            SquaredHingeLoss(),
            Adam(self.model_.layers, learning_rate=self.learning_rate),
            schedule=ExponentialDecay(self.learning_rate, self.lr_decay),
            clip_binary_weights=True,
            seed=self.seed,
        )
        # ±1 input encoding: BinaryNet treats 0/1 features as -1/+1 signals
        trainer.fit(
            2.0 * X.astype(np.float64) - 1.0,
            y,
            epochs=self.epochs,
            batch_size=self.batch_size,
        )
        return self

    # -------------------------------------------------------------- predict
    def _check_fitted(self) -> None:
        if self.model_ is None:
            raise RuntimeError("this classifier has not been fitted yet")

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_binary_matrix(X, "X")
        signed = 2.0 * X.astype(np.float64) - 1.0
        return self.model_.predict(signed, batch_size=256)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        y = check_labels(y, self.n_classes, "y")
        return accuracy(y, self.predict(X))

    # ------------------------------------------------------ hardware counts
    def binary_neuron_layer_sizes(self) -> List[int]:
        """Layer widths used by the Table 6 binary-neuron energy estimate."""
        self._check_fitted()
        return [self.n_features_, *self.hidden_sizes, self.n_classes]

    def predict_with_xnor_popcount(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Integer-only inference through the binarised hidden layers.

        Returns ``(labels, hidden_bits)`` where the hidden layers are computed
        exclusively with XNOR + popcount arithmetic (the hardware-friendly
        path); the result must match :meth:`predict` exactly, which the tests
        verify.
        """
        self._check_fitted()
        X = check_binary_matrix(X, "X")
        bits = X.astype(np.int64)
        for layer in self.model_.layers[:-1]:
            if isinstance(layer, BinaryDense):
                w_bits = (layer.params["W"] >= 0).astype(np.int64)
                pre_activation = xnor_popcount_matmul(bits, w_bits)
                if layer.use_bias:
                    pre_activation = pre_activation + layer.params["b"]
                bits = (pre_activation >= 0).astype(np.int64)
        read_out: Dense = self.model_.layers[-1]
        scores = (2.0 * bits - 1.0) @ read_out.params["W"] + read_out.params["b"]
        return np.argmax(scores, axis=1), bits.astype(np.uint8)
