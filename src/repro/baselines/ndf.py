"""Neural Decision Forest baseline (Kontschieder et al., 2015), simplified.

A differentiable decision forest: each tree routes an input through a full
binary tree of soft decision nodes (sigmoid of a linear function of the
features) and mixes per-leaf class distributions with the resulting routing
probabilities.  Decision weights are trained by gradient descent; leaf
distributions with the paper's multiplicative update.  The original work
couples the forest to a CNN; here — as in the PoET-BiN comparison — the trees
consume the fixed binary feature vector.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.engine.batching import BatchedPredictorMixin
from repro.utils.metrics import accuracy
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_binary_matrix, check_labels


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class _SoftTree:
    """One differentiable tree of fixed depth."""

    def __init__(self, n_features: int, n_classes: int, depth: int, rng: np.random.Generator):
        self.depth = depth
        self.n_nodes = 2**depth - 1
        self.n_leaves = 2**depth
        self.W = rng.normal(0.0, 0.1, size=(n_features, self.n_nodes))
        self.b = np.zeros(self.n_nodes)
        self.leaf_distributions = np.full((self.n_leaves, n_classes), 1.0 / n_classes)
        # Pre-compute, for every leaf, the node index and direction at each depth.
        self.paths: List[List[tuple]] = []
        for leaf in range(self.n_leaves):
            node = 0
            path = []
            for level in range(depth):
                go_right = (leaf >> (depth - 1 - level)) & 1
                path.append((node, go_right))
                node = 2 * node + 1 + go_right
            self.paths.append(path)

    def routing(self, X: np.ndarray) -> np.ndarray:
        """Per-leaf arrival probabilities mu, shape (n, n_leaves)."""
        d = _sigmoid(X @ self.W + self.b)  # probability of going right at each node
        mu = np.ones((X.shape[0], self.n_leaves))
        for leaf, path in enumerate(self.paths):
            for node, go_right in path:
                mu[:, leaf] *= d[:, node] if go_right else (1.0 - d[:, node])
        return mu

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self.routing(X) @ self.leaf_distributions


class NeuralDecisionForest(BatchedPredictorMixin):
    """A small forest of differentiable decision trees.

    Parameters
    ----------
    n_classes:
        Number of classes.
    n_trees:
        Number of trees; predictions average their class distributions.
    depth:
        Depth of every tree (``2**depth`` leaves).
    epochs, batch_size, learning_rate:
        Gradient-descent settings for the decision-node parameters; leaf
        distributions use the multiplicative update of the original paper
        after every epoch.
    """

    def __init__(
        self,
        n_classes: int,
        n_trees: int = 4,
        depth: int = 4,
        epochs: int = 15,
        batch_size: int = 128,
        learning_rate: float = 0.1,
        seed: SeedLike = 0,
    ) -> None:
        if n_classes <= 1:
            raise ValueError("n_classes must be at least 2")
        if n_trees <= 0 or depth <= 0:
            raise ValueError("n_trees and depth must be positive")
        if depth > 10:
            raise ValueError("depth above 10 would require more than 1024 leaves per tree")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.n_classes = n_classes
        self.n_trees = n_trees
        self.depth = depth
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.trees_: List[_SoftTree] = []

    # ------------------------------------------------------------------ fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "NeuralDecisionForest":
        X_bits = check_binary_matrix(X, "X")
        y = check_labels(y, self.n_classes, "y")
        X_float = 2.0 * X_bits.astype(np.float64) - 1.0  # centre the binary features
        rng = as_rng(self.seed)
        n, n_features = X_float.shape
        one_hot = np.zeros((n, self.n_classes))
        one_hot[np.arange(n), y] = 1.0

        self.trees_ = [
            _SoftTree(n_features, self.n_classes, self.depth, rng) for _ in range(self.n_trees)
        ]
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                self._gradient_step(X_float[idx], one_hot[idx])
            self._update_leaves(X_float, one_hot)
        return self

    def _gradient_step(self, X: np.ndarray, one_hot: np.ndarray) -> None:
        """One SGD step on the decision-node parameters of every tree."""
        batch = X.shape[0]
        for tree in self.trees_:
            d = _sigmoid(X @ tree.W + tree.b)
            mu = np.ones((batch, tree.n_leaves))
            for leaf, path in enumerate(tree.paths):
                for node, go_right in path:
                    mu[:, leaf] *= d[:, node] if go_right else (1.0 - d[:, node])
            probs = mu @ tree.leaf_distributions
            probs = np.clip(probs, 1e-9, None)
            # dL/dP for cross entropy with the tree's own prediction
            dL_dP = -one_hot / probs / batch
            dL_dmu = dL_dP @ tree.leaf_distributions.T  # (batch, n_leaves)
            # gradient w.r.t. the routing probabilities d
            dL_dd = np.zeros_like(d)
            for leaf, path in enumerate(tree.paths):
                for node, go_right in path:
                    denom = d[:, node] if go_right else (1.0 - d[:, node])
                    denom = np.clip(denom, 1e-9, None)
                    contribution = dL_dmu[:, leaf] * mu[:, leaf] / denom
                    dL_dd[:, node] += contribution if go_right else -contribution
            dL_dz = dL_dd * d * (1.0 - d)
            tree.W -= self.learning_rate * (X.T @ dL_dz)
            tree.b -= self.learning_rate * dL_dz.sum(axis=0)

    def _update_leaves(self, X: np.ndarray, one_hot: np.ndarray) -> None:
        """Multiplicative leaf-distribution update (Kontschieder et al., eq. 11)."""
        for tree in self.trees_:
            mu = tree.routing(X)
            probs = np.clip(mu @ tree.leaf_distributions, 1e-9, None)
            # responsibility of leaf l for sample i and class c
            weights = one_hot / probs  # (n, C)
            new_pi = tree.leaf_distributions * (mu.T @ weights)  # (L, C)
            totals = new_pi.sum(axis=1, keepdims=True)
            tree.leaf_distributions = np.where(
                totals > 0, new_pi / np.where(totals > 0, totals, 1.0), 1.0 / self.n_classes
            )

    # -------------------------------------------------------------- predict
    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("this forest has not been fitted yet")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities averaged over the forest."""
        self._check_fitted()
        X_bits = check_binary_matrix(X, "X")
        X_float = 2.0 * X_bits.astype(np.float64) - 1.0
        probs = np.zeros((X_float.shape[0], self.n_classes))
        for tree in self.trees_:
            probs += tree.predict_proba(X_float)
        return probs / self.n_trees

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        y = check_labels(y, self.n_classes, "y")
        return accuracy(y, self.predict(X))
