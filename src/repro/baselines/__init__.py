"""Comparison classifiers used in Table 2 and Table 6 of the paper.

All baselines operate on the same binary feature vector as PoET-BiN (the paper
keeps the feature extractor fixed and swaps only the classifier portion):

* :class:`~repro.baselines.binarynet.BinaryNetClassifier` — binary weights and
  activations trained with straight-through estimators (Courbariaux et al.).
* :class:`~repro.baselines.polybinn.POLYBiNNClassifier` — one-vs-all boosted
  off-the-shelf decision trees (Abdelsalam et al.).
* :class:`~repro.baselines.ndf.NeuralDecisionForest` — differentiable decision
  trees with learned leaf distributions (Kontschieder et al.).
"""

from repro.baselines.binarynet import BinaryNetClassifier
from repro.baselines.ndf import NeuralDecisionForest
from repro.baselines.polybinn import POLYBiNNClassifier

__all__ = ["BinaryNetClassifier", "NeuralDecisionForest", "POLYBiNNClassifier"]
