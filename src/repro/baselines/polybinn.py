"""POLYBiNN-style baseline: one-vs-all boosted off-the-shelf decision trees.

POLYBiNN (Abdelsalam et al., 2018) builds the classifier out of conventional
binary decision trees combined with AND-OR logic, one ensemble per class, and
picks the class with the highest vote confidence.  The paper uses it as the
"plain decision trees" comparison point in Table 2: deeper, node-wise trees
that are not constrained to map onto single LUTs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.boosting.adaboost import AdaBoost
from repro.engine.batching import BatchedPredictorMixin
from repro.trees.classic_tree import ClassicDecisionTree
from repro.utils.metrics import accuracy
from repro.utils.validation import check_binary_matrix, check_labels


class POLYBiNNClassifier(BatchedPredictorMixin):
    """One-vs-all ensembles of conventional (node-wise) decision trees.

    Parameters
    ----------
    n_classes:
        Number of classes.
    n_trees_per_class:
        AdaBoost rounds in each one-vs-all ensemble.
    max_depth:
        Depth limit of each off-the-shelf tree (POLYBiNN uses deep trees;
        depth 6-10 is typical for its published MNIST results).
    """

    def __init__(
        self,
        n_classes: int,
        n_trees_per_class: int = 8,
        max_depth: int = 6,
        seed: int = 0,
    ) -> None:
        if n_classes <= 1:
            raise ValueError("n_classes must be at least 2")
        if n_trees_per_class <= 0:
            raise ValueError("n_trees_per_class must be positive")
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self.n_classes = n_classes
        self.n_trees_per_class = n_trees_per_class
        self.max_depth = max_depth
        self.seed = seed
        self.ensembles_: List[AdaBoost] = []

    # ------------------------------------------------------------------ fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "POLYBiNNClassifier":
        X = check_binary_matrix(X, "X")
        y = check_labels(y, self.n_classes, "y")
        self.ensembles_ = []
        for cls in range(self.n_classes):
            target = (y == cls).astype(np.uint8)
            booster = AdaBoost(
                lambda _round, depth=self.max_depth: ClassicDecisionTree(max_depth=depth),
                n_rounds=self.n_trees_per_class,
            )
            booster.fit(X, target)
            self.ensembles_.append(booster)
        return self

    # -------------------------------------------------------------- predict
    def _check_fitted(self) -> None:
        if not self.ensembles_:
            raise RuntimeError("this classifier has not been fitted yet")

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Per-class confidence: the normalised AdaBoost margin of each ensemble."""
        self._check_fitted()
        X = check_binary_matrix(X, "X")
        scores = np.empty((X.shape[0], self.n_classes), dtype=np.float64)
        for cls, booster in enumerate(self.ensembles_):
            margin = booster.decision_function(X)
            alpha_sum = float(np.sum(np.abs(booster.alphas_)))
            scores[:, cls] = margin / alpha_sum if alpha_sum > 0 else margin
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class with the highest one-vs-all confidence."""
        return np.argmax(self.decision_scores(X), axis=1)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        y = check_labels(y, self.n_classes, "y")
        return accuracy(y, self.predict(X))

    # ------------------------------------------------------------ structure
    def total_trees(self) -> int:
        """Number of trees across all one-vs-all ensembles."""
        self._check_fitted()
        return sum(len(b.rounds_) for b in self.ensembles_)

    def max_distinct_features_per_tree(self) -> int:
        """Largest number of distinct features any single tree touches.

        Off-the-shelf trees are not constrained to ``P`` distinct inputs,
        which is exactly why they do not map onto single LUTs (the paper's
        §2.1.1 argument against them).
        """
        self._check_fitted()
        return max(
            record.learner.count_distinct_features()
            for booster in self.ensembles_
            for record in booster.rounds_
        )
