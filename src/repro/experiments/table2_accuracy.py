"""Table 2 — classification accuracy of A1-A4 and the three baselines.

The original table reports MNIST / CIFAR-10 / SVHN accuracies for the vanilla
network (A1), the binary-feature network (A2), the teacher network (A3),
PoET-BiN (A4), and the BinaryNet / POLYBiNN / NDF baselines trained on the
same binary features.  This experiment reruns the whole Fig. 5 workflow on the
synthetic stand-in datasets (reduced scale) and the three baselines on the
binary features the teacher network produces, so the comparison protocol is
identical even though absolute numbers differ from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.binarynet import BinaryNetClassifier
from repro.baselines.ndf import NeuralDecisionForest
from repro.baselines.polybinn import POLYBiNNClassifier
from repro.core.workflow import PoETBiNWorkflow, WorkflowResult
from repro.datasets.registry import load_dataset
from repro.experiments.architectures import (
    get_architecture,
    reduced_experiment_settings,
)
from repro.utils.metrics import accuracy


@dataclass
class Table2Row:
    """One dataset row of Table 2 (accuracies in percent)."""

    architecture: str
    dataset: str
    vanilla: float  # A1
    binary_features: float  # A2
    teacher: float  # A3
    poetbin: float  # A4
    binarynet: float
    polybinn: float
    ndf: float
    paper_poetbin: float

    def as_cells(self) -> List[object]:
        return [
            self.architecture,
            self.dataset,
            round(self.vanilla, 2),
            round(self.binary_features, 2),
            round(self.teacher, 2),
            round(self.poetbin, 2),
            round(self.binarynet, 2),
            round(self.polybinn, 2),
            round(self.ndf, 2),
            round(self.paper_poetbin, 2),
        ]


TABLE2_HEADERS = [
    "Arch.",
    "Dataset",
    "A1 vanilla (%)",
    "A2 binary (%)",
    "A3 teacher (%)",
    "A4 PoET-BiN (%)",
    "BinaryNet (%)",
    "POLYBiNN (%)",
    "NDF (%)",
    "paper A4 (%)",
]


def _run_baselines(
    result: WorkflowResult, settings, n_classes: int, seed: int
) -> Dict[str, float]:
    """Train the three comparison classifiers on the workflow's binary features."""
    features_train = result.features_train
    features_test = result.features_test
    y_train, y_test = result.y_train, result.y_test

    binarynet = BinaryNetClassifier(
        n_classes=n_classes,
        hidden_sizes=settings.baseline_hidden_sizes,
        epochs=settings.baseline_epochs,
        seed=seed,
    ).fit(features_train, y_train)
    polybinn = POLYBiNNClassifier(
        n_classes=n_classes, n_trees_per_class=4, max_depth=5, seed=seed
    ).fit(features_train, y_train)
    ndf = NeuralDecisionForest(
        n_classes=n_classes,
        n_trees=3,
        depth=4,
        epochs=max(4, settings.baseline_epochs // 2),
        learning_rate=0.2,
        seed=seed,
    ).fit(features_train, y_train)
    return {
        "binarynet": accuracy(y_test, binarynet.predict(features_test)) * 100,
        "polybinn": accuracy(y_test, polybinn.predict(features_test)) * 100,
        "ndf": accuracy(y_test, ndf.predict(features_test)) * 100,
    }


def run_table2(
    datasets: Sequence[str] = ("mnist", "cifar10", "svhn"),
    seed: int = 0,
    fast: bool = False,
    include_baselines: bool = True,
    n_train: Optional[int] = None,
    n_test: Optional[int] = None,
) -> List[Table2Row]:
    """Regenerate Table 2 on the synthetic stand-in datasets.

    ``fast=True`` uses the smallest structure-preserving settings (for tests
    and smoke benchmarks); the defaults match what EXPERIMENTS.md records.
    """
    rows: List[Table2Row] = []
    for name in datasets:
        arch = get_architecture(name)
        kwargs = {}
        if n_train is not None:
            kwargs["n_train"] = n_train
        if n_test is not None:
            kwargs["n_test"] = n_test
        settings = reduced_experiment_settings(name, seed=seed, fast=fast, **kwargs)
        data = load_dataset(name, **settings.dataset_kwargs)
        workflow = PoETBiNWorkflow(
            feature_extractor_factory=settings.feature_extractor_factory,
            feature_dim=settings.feature_dim,
            spec=settings.spec,
            epochs=settings.epochs,
            batch_size=settings.batch_size,
            learning_rate=settings.learning_rate,
            output_epochs=settings.output_epochs,
            seed=seed,
        )
        result = workflow.run(data)
        if include_baselines:
            baselines = _run_baselines(result, settings, arch.n_classes, seed)
        else:
            baselines = {"binarynet": float("nan"), "polybinn": float("nan"), "ndf": float("nan")}
        rows.append(
            Table2Row(
                architecture=arch.symbol,
                dataset=name,
                vanilla=result.accuracies.vanilla * 100,
                binary_features=result.accuracies.binary_features * 100,
                teacher=result.accuracies.teacher * 100,
                poetbin=result.accuracies.poetbin * 100,
                binarynet=baselines["binarynet"],
                polybinn=baselines["polybinn"],
                ndf=baselines["ndf"],
                paper_poetbin=arch.paper.accuracy_poetbin,
            )
        )
    return rows
