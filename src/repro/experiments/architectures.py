"""Architecture registry — Table 1 of the paper, plus reduced offline settings.

For every dataset the registry records:

* the *paper-scale* architecture (feature extractor symbol, classifier layer
  widths, LUT width ``P``, number of decision trees, clock frequency, reported
  LUT count and latency) used by the analytical experiments (Tables 3-7), and
* a *reduced* configuration (smaller synthetic dataset, small convolutional
  feature extractor, fewer trees) used whenever something actually has to be
  trained offline (Table 2 and the ablations).  The reduction preserves every
  structural property of the pipeline — binary features, an intermediate layer
  of ``nc x intermediate_per_class`` bits, RINC-2 modules, the sparse
  quantised output layer — only the widths shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.core.workflow import ClassifierSpec
from repro.nn.layers.base import Layer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.activations import ReLU
from repro.nn.layers.pooling import MaxPool2D


@dataclass(frozen=True)
class PaperReference:
    """Numbers the paper reports for one dataset (used for comparison only)."""

    accuracy_vanilla: float
    accuracy_binary: float
    accuracy_teacher: float
    accuracy_poetbin: float
    accuracy_binarynet: float
    accuracy_polybinn: float
    accuracy_ndf: float
    dynamic_power_w: float
    static_power_w: float
    total_power_w: float
    luts: int
    latency_ns: float
    clock_hz: float
    poetbin_energy_j: float


@dataclass(frozen=True)
class ArchitectureSpec:
    """One row of Table 1 plus the derived quantities other tables need."""

    symbol: str
    dataset: str
    feature_extractor: str
    classifier_layers: Tuple[int, ...]  # feature width, hidden widths..., classes
    lut_inputs: int  # P
    rinc_levels: int  # L
    n_decision_trees: int  # trees per RINC-L module
    n_classes: int
    output_bits: int
    paper: PaperReference

    @property
    def n_intermediate_neurons(self) -> int:
        """Paper intermediate layer width: nc x P."""
        return self.n_classes * self.lut_inputs

    @property
    def rinc_branching(self) -> Tuple[int, ...]:
        """Per-level boosting widths whose product is ``n_decision_trees``."""
        inner = self.lut_inputs
        outer = self.n_decision_trees // inner
        if outer * inner != self.n_decision_trees:
            raise ValueError(
                f"{self.symbol}: {self.n_decision_trees} trees does not factor "
                f"as outer x {inner}"
            )
        return (outer, inner)

    def paper_rinc_luts(self) -> int:
        """Logical LUTs of one RINC module at paper scale (trees + MAT units)."""
        outer, inner = self.rinc_branching
        return outer * (inner + 1) + 1

    def paper_classifier_luts(self) -> int:
        """Logical LUTs of the full classifier: all modules + output layer."""
        return (
            self.n_intermediate_neurons * self.paper_rinc_luts()
            + self.n_classes * self.output_bits
        )


_PAPER_MNIST = PaperReference(
    accuracy_vanilla=99.20, accuracy_binary=99.06, accuracy_teacher=98.93,
    accuracy_poetbin=98.15, accuracy_binarynet=98.97, accuracy_polybinn=97.52,
    accuracy_ndf=99.42, dynamic_power_w=0.468, static_power_w=0.045,
    total_power_w=0.513, luts=11899, latency_ns=9.11, clock_hz=62.5e6,
    poetbin_energy_j=8.2e-9,
)
_PAPER_CIFAR = PaperReference(
    accuracy_vanilla=91.02, accuracy_binary=89.88, accuracy_teacher=89.10,
    accuracy_poetbin=92.64, accuracy_binarynet=89.76, accuracy_polybinn=91.58,
    accuracy_ndf=90.46, dynamic_power_w=0.300, static_power_w=0.041,
    total_power_w=0.341, luts=9650, latency_ns=9.48, clock_hz=62.5e6,
    poetbin_energy_j=5.4e-9,
)
_PAPER_SVHN = PaperReference(
    accuracy_vanilla=97.36, accuracy_binary=96.98, accuracy_teacher=96.22,
    accuracy_poetbin=95.13, accuracy_binarynet=95.06, accuracy_polybinn=94.97,
    accuracy_ndf=95.20, dynamic_power_w=0.374, static_power_w=0.043,
    total_power_w=0.417, luts=2660, latency_ns=5.85, clock_hz=100e6,
    poetbin_energy_j=4.1e-9,
)

#: Table 1 of the paper (M1 / C1 / S1), keyed by dataset name.
ARCHITECTURES: Dict[str, ArchitectureSpec] = {
    "mnist": ArchitectureSpec(
        symbol="M1",
        dataset="mnist",
        feature_extractor="LeNet-FE",
        classifier_layers=(512, 512, 10),
        lut_inputs=8,
        rinc_levels=2,
        n_decision_trees=32,
        n_classes=10,
        output_bits=8,
        paper=_PAPER_MNIST,
    ),
    "cifar10": ArchitectureSpec(
        symbol="C1",
        dataset="cifar10",
        feature_extractor="VGG11-FE",
        classifier_layers=(512, 4096, 4096, 10),
        lut_inputs=8,
        rinc_levels=2,
        n_decision_trees=40,
        n_classes=10,
        output_bits=8,
        paper=_PAPER_CIFAR,
    ),
    "svhn": ArchitectureSpec(
        symbol="S1",
        dataset="svhn",
        feature_extractor="VGG11-FE",
        classifier_layers=(512, 2048, 2048, 10),
        lut_inputs=6,
        rinc_levels=2,
        n_decision_trees=36,
        n_classes=10,
        output_bits=8,
        paper=_PAPER_SVHN,
    ),
}


def get_architecture(name: str) -> ArchitectureSpec:
    """Look up the Table 1 entry for a dataset name (``mnist``/``cifar10``/``svhn``)."""
    key = name.lower().replace("-", "")
    if key not in ARCHITECTURES:
        known = ", ".join(sorted(ARCHITECTURES))
        raise KeyError(f"unknown architecture {name!r}; known: {known}")
    return ARCHITECTURES[key]


@dataclass
class ReducedSettings:
    """Everything needed to actually train a scaled-down pipeline offline."""

    dataset_kwargs: Dict[str, object]
    feature_extractor_factory: Callable[[], List[Layer]]
    feature_dim: int
    spec: ClassifierSpec
    epochs: int
    batch_size: int
    learning_rate: float
    output_epochs: int
    baseline_hidden_sizes: Tuple[int, ...] = (64,)
    baseline_epochs: int = 15
    metadata: Dict[str, object] = field(default_factory=dict)


def _mnist_feature_extractor(seed: int = 0) -> Callable[[], List[Layer]]:
    def factory() -> List[Layer]:
        return [
            Conv2D(1, 8, kernel_size=5, stride=2, seed=seed),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(8 * 6 * 6, 128, seed=seed + 1),
        ]

    return factory


def _rgb_feature_extractor(seed: int = 0) -> Callable[[], List[Layer]]:
    def factory() -> List[Layer]:
        return [
            Conv2D(3, 8, kernel_size=5, stride=2, seed=seed),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(8 * 7 * 7, 128, seed=seed + 1),
        ]

    return factory


def reduced_experiment_settings(
    name: str,
    n_train: int = 2500,
    n_test: int = 600,
    seed: int = 0,
    fast: bool = False,
) -> ReducedSettings:
    """Scaled-down training settings for a dataset, structure-preserving.

    ``fast=True`` shrinks everything further (used by unit tests and quick
    benchmark smoke runs); the default sizes are what EXPERIMENTS.md reports.
    """
    arch = get_architecture(name)
    if fast:
        n_train, n_test = min(n_train, 800), min(n_test, 200)
    if arch.dataset == "mnist":
        factory = _mnist_feature_extractor(seed)
    else:
        factory = _rgb_feature_extractor(seed)
    # Reduced RINC settings: keep L=2 and the dataset's relative tree budget,
    # but with P=6 and fewer intermediate neurons per class.
    branching = (2, 6) if fast else (3, 6)
    spec = ClassifierSpec(
        n_classes=arch.n_classes,
        hidden_sizes=(128,),
        lut_inputs=6,
        rinc_levels=2,
        rinc_branching=branching,
        output_bits=arch.output_bits,
        intermediate_per_class=3 if fast else 4,
    )
    return ReducedSettings(
        dataset_kwargs={"n_train": n_train, "n_test": n_test, "seed": seed},
        feature_extractor_factory=factory,
        feature_dim=128,
        spec=spec,
        epochs=4 if fast else 8,
        batch_size=64,
        learning_rate=0.01,
        output_epochs=15 if fast else 30,
        baseline_hidden_sizes=(64,),
        baseline_epochs=8 if fast else 15,
        metadata={"architecture": arch.symbol, "fast": fast, "seed": seed},
    )
