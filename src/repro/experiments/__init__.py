"""Per-table reproduction harness.

Each ``tableN_*`` module regenerates one table of the paper's evaluation
section; :mod:`repro.experiments.runner` chains them and
:mod:`repro.experiments.reporting` renders the results as text/markdown
tables.  Figures 1-5 of the paper are architecture schematics without measured
data, so the tables are the complete set of reproducible artefacts (the Fig. 5
workflow itself is exercised end-to-end by the Table 2 experiment).
"""

from repro.experiments.architectures import (
    ARCHITECTURES,
    ArchitectureSpec,
    get_architecture,
    reduced_experiment_settings,
)
from repro.experiments.table2_accuracy import Table2Row, run_table2
from repro.experiments.table3_power import Table3Row, run_table3
from repro.experiments.table4_operations import run_table4
from repro.experiments.table5_opcounts import run_table5
from repro.experiments.table6_energy import Table6Row, run_table6
from repro.experiments.table7_resources import Table7Row, run_table7
from repro.experiments.ablations import (
    run_hidden_layer_ablation,
    run_lut_width_ablation,
    run_quantisation_ablation,
)

__all__ = [
    "ARCHITECTURES",
    "ArchitectureSpec",
    "Table2Row",
    "Table3Row",
    "Table6Row",
    "Table7Row",
    "get_architecture",
    "reduced_experiment_settings",
    "run_hidden_layer_ablation",
    "run_lut_width_ablation",
    "run_quantisation_ablation",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
]
