"""Table 4 — per-operation power on the target FPGA.

The paper measures each operation with vendor IP cores; the reproduction keeps
those measurements as the calibrated operation library and this experiment
simply renders it (it is the input to the Table 6 energy estimates, so having
it as an explicit artefact keeps the chain auditable).
"""

from __future__ import annotations

from typing import Dict, List

from repro.hardware.power_model import SPARTAN6_OPERATIONS, OperationPower

TABLE4_HEADERS = [
    "Operation",
    "clock (W)",
    "logic (W)",
    "signal (W)",
    "IO (W)",
    "static (W)",
    "total (W)",
    "compute = logic+signal (W)",
]

_DISPLAY_NAMES = {
    "mult16": "Multiplication (16 bits)",
    "add16": "Addition (16 bits)",
    "mult32": "Multiplication (32 bits)",
    "add32": "Addition (32 bits)",
    "mult_float": "Multiplication (float)",
    "add_float": "Addition (float)",
}


def run_table4(
    operations: Dict[str, OperationPower] = SPARTAN6_OPERATIONS,
) -> List[List[object]]:
    """Render the operation power library as Table 4 rows."""
    rows: List[List[object]] = []
    for key in ("mult16", "add16", "mult32", "add32", "mult_float", "add_float"):
        op = operations[key]
        rows.append(
            [
                _DISPLAY_NAMES.get(key, key),
                op.clock,
                op.logic,
                op.signal,
                op.io,
                op.static,
                round(op.total, 3),
                round(op.compute, 3),
            ]
        )
    return rows
