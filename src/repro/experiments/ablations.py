"""Ablation experiments discussed in the paper's text.

* **Output-layer quantisation** (§3): the paper reports that q=4 loses
  noticeable accuracy, q=8 is near-lossless and q=16 doubles the LUT cost for
  no gain — :func:`run_quantisation_ablation` sweeps q.
* **Hidden-layer RINC variant** (§4.1): instead of emulating the intermediate
  layer, one RINC module per *hidden* neuron lifts MNIST accuracy at a much
  larger resource cost — :func:`run_hidden_layer_ablation` contrasts both at
  reduced scale.
* **LUT width P** (§2.2.1 notes the accuracy/resource trade-off of choosing
  P) — :func:`run_lut_width_ablation` sweeps P.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.output_layer import SparseQuantizedOutputLayer
from repro.core.poetbin import PoETBiNClassifier
from repro.core.rinc import RINCClassifier
from repro.core.workflow import WorkflowResult
from repro.datasets.binary_features import make_binary_intermediate_task
from repro.utils.metrics import accuracy
from repro.utils.rng import as_rng


@dataclass
class AblationRow:
    """Generic (setting, accuracy, LUTs) ablation record."""

    setting: str
    accuracy_percent: float
    luts: int

    def as_cells(self) -> List[object]:
        return [self.setting, round(self.accuracy_percent, 2), self.luts]


ABLATION_HEADERS = ["Setting", "accuracy (%)", "LUTs"]


def run_quantisation_ablation(
    result: WorkflowResult,
    bit_widths: Sequence[int] = (4, 8, 16),
    seed: int = 0,
) -> List[AblationRow]:
    """Retrain the sparse output layer at several quantisation widths ``q``.

    Reuses the RINC modules of an existing workflow result so only the output
    layer changes between settings, isolating the effect of ``q`` exactly as
    the paper describes.
    """
    poetbin = result.poetbin
    bits_train = poetbin.predict_intermediate(result.features_train)
    bits_test = poetbin.predict_intermediate(result.features_test)
    rinc_luts = sum(m.lut_count() for m in poetbin.rinc_modules_)
    rows: List[AblationRow] = []
    for q in bit_widths:
        layer = SparseQuantizedOutputLayer(
            n_classes=poetbin.n_classes,
            fan_in=poetbin.intermediate_per_class,
            n_bits=q,
            epochs=poetbin.output_epochs,
            seed=seed,
        ).fit(bits_train, result.y_train)
        acc = accuracy(result.y_test, layer.predict(bits_test)) * 100
        rows.append(
            AblationRow(
                setting=f"q={q}",
                accuracy_percent=acc,
                luts=rinc_luts + layer.lut_count(),
            )
        )
    return rows


def _synthetic_student_task(seed: int, n_train: int, n_test: int, n_features: int, n_classes: int):
    """Binary features + labels for the structural ablations (no CNN needed)."""
    data = make_binary_intermediate_task(
        n_train=n_train,
        n_test=n_test,
        n_features=n_features,
        n_classes=n_classes,
        n_hidden=24,
        n_active=10,
        seed=seed,
    )
    return data


def _threshold_targets(X: np.ndarray, n_targets: int, seed: int) -> np.ndarray:
    """Binary targets from random sparse threshold neurons over X (a stand-in
    for the teacher's intermediate / hidden activations)."""
    rng = as_rng(seed)
    n, n_features = X.shape
    targets = np.empty((n, n_targets), dtype=np.uint8)
    for j in range(n_targets):
        support = rng.choice(n_features, size=min(8, n_features), replace=False)
        w = rng.normal(size=len(support))
        b = w.sum() / 2
        targets[:, j] = (X[:, support] @ w - b >= 0).astype(np.uint8)
    return targets


def run_hidden_layer_ablation(
    n_classes: int = 5,
    intermediate_per_class: int = 3,
    hidden_neurons: int = 30,
    seed: int = 0,
    fast: bool = True,
) -> List[AblationRow]:
    """Contrast "RINC per intermediate neuron" with "RINC per hidden neuron".

    The §4.1 MNIST discussion: emulating every hidden neuron (512 RINC
    modules) recovers accuracy at a large LUT cost.  At reduced scale this
    compares ``nc x P`` intermediate modules against ``hidden_neurons``
    modules feeding a dense read-out.
    """
    n_train, n_test = (600, 200) if fast else (2000, 500)
    data = _synthetic_student_task(seed, n_train, n_test, n_features=96, n_classes=n_classes)
    rows: List[AblationRow] = []

    # Variant A: standard PoET-BiN (RINC per intermediate neuron).
    intermediate = _threshold_targets(
        np.vstack([data.X_train, data.X_test]), n_classes * intermediate_per_class, seed
    )
    inter_train, inter_test = intermediate[: data.n_train], intermediate[data.n_train :]
    standard = PoETBiNClassifier(
        n_classes=n_classes,
        n_inputs=5,
        n_levels=1,
        intermediate_per_class=intermediate_per_class,
        output_epochs=10,
        seed=seed,
    ).fit(data.X_train, inter_train, data.y_train)
    rows.append(
        AblationRow(
            setting=f"intermediate ({n_classes * intermediate_per_class} RINC modules)",
            accuracy_percent=standard.score(data.X_test, data.y_test) * 100,
            luts=standard.lut_count(),
        )
    )

    # Variant B: one RINC module per hidden neuron + dense read-out retrained
    # on the emulated hidden bits (the paper's 512-module MNIST variant).
    hidden_targets = _threshold_targets(
        np.vstack([data.X_train, data.X_test]), hidden_neurons, seed + 1
    )
    hidden_train, hidden_test = hidden_targets[: data.n_train], hidden_targets[data.n_train :]
    modules = []
    for j in range(hidden_neurons):
        module = RINCClassifier(n_inputs=5, n_levels=1).fit(data.X_train, hidden_train[:, j])
        modules.append(module)
    emulated_train = np.column_stack([m.predict(data.X_train) for m in modules])
    emulated_test = np.column_stack([m.predict(data.X_test) for m in modules])
    # dense (non-sparse) read-out over all emulated hidden bits
    from repro.nn import Adam, Dense, Sequential, SquaredHingeLoss, Trainer

    read_out = Sequential([Dense(hidden_neurons, n_classes, seed=seed)])
    trainer = Trainer(
        read_out, SquaredHingeLoss(), Adam(read_out.layers, learning_rate=0.02), seed=seed
    )
    trainer.fit(emulated_train.astype(np.float64), data.y_train, epochs=30, batch_size=64)
    acc = accuracy(data.y_test, read_out.predict(emulated_test.astype(np.float64))) * 100
    rows.append(
        AblationRow(
            setting=f"hidden ({hidden_neurons} RINC modules + dense read-out)",
            accuracy_percent=acc,
            luts=sum(m.lut_count() for m in modules) + hidden_neurons * 8,
        )
    )
    return rows


def run_lut_width_ablation(
    widths: Sequence[int] = (4, 6, 8),
    seed: int = 0,
    fast: bool = True,
) -> List[AblationRow]:
    """Sweep the LUT input width P of a single RINC-1 module on a binary task."""
    from repro.datasets.binary_features import make_binary_teacher_task

    n_train, n_test = (1200, 400) if fast else (4000, 1000)
    data = make_binary_teacher_task(
        n_train=n_train, n_test=n_test, n_features=128, n_active=24, seed=seed
    )
    rows: List[AblationRow] = []
    for width in widths:
        module = RINCClassifier(n_inputs=width, n_levels=1).fit(data.X_train, data.y_train)
        from repro.hardware.lut_decompose import luts6_required

        physical = module.lut_count() * luts6_required(width)
        rows.append(
            AblationRow(
                setting=f"P={width}",
                accuracy_percent=module.score(data.X_test, data.y_test) * 100,
                luts=physical,
            )
        )
    return rows
