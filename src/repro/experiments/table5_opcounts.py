"""Table 5 — multiply / add counts of the classifier portion of each network."""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.architectures import get_architecture
from repro.hardware.power_model import count_classifier_operations

TABLE5_HEADERS = ["Operation", "MNIST", "CIFAR-10", "SVHN"]

#: the operation counts the paper lists, for direct comparison
PAPER_TABLE5 = {
    "mnist": 267_264,
    "cifar10": 18_915_328,
    "svhn": 5_263_360,
}


def run_table5(datasets: Sequence[str] = ("mnist", "cifar10", "svhn")) -> List[List[object]]:
    """Regenerate Table 5 from the Table 1 classifier layer widths."""
    additions = ["Addition"]
    multiplications = ["Multiplication"]
    paper_row = ["Paper (each)"]
    for name in datasets:
        arch = get_architecture(name)
        counts = count_classifier_operations(arch.classifier_layers)
        additions.append(counts.additions)
        multiplications.append(counts.multiplications)
        paper_row.append(PAPER_TABLE5.get(name, "-"))
    return [additions, multiplications, paper_row]
