"""Table 3 — PoET-BiN power (dynamic / static / total) per dataset.

The paper measures these with the Xilinx power analyser on the synthesised
design; this experiment regenerates the table from the analytical
:class:`~repro.hardware.power_model.PoETBiNPowerModel` applied to the
paper-scale LUT counts and clock frequencies of each architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.architectures import get_architecture
from repro.hardware.lut_decompose import luts6_required
from repro.hardware.power_model import PoETBiNPowerModel


@dataclass
class Table3Row:
    """One dataset column of Table 3."""

    dataset: str
    dynamic_w: float
    static_w: float
    total_w: float
    paper_dynamic_w: float
    paper_static_w: float
    paper_total_w: float
    n_physical_luts: int
    clock_mhz: float

    def as_cells(self) -> List[object]:
        return [
            self.dataset,
            round(self.dynamic_w, 3),
            round(self.static_w, 3),
            round(self.total_w, 3),
            self.paper_dynamic_w,
            self.paper_static_w,
            self.paper_total_w,
            self.n_physical_luts,
            self.clock_mhz,
        ]


TABLE3_HEADERS = [
    "Dataset",
    "dynamic (W)",
    "static (W)",
    "total (W)",
    "paper dynamic (W)",
    "paper static (W)",
    "paper total (W)",
    "physical LUTs",
    "clock (MHz)",
]


def paper_scale_physical_luts(name: str) -> int:
    """Physical 6-input LUT count of the paper-scale design for ``name``.

    Every logical LUT of the RINC modules has ``P`` inputs and therefore costs
    ``luts6_required(P)`` physical LUTs; the output layer LUTs read ``P`` bits
    as well.  For SVHN (P=6) this gives exactly the paper's 2660; for the P=8
    designs it gives the pre-pruning count the synthesizer starts from.
    """
    arch = get_architecture(name)
    per_logical = luts6_required(arch.lut_inputs)
    rinc_logical = arch.n_intermediate_neurons * arch.paper_rinc_luts()
    output_luts = arch.n_classes * arch.output_bits
    return rinc_logical * per_logical + output_luts * per_logical


def run_table3(
    datasets: Sequence[str] = ("mnist", "cifar10", "svhn"),
    model: PoETBiNPowerModel | None = None,
    use_paper_lut_counts: bool = True,
) -> List[Table3Row]:
    """Regenerate Table 3 from the analytical power model.

    ``use_paper_lut_counts=True`` (default) uses the LUT counts the paper
    reports post-synthesis; otherwise the pre-pruning paper-scale counts
    computed by :func:`paper_scale_physical_luts` are used.
    """
    model = model or PoETBiNPowerModel()
    rows: List[Table3Row] = []
    for name in datasets:
        arch = get_architecture(name)
        n_luts = arch.paper.luts if use_paper_lut_counts else paper_scale_physical_luts(name)
        report = model.power_report(n_luts, arch.paper.clock_hz)
        rows.append(
            Table3Row(
                dataset=name,
                dynamic_w=report["dynamic_w"],
                static_w=report["static_w"],
                total_w=report["total_w"],
                paper_dynamic_w=arch.paper.dynamic_power_w,
                paper_static_w=arch.paper.static_power_w,
                paper_total_w=arch.paper.total_power_w,
                n_physical_luts=n_luts,
                clock_mhz=arch.paper.clock_hz / 1e6,
            )
        )
    return rows
