"""Table 6 — per-inference energy of each technique, per dataset.

For each architecture the energy of the float / 32-bit / 16-bit classifiers is
operation counts x per-operation compute power x clock period; the 1-bit
(BinaryNet) column uses the binary-neuron power model; PoET-BiN uses the LUT
power model and its own clock.  The paper's absolute joule figures are also
attached for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.architectures import get_architecture
from repro.hardware.energy_model import EnergyBreakdown, EnergyModel


@dataclass
class Table6Row:
    """One technique row of Table 6 (energies in joules)."""

    technique: str
    mnist: float
    cifar10: float
    svhn: float

    def as_cells(self) -> List[object]:
        return [self.technique, self.mnist, self.cifar10, self.svhn]


TABLE6_HEADERS = ["Technique", "MNIST (J)", "CIFAR-10 (J)", "SVHN (J)"]

#: paper values for direct comparison (Table 6)
PAPER_TABLE6 = {
    "vanilla": {"mnist": 8.0e-5, "cifar10": 5.7e-3, "svhn": 1.6e-3},
    "1-bit quant": {"mnist": 2.1e-7, "cifar10": 3.9e-5, "svhn": 9.2e-6},
    "16-bit quant": {"mnist": 8.5e-6, "cifar10": 6.0e-4, "svhn": 1.0e-4},
    "32-bit quant": {"mnist": 1.7e-5, "cifar10": 1.2e-3, "svhn": 3.6e-4},
    "poet-bin": {"mnist": 8.2e-9, "cifar10": 5.4e-9, "svhn": 4.1e-9},
}


def breakdown_for(name: str, model: EnergyModel | None = None) -> EnergyBreakdown:
    """Energy breakdown of one dataset architecture."""
    model = model or EnergyModel()
    arch = get_architecture(name)
    return model.breakdown(
        arch.classifier_layers, arch.paper.luts, arch.paper.clock_hz
    )


def run_table6(
    datasets: Sequence[str] = ("mnist", "cifar10", "svhn"),
    model: EnergyModel | None = None,
) -> List[Table6Row]:
    """Regenerate Table 6 (techniques as rows, datasets as columns)."""
    model = model or EnergyModel()
    breakdowns = {name: breakdown_for(name, model) for name in datasets}
    rows: List[Table6Row] = []
    for technique in ("vanilla", "1-bit quant", "16-bit quant", "32-bit quant", "poet-bin"):
        values = {
            name: breakdowns[name].as_dict()[technique] for name in datasets
        }
        rows.append(
            Table6Row(
                technique=technique,
                mnist=values.get("mnist", float("nan")),
                cifar10=values.get("cifar10", float("nan")),
                svhn=values.get("svhn", float("nan")),
            )
        )
    return rows


def energy_reduction_summary(datasets: Sequence[str] = ("mnist", "cifar10", "svhn")) -> List[List[object]]:
    """The §4.2 headline numbers: PoET-BiN energy reduction factors."""
    rows = []
    for name in datasets:
        breakdown = breakdown_for(name)
        rows.append(
            [
                name,
                round(breakdown.reduction_vs("vanilla"), 1),
                round(breakdown.reduction_vs("16-bit quant"), 1),
                round(breakdown.reduction_vs("1-bit quant"), 1),
            ]
        )
    return rows
