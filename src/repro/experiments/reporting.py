"""Rendering helpers for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.utils.tables import format_table, render_markdown_table


def rows_to_table(headers: Sequence[str], rows: Iterable, markdown: bool = False) -> str:
    """Render experiment rows (dataclasses with ``as_cells`` or plain lists)."""
    cells: List[List[object]] = []
    for row in rows:
        if hasattr(row, "as_cells"):
            cells.append(row.as_cells())
        else:
            cells.append(list(row))
    renderer = render_markdown_table if markdown else format_table
    return renderer(headers, cells)


def print_section(title: str, body: str) -> str:
    """Format a titled section (returned as well as printed for reuse)."""
    text = f"\n=== {title} ===\n{body}"
    print(text)
    return text
