"""Table 7 — latency and LUT counts of the PoET-BiN implementation.

Two complementary estimates are produced:

* a **paper-scale analytical** estimate from the Table 1 architecture (the
  closed-form LUT counting of §4.3 plus the latency model applied to the
  known logic depth of a RINC-2 + output layer pipeline), and
* a **measured** estimate from an actually trained (reduced-scale) classifier:
  its netlist is pruned, decomposed to 6-input LUTs and pushed through the
  latency model — exercising the same code path a real design flow would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.poetbin import PoETBiNClassifier
from repro.experiments.architectures import get_architecture
from repro.hardware.latency import LatencyModel
from repro.hardware.lut_decompose import luts6_required
from repro.hardware.resources import resource_report


@dataclass
class Table7Row:
    """One dataset column of Table 7."""

    dataset: str
    latency_ns: float
    luts: int
    paper_latency_ns: float
    paper_luts: int
    logic_depth: int

    @property
    def throughput_m_images_per_s(self) -> float:
        """Single-cycle combinational inference: throughput = 1 / latency.

        This is the §4.3 headline ("up to 166M images per second for SVHN,
        100M for MNIST and CIFAR-10").
        """
        return 1e3 / self.latency_ns

    def as_cells(self) -> List[object]:
        return [
            self.dataset,
            round(self.latency_ns, 2),
            self.luts,
            round(self.throughput_m_images_per_s, 1),
            self.paper_latency_ns,
            self.paper_luts,
            self.logic_depth,
        ]


TABLE7_HEADERS = [
    "Dataset",
    "latency (ns)",
    "LUTs",
    "throughput (M images/s)",
    "paper latency (ns)",
    "paper LUTs",
    "logic depth (6-LUT levels)",
]


def paper_scale_row(name: str, latency_model: Optional[LatencyModel] = None) -> Table7Row:
    """Analytical Table 7 entry for the paper-scale architecture."""
    latency_model = latency_model or LatencyModel()
    arch = get_architecture(name)
    per_logical = luts6_required(arch.lut_inputs)
    rinc_logical = arch.n_intermediate_neurons * arch.paper_rinc_luts()
    output_logical = arch.n_classes * arch.output_bits
    physical = (rinc_logical + output_logical) * per_logical
    # logic depth: tree LUT + one MAT per hierarchy level + output-layer LUT.
    # When P exceeds the 6-input fabric width each logical LUT adds a
    # dedicated-mux stage (F7/F8), modelled as one extra level.
    levels_per_logical = 1 if arch.lut_inputs <= 6 else 2
    depth = (arch.rinc_levels + 1 + 1) * levels_per_logical
    latency = latency_model.path_latency(depth)
    return Table7Row(
        dataset=name,
        latency_ns=latency * 1e9,
        luts=physical,
        paper_latency_ns=arch.paper.latency_ns,
        paper_luts=arch.paper.luts,
        logic_depth=depth,
    )


def run_table7(
    datasets: Sequence[str] = ("mnist", "cifar10", "svhn"),
    latency_model: Optional[LatencyModel] = None,
) -> List[Table7Row]:
    """Regenerate Table 7 analytically for the paper-scale architectures."""
    return [paper_scale_row(name, latency_model) for name in datasets]


def measured_row(
    classifier: PoETBiNClassifier,
    dataset: str = "reduced",
    latency_model: Optional[LatencyModel] = None,
    prune: bool = True,
) -> Table7Row:
    """Table 7 entry measured from a trained (reduced-scale) classifier."""
    latency_model = latency_model or LatencyModel()
    netlist = classifier.to_netlist()
    report = resource_report(
        netlist,
        prune=prune,
        n_classes=classifier.n_classes,
        output_bits=classifier.output_bits,
    )
    latency = latency_model.netlist_latency(netlist, include_output_layer=True)
    from repro.hardware.lut_decompose import decompose_netlist

    depth = decompose_netlist(netlist).logic_depth() + 1
    return Table7Row(
        dataset=dataset,
        latency_ns=latency * 1e9,
        luts=report.total_physical_luts,
        paper_latency_ns=float("nan"),
        paper_luts=0,
        logic_depth=depth,
    )
