"""Run every experiment and print the regenerated tables.

Usage::

    python -m repro.experiments.runner            # fast smoke run
    python -m repro.experiments.runner --full     # the EXPERIMENTS.md settings
    python -m repro.experiments.runner --skip-training   # analytical tables only
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Sequence

from repro.experiments.ablations import ABLATION_HEADERS, run_lut_width_ablation
from repro.experiments.architectures import ARCHITECTURES
from repro.experiments.reporting import print_section, rows_to_table
from repro.experiments.table2_accuracy import TABLE2_HEADERS, run_table2
from repro.experiments.table3_power import TABLE3_HEADERS, run_table3
from repro.experiments.table4_operations import TABLE4_HEADERS, run_table4
from repro.experiments.table5_opcounts import TABLE5_HEADERS, run_table5
from repro.experiments.table6_energy import TABLE6_HEADERS, run_table6
from repro.experiments.table7_resources import TABLE7_HEADERS, run_table7


def table1_rows() -> List[List[object]]:
    """Render Table 1 (the architecture registry)."""
    rows = []
    for arch in ARCHITECTURES.values():
        layers = "-".join(str(width) for width in arch.classifier_layers)
        rows.append(
            [
                arch.symbol,
                arch.dataset,
                f"{arch.feature_extractor} + FC({layers})",
                arch.lut_inputs,
                arch.n_decision_trees,
            ]
        )
    return rows


TABLE1_HEADERS = ["Symbol", "Dataset", "Architecture", "P", "DTs per module"]


def run_all(
    datasets: Sequence[str] = ("mnist", "cifar10", "svhn"),
    fast: bool = True,
    skip_training: bool = False,
    seed: int = 0,
    markdown: bool = False,
) -> Dict[str, str]:
    """Run every experiment; returns the rendered tables keyed by name."""
    sections: Dict[str, str] = {}

    sections["table1"] = print_section(
        "Table 1: network architectures",
        rows_to_table(TABLE1_HEADERS, table1_rows(), markdown),
    )
    if not skip_training:
        rows2 = run_table2(datasets, seed=seed, fast=fast)
        sections["table2"] = print_section(
            "Table 2: classification accuracy (synthetic stand-in datasets)",
            rows_to_table(TABLE2_HEADERS, rows2, markdown),
        )
    sections["table3"] = print_section(
        "Table 3: PoET-BiN power (analytical model)",
        rows_to_table(TABLE3_HEADERS, run_table3(datasets), markdown),
    )
    sections["table4"] = print_section(
        "Table 4: per-operation power",
        rows_to_table(TABLE4_HEADERS, run_table4(), markdown),
    )
    sections["table5"] = print_section(
        "Table 5: classifier operation counts",
        rows_to_table(TABLE5_HEADERS, run_table5(datasets), markdown),
    )
    sections["table6"] = print_section(
        "Table 6: energy per inference",
        rows_to_table(TABLE6_HEADERS, run_table6(datasets), markdown),
    )
    sections["table7"] = print_section(
        "Table 7: latency and LUT counts (paper scale, analytical)",
        rows_to_table(TABLE7_HEADERS, run_table7(datasets), markdown),
    )
    if not skip_training:
        ablation = run_lut_width_ablation(fast=fast, seed=seed)
        sections["ablation_p"] = print_section(
            "Ablation: LUT input width P",
            rows_to_table(ABLATION_HEADERS, ablation, markdown),
        )
    return sections


def main(argv: Sequence[str] | None = None) -> None:  # pragma: no cover - CLI entry
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the EXPERIMENTS.md settings")
    parser.add_argument("--skip-training", action="store_true", help="analytical tables only")
    parser.add_argument("--datasets", nargs="+", default=["mnist", "cifar10", "svhn"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--markdown", action="store_true")
    args = parser.parse_args(argv)
    run_all(
        datasets=args.datasets,
        fast=not args.full,
        skip_training=args.skip_training,
        seed=args.seed,
        markdown=args.markdown,
    )


if __name__ == "__main__":  # pragma: no cover
    main()
