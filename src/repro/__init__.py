"""repro: reproduction of PoET-BiN — Power Efficient Tiny Binary Neurons.

The public API is organised in subpackages:

* :mod:`repro.core` — RINC modules, the PoET-BiN classifier and the A1→A4
  training workflow (the paper's primary contribution).
* :mod:`repro.trees` / :mod:`repro.boosting` — decision-tree and AdaBoost
  substrates.
* :mod:`repro.nn` — the NumPy neural-network framework used for the vanilla
  and teacher networks.
* :mod:`repro.engine` — bit-packed batch inference: LUT netlists compiled to
  whole-word bitwise programs (the software analogue of the FPGA datapath).
* :mod:`repro.hardware` — FPGA cost models (power, energy, LUTs, latency) and
  VHDL generation.
* :mod:`repro.baselines` — BinaryNet, POLYBiNN and Neural Decision Forest
  comparison classifiers.
* :mod:`repro.datasets` — synthetic datasets standing in for MNIST, CIFAR-10
  and SVHN.
* :mod:`repro.experiments` — the per-table reproduction harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
