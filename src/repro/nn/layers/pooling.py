"""Max pooling."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class MaxPool2D(Layer):
    """Non-overlapping max pooling over ``pool_size`` x ``pool_size`` windows.

    Inputs whose spatial size is not a multiple of ``pool_size`` are truncated
    at the bottom/right edge, matching the default behaviour of most
    frameworks with ``floor`` output sizing.
    """

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ValueError(f"expected (n, h, w, c) input, got shape {x.shape}")
        n, h, w, c = x.shape
        p = self.pool_size
        out_h, out_w = h // p, w // p
        if out_h == 0 or out_w == 0:
            raise ValueError("input smaller than pooling window")
        trimmed = x[:, : out_h * p, : out_w * p, :]
        windows = trimmed.reshape(n, out_h, p, out_w, p, c)
        out = windows.max(axis=(2, 4))
        # Cache the argmax mask to route gradients (ties share the gradient).
        mask = windows == out[:, :, np.newaxis, :, np.newaxis, :]
        self._cache = (x.shape, mask, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, mask, out_h, out_w = self._cache
        n, h, w, c = input_shape
        p = self.pool_size
        grad = np.asarray(grad_output, dtype=np.float64)
        counts = mask.sum(axis=(2, 4), keepdims=True)
        spread = mask * (grad[:, :, np.newaxis, :, np.newaxis, :] / counts)
        grad_input = np.zeros(input_shape, dtype=np.float64)
        grad_input[:, : out_h * p, : out_w * p, :] = spread.reshape(
            n, out_h * p, out_w * p, c
        )
        return grad_input
