"""Flatten layer: collapse all non-batch axes."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Reshape ``(n, ...)`` inputs to ``(n, prod(...))``."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x)
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output).reshape(self._input_shape)
