"""Activation layers, including the binary sigmoid used by the teacher network.

The *binary sigmoid* (Kwan, 1992) outputs hard 0/1 values; its gradient is
approximated with the straight-through estimator of a piecewise-linear
sigmoid, which is what makes the teacher network of the paper trainable while
producing strictly binary features for the RINC modules.  ``Sign`` is the ±1
variant used by the BinaryNet baseline (Courbariaux et al., 2016).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, 0.0)


class HardTanh(Layer):
    """Hard tanh: identity on [-1, 1], clipped outside."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = np.abs(x) <= 1.0
        return np.clip(x, -1.0, 1.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, 0.0)


class BinarySigmoid(Layer):
    """Hard 0/1 activation with a straight-through gradient.

    Forward: ``y = 1 if x >= 0 else 0``.
    Backward: gradient of the clipped linear sigmoid ``clip(x/2 + 0.5, 0, 1)``,
    i.e. ``dy/dx = 0.5`` inside ``|x| <= 1`` and 0 outside (the straight-through
    estimator).  This matches the "simple sigmoid-like activation suitable for
    digital hardware" the paper cites for its binary feature representation.
    """

    def __init__(self, slope: float = 0.5) -> None:
        super().__init__()
        if slope <= 0:
            raise ValueError("slope must be positive")
        self.slope = slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = np.abs(x * self.slope) <= 0.5
        return (x >= 0).astype(np.float64)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output * self.slope, 0.0)


class Sign(Layer):
    """±1 activation with straight-through gradient (BinaryNet style).

    Forward: ``y = +1 if x >= 0 else -1``.
    Backward: identity inside ``|x| <= 1``, zero outside.
    """

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = np.abs(x) <= 1.0
        return np.where(x >= 0, 1.0, -1.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, 0.0)
