"""Binarised dense layer (BinaryNet style).

``BinaryDense`` keeps real-valued shadow weights but uses their sign during
the forward pass; gradients flow to the shadow weights via the straight-through
estimator.  Combined with the :class:`~repro.nn.layers.activations.Sign`
activation it reproduces the classifier portion of BinaryNet (Courbariaux et
al., 2016), the strongest quantised baseline in Table 2 / Table 6.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, zeros_init
from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike


class BinaryDense(Layer):
    """Affine layer whose weights are binarised to ±1 in the forward pass."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = use_bias
        self.params["W"] = glorot_uniform(
            (in_features, out_features), in_features, out_features, seed
        )
        if use_bias:
            self.params["b"] = zeros_init((out_features,))
        self.zero_grads()
        self._input: np.ndarray | None = None
        self._binary_W: np.ndarray | None = None

    @staticmethod
    def binarize(weights: np.ndarray) -> np.ndarray:
        """Deterministic binarisation: sign with 0 mapped to +1."""
        return np.where(weights >= 0, 1.0, -1.0)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (n, {self.in_features}), got {x.shape}"
            )
        self._input = x
        self._binary_W = self.binarize(self.params["W"])
        out = x @ self._binary_W
        if self.use_bias:
            out = out + self.params["b"]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None or self._binary_W is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        # Straight-through estimator: gradient w.r.t. the binary weight is
        # passed to the shadow weight, clipped to |w| <= 1 to stop saturated
        # weights from growing without bound.
        raw_grad = self._input.T @ grad_output
        self.grads["W"] = np.where(np.abs(self.params["W"]) <= 1.0, raw_grad, 0.0)
        if self.use_bias:
            self.grads["b"] = grad_output.sum(axis=0)
        return grad_output @ self._binary_W.T

    def clip_weights(self) -> None:
        """Clip shadow weights to [-1, 1] (called by the trainer after updates)."""
        np.clip(self.params["W"], -1.0, 1.0, out=self.params["W"])


def xnor_popcount_matmul(x_bits: np.ndarray, w_bits: np.ndarray) -> np.ndarray:
    """Integer-only inference path of a binary neuron bank.

    Parameters
    ----------
    x_bits:
        Activations in {0, 1}, shape ``(n, in_features)`` — 1 encodes +1 and 0
        encodes -1.
    w_bits:
        Weights in {0, 1}, shape ``(in_features, out_features)``.

    Returns
    -------
    numpy.ndarray
        The equivalent ±1 dot products computed via XNOR + popcount:
        ``2 * popcount(xnor(x, w)) - in_features``.
    """
    x_bits = np.asarray(x_bits, dtype=np.int64)
    w_bits = np.asarray(w_bits, dtype=np.int64)
    if x_bits.shape[1] != w_bits.shape[0]:
        raise ValueError("inner dimensions do not match")
    if not np.all((x_bits == 0) | (x_bits == 1)) or not np.all((w_bits == 0) | (w_bits == 1)):
        raise ValueError("inputs must be 0/1 encoded")
    n_in = x_bits.shape[1]
    # xnor(a, b) = 1 - (a ^ b); summing over the inner axis gives the popcount.
    # Using matrix algebra: popcount = x·w + (1-x)·(1-w)
    matches = x_bits @ w_bits + (1 - x_bits) @ (1 - w_bits)
    return 2 * matches - n_in
