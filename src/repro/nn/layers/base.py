"""Layer base class.

Layers follow a simple explicit-backward protocol: ``forward`` caches whatever
it needs, ``backward`` receives the gradient of the loss with respect to the
layer output and returns the gradient with respect to the layer input, while
accumulating parameter gradients into :attr:`grads`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class Layer:
    """Base class for all layers."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    @property
    def n_parameters(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and return the input gradient."""
        raise NotImplementedError

    def zero_grads(self) -> None:
        """Reset accumulated parameter gradients to zero."""
        for name, value in self.params.items():
            self.grads[name] = np.zeros_like(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(params={self.n_parameters})"
