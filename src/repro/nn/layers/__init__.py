"""Neural-network layers."""

from repro.nn.layers.activations import BinarySigmoid, HardTanh, ReLU, Sign
from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNorm
from repro.nn.layers.binary import BinaryDense
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.pooling import MaxPool2D
from repro.nn.layers.sparse import BlockSparseDense

__all__ = [
    "BatchNorm",
    "BinaryDense",
    "BinarySigmoid",
    "BlockSparseDense",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "HardTanh",
    "Layer",
    "MaxPool2D",
    "ReLU",
    "Sign",
]
