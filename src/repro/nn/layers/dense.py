"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal, zeros_init
from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike


class Dense(Layer):
    """Affine layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    use_bias:
        Whether to add a learned bias.
    seed:
        Seed for the weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = use_bias
        self.params["W"] = he_normal((in_features, out_features), in_features, seed)
        if use_bias:
            self.params["b"] = zeros_init((out_features,))
        self.zero_grads()
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (n, {self.in_features}), got {x.shape}"
            )
        self._input = x
        out = x @ self.params["W"]
        if self.use_bias:
            out = out + self.params["b"]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.grads["W"] = self._input.T @ grad_output
        if self.use_bias:
            self.grads["b"] = grad_output.sum(axis=0)
        return grad_output @ self.params["W"].T
