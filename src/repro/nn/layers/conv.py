"""2-D convolution implemented with im2col.

The feature extractors of the paper (LeNet for MNIST, VGG-11 for CIFAR-10 and
SVHN) are convolutional; this layer provides the NumPy equivalent.  Inputs use
channels-last layout ``(n, height, width, channels)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal, zeros_init
from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Extract sliding patches of ``x`` as rows.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(n * out_h * out_w, kernel * kernel * channels)``.
    """
    n, h, w, c = x.shape
    if padding > 0:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding), (0, 0)))
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("kernel larger than padded input")
    # Gather patches with stride tricks, then reshape into a 2-D matrix.
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, out_h, out_w, kernel, kernel, c),
        strides=(
            strides[0],
            strides[1] * stride,
            strides[2] * stride,
            strides[1],
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = windows.reshape(n * out_h * out_w, kernel * kernel * c)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: tuple,
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add column gradients back to image layout (inverse of im2col)."""
    n, h, w, c = input_shape
    padded = np.zeros((n, h + 2 * padding, w + 2 * padding, c), dtype=cols.dtype)
    windows = cols.reshape(n, out_h, out_w, kernel, kernel, c)
    for ky in range(kernel):
        for kx in range(kernel):
            padded[
                :, ky : ky + out_h * stride : stride, kx : kx + out_w * stride : stride, :
            ] += windows[:, :, :, ky, kx, :]
    if padding > 0:
        return padded[:, padding:-padding, padding:-padding, :]
    return padded


class Conv2D(Layer):
    """2-D convolution with square kernels, channels-last layout."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 0,
        use_bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ValueError("in_channels, out_channels, kernel_size, stride must be positive")
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.use_bias = use_bias
        fan_in = kernel_size * kernel_size * in_channels
        self.params["W"] = he_normal((fan_in, out_channels), fan_in, seed)
        if use_bias:
            self.params["b"] = zeros_init((out_channels,))
        self.zero_grads()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[3] != self.in_channels:
            raise ValueError(
                f"expected input of shape (n, h, w, {self.in_channels}), got {x.shape}"
            )
        cols, out_h, out_w = im2col(x, self.kernel_size, self.stride, self.padding)
        out = cols @ self.params["W"]
        if self.use_bias:
            out = out + self.params["b"]
        self._cache = (x.shape, cols, out_h, out_w)
        return out.reshape(x.shape[0], out_h, out_w, self.out_channels)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, cols, out_h, out_w = self._cache
        grad = np.asarray(grad_output, dtype=np.float64).reshape(-1, self.out_channels)
        self.grads["W"] = cols.T @ grad
        if self.use_bias:
            self.grads["b"] = grad.sum(axis=0)
        grad_cols = grad @ self.params["W"].T
        return col2im(
            grad_cols,
            input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
            out_h,
            out_w,
        )
