"""Batch normalisation over the feature axis."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class BatchNorm(Layer):
    """Batch normalisation for 2-D ``(n, features)`` inputs.

    4-D convolutional maps should be flattened per-channel by the caller (the
    feature extractors in this reproduction apply BatchNorm after Flatten or
    on dense layers, which is sufficient for the classifier-portion study).
    """

    def __init__(self, n_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.n_features = n_features
        self.momentum = momentum
        self.eps = eps
        self.params["gamma"] = np.ones(n_features, dtype=np.float64)
        self.params["beta"] = np.zeros(n_features, dtype=np.float64)
        self.zero_grads()
        self.running_mean = np.zeros(n_features, dtype=np.float64)
        self.running_var = np.ones(n_features, dtype=np.float64)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(
                f"expected input of shape (n, {self.n_features}), got {x.shape}"
            )
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean) / std
        self._cache = (x_hat, std)
        return self.params["gamma"] * x_hat + self.params["beta"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, std = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float64)
        n = grad_output.shape[0]
        self.grads["gamma"] = np.sum(grad_output * x_hat, axis=0)
        self.grads["beta"] = np.sum(grad_output, axis=0)
        dx_hat = grad_output * self.params["gamma"]
        # Standard batch-norm backward pass (training statistics).
        return (
            dx_hat - dx_hat.mean(axis=0) - x_hat * np.mean(dx_hat * x_hat, axis=0)
        ) / std
