"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_probability


class Dropout(Layer):
    """Randomly zero a fraction ``rate`` of activations during training.

    Uses inverted dropout (surviving activations are scaled by ``1/(1-rate)``)
    so inference requires no rescaling.
    """

    def __init__(self, rate: float = 0.5, seed: SeedLike = None) -> None:
        super().__init__()
        self.rate = check_probability(rate, "rate")
        if self.rate >= 1.0:
            raise ValueError("rate must be < 1")
        self._rng = as_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return np.asarray(grad_output, dtype=np.float64)
        return grad_output * self._mask
