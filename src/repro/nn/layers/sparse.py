"""Block-sparse dense layer.

The paper's output layer is *sparsely connected*: output neuron ``j`` reads
only the ``fan_in`` intermediate bits of its own block (Fig. 4).  For that
wiring to be effective, the teacher network must already be trained with the
same connectivity — otherwise the intermediate layer has no reason to make
block ``j`` informative about class ``j``.  ``BlockSparseDense`` implements
the masked affine layer used for that purpose: structurally a ``Dense`` layer
whose weight matrix is constrained to a block-diagonal sparsity pattern.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.dense import Dense
from repro.utils.rng import SeedLike


class BlockSparseDense(Dense):
    """Affine layer where output ``j`` reads only inputs ``j*fan_in..(j+1)*fan_in``.

    Parameters
    ----------
    n_outputs:
        Number of output neurons (classes).
    fan_in:
        Number of consecutive inputs each output neuron reads.  The layer's
        input width is ``n_outputs * fan_in``.
    """

    def __init__(self, n_outputs: int, fan_in: int, use_bias: bool = True, seed: SeedLike = None) -> None:
        if n_outputs <= 0 or fan_in <= 0:
            raise ValueError("n_outputs and fan_in must be positive")
        super().__init__(n_outputs * fan_in, n_outputs, use_bias=use_bias, seed=seed)
        self.fan_in = fan_in
        mask = np.zeros((self.in_features, self.out_features), dtype=np.float64)
        for out_index in range(n_outputs):
            mask[out_index * fan_in : (out_index + 1) * fan_in, out_index] = 1.0
        self._mask = mask
        self.params["W"] *= mask

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # keep the weights on the sparsity pattern even if an optimizer nudged
        # masked entries through numerical noise
        self.params["W"] *= self._mask
        return super().forward(x, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_input = super().backward(grad_output)
        self.grads["W"] *= self._mask
        return grad_input

    def block_weights(self) -> np.ndarray:
        """Per-output dense weights of shape ``(n_outputs, fan_in)``."""
        return np.array(
            [
                self.params["W"][j * self.fan_in : (j + 1) * self.fan_in, j]
                for j in range(self.out_features)
            ]
        )
