"""Sequential model container."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.layers.base import Layer


class Sequential:
    """A linear stack of layers with explicit forward/backward passes.

    The model exposes ``predict_scores`` (raw outputs), ``predict`` (argmax
    class labels) and ``activations_at`` (the output of an intermediate layer,
    used to harvest binary features / intermediate-layer targets for the RINC
    training stage).
    """

    def __init__(self, layers: Iterable[Layer]) -> None:
        self.layers: List[Layer] = list(layers)
        if not self.layers:
            raise ValueError("Sequential requires at least one layer")

    @property
    def n_parameters(self) -> int:
        return sum(layer.n_parameters for layer in self.layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict_scores(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Raw output scores, optionally computed in mini-batches."""
        if batch_size is None:
            return self.forward(x, training=False)
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start : start + batch_size], training=False))
        return np.concatenate(outputs, axis=0)

    def predict(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Predicted class labels (argmax over scores)."""
        return np.argmax(self.predict_scores(x, batch_size=batch_size), axis=1)

    def activations_at(
        self, x: np.ndarray, layer_index: int, batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Output of ``self.layers[layer_index]`` for input ``x`` (inference mode)."""
        if not -len(self.layers) <= layer_index < len(self.layers):
            raise IndexError(f"layer_index {layer_index} out of range")
        if layer_index < 0:
            layer_index += len(self.layers)

        def _run(batch: np.ndarray) -> np.ndarray:
            out = batch
            for layer in self.layers[: layer_index + 1]:
                out = layer.forward(out, training=False)
            return out

        if batch_size is None:
            return _run(x)
        return np.concatenate(
            [_run(x[s : s + batch_size]) for s in range(0, x.shape[0], batch_size)], axis=0
        )

    def get_parameters(self) -> List[dict]:
        """Deep copy of all layer parameters (for checkpointing in tests)."""
        return [
            {name: value.copy() for name, value in layer.params.items()}
            for layer in self.layers
        ]

    def set_parameters(self, parameters: List[dict]) -> None:
        """Restore parameters captured by :meth:`get_parameters`."""
        if len(parameters) != len(self.layers):
            raise ValueError("parameter list length does not match layer count")
        for layer, saved in zip(self.layers, parameters):
            if set(saved) != set(layer.params):
                raise ValueError("parameter names do not match layer parameters")
            for name, value in saved.items():
                if layer.params[name].shape != value.shape:
                    raise ValueError(f"shape mismatch for parameter {name!r}")
                layer.params[name] = value.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{inner}])"
