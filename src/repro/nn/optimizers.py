"""Gradient-based optimizers."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.layers.base import Layer


class Optimizer:
    """Base optimizer over a list of layers."""

    def __init__(self, layers: Iterable[Layer], learning_rate: float = 1e-3) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.layers: List[Layer] = [layer for layer in layers if layer.params]
        self.learning_rate = learning_rate

    def step(self) -> None:
        """Apply one update using the gradients stored on each layer."""
        raise NotImplementedError

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        layers: Iterable[Layer],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(layers, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.momentum = momentum
        self._velocity: List[Dict[str, np.ndarray]] = [
            {name: np.zeros_like(value) for name, value in layer.params.items()}
            for layer in self.layers
        ]

    def step(self) -> None:
        for layer, velocity in zip(self.layers, self._velocity):
            for name, value in layer.params.items():
                grad = layer.grads[name]
                velocity[name] = self.momentum * velocity[name] - self.learning_rate * grad
                value += velocity[name]


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015), as used by the paper."""

    def __init__(
        self,
        layers: Iterable[Layer],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(layers, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must lie in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._t = 0
        self._m: List[Dict[str, np.ndarray]] = [
            {name: np.zeros_like(value) for name, value in layer.params.items()}
            for layer in self.layers
        ]
        self._v: List[Dict[str, np.ndarray]] = [
            {name: np.zeros_like(value) for name, value in layer.params.items()}
            for layer in self.layers
        ]

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for layer, m_state, v_state in zip(self.layers, self._m, self._v):
            for name, value in layer.params.items():
                grad = layer.grads[name]
                m_state[name] = self.beta1 * m_state[name] + (1 - self.beta1) * grad
                v_state[name] = self.beta2 * v_state[name] + (1 - self.beta2) * grad**2
                m_hat = m_state[name] / bias1
                v_hat = v_state[name] / bias2
                value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
