"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def he_normal(shape: tuple, fan_in: int, rng: SeedLike = None) -> np.ndarray:
    """He (Kaiming) normal initialisation, appropriate for ReLU layers."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    gen = as_rng(rng)
    return gen.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(np.float64)


def glorot_uniform(shape: tuple, fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """Glorot (Xavier) uniform initialisation, appropriate for sigmoid/tanh layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    gen = as_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return gen.uniform(-limit, limit, size=shape).astype(np.float64)


def zeros_init(shape: tuple) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)
