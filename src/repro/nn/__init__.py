"""A small NumPy neural-network framework.

This substrate replaces the PyTorch training pipeline of the original paper:
it provides the layers, losses and optimizers needed to train the *vanilla*
and *teacher* networks of Fig. 5 (dense/conv feature extractors, ReLU and
binary-sigmoid activations, batch normalisation, squared hinge loss, Adam with
exponential learning-rate decay) as well as the binarised layers used by the
BinaryNet baseline.
"""

from repro.nn.initializers import glorot_uniform, he_normal, zeros_init
from repro.nn.layers import (
    BatchNorm,
    BinaryDense,
    BinarySigmoid,
    BlockSparseDense,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    HardTanh,
    Layer,
    MaxPool2D,
    ReLU,
    Sign,
)
from repro.nn.losses import CrossEntropyLoss, Loss, SquaredHingeLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.schedulers import ConstantSchedule, ExponentialDecay, StepDecay
from repro.nn.trainer import Trainer, TrainingHistory

__all__ = [
    "Adam",
    "BatchNorm",
    "BinaryDense",
    "BinarySigmoid",
    "BlockSparseDense",
    "ConstantSchedule",
    "Conv2D",
    "CrossEntropyLoss",
    "Dense",
    "Dropout",
    "ExponentialDecay",
    "Flatten",
    "HardTanh",
    "Layer",
    "Loss",
    "MaxPool2D",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "Sign",
    "SquaredHingeLoss",
    "StepDecay",
    "Trainer",
    "TrainingHistory",
    "glorot_uniform",
    "he_normal",
    "zeros_init",
]
