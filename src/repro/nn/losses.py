"""Loss functions.

The paper trains its vanilla and teacher networks with the squared hinge loss
(Rosasco et al., 2004), which is what :class:`SquaredHingeLoss` implements;
:class:`CrossEntropyLoss` is provided for the NDF baseline and for tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_labels


class Loss:
    """Base class: ``forward`` returns (loss value, gradient w.r.t. scores)."""

    def forward(self, scores: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        raise NotImplementedError

    def __call__(self, scores: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        return self.forward(scores, labels)


def one_hot_signed(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Encode labels as ±1 one-vs-all targets (the squared-hinge convention)."""
    labels = check_labels(labels, n_classes)
    targets = -np.ones((labels.shape[0], n_classes), dtype=np.float64)
    targets[np.arange(labels.shape[0]), labels] = 1.0
    return targets


class SquaredHingeLoss(Loss):
    """Multi-class squared hinge loss over ±1 one-vs-all targets.

    ``L = mean_i mean_c max(0, 1 - t_ic * s_ic)^2`` where ``t`` is the signed
    one-hot target and ``s`` the raw network score.
    """

    def forward(self, scores: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 2:
            raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
        targets = one_hot_signed(labels, scores.shape[1])
        margins = np.maximum(0.0, 1.0 - targets * scores)
        n = scores.shape[0]
        loss = float(np.sum(margins**2) / n)
        grad = (-2.0 * targets * margins) / n
        return loss, grad


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over integer class labels."""

    def forward(self, scores: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 2:
            raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
        labels = check_labels(labels, scores.shape[1])
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        n = scores.shape[0]
        log_likelihood = -np.log(probs[np.arange(n), labels] + 1e-12)
        loss = float(log_likelihood.mean())
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        return loss, grad / n
