"""Mini-batch trainer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nn.layers.binary import BinaryDense
from repro.nn.losses import Loss
from repro.nn.model import Sequential
from repro.nn.optimizers import Optimizer
from repro.nn.schedulers import ConstantSchedule
from repro.utils.metrics import accuracy
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_consistent_lengths


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    learning_rates: List[float] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)

    def best_val_accuracy(self) -> float:
        if not self.val_accuracy:
            raise ValueError("no validation accuracy recorded")
        return max(self.val_accuracy)


class Trainer:
    """Trains a :class:`Sequential` model with mini-batch gradient descent.

    Parameters
    ----------
    model, loss, optimizer:
        The model, loss function and optimizer to use.
    schedule:
        Optional learning-rate schedule; when provided the optimizer's
        learning rate is set from it at the start of every epoch.
    clip_binary_weights:
        When True, shadow weights of :class:`BinaryDense` layers are clipped
        to [-1, 1] after each update (the BinaryNet training recipe).
    """

    def __init__(
        self,
        model: Sequential,
        loss: Loss,
        optimizer: Optimizer,
        schedule: Optional[ConstantSchedule] = None,
        clip_binary_weights: bool = False,
        seed: SeedLike = 0,
    ) -> None:
        self.model = model
        self.loss = loss
        self.optimizer = optimizer
        self.schedule = schedule
        self.clip_binary_weights = clip_binary_weights
        self._rng = as_rng(seed)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 64,
        X_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs and return the training history."""
        X = np.asarray(X)
        y = np.asarray(y)
        check_consistent_lengths(X=X, y=y)
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        history = TrainingHistory()
        n = X.shape[0]
        for epoch in range(epochs):
            if self.schedule is not None:
                self.optimizer.learning_rate = self.schedule.learning_rate(epoch)
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                scores = self.model.forward(X[idx], training=True)
                batch_loss, grad = self.loss(scores, y[idx])
                self.optimizer.zero_grads()
                self.model.backward(grad)
                self.optimizer.step()
                if self.clip_binary_weights:
                    for layer in self.model.layers:
                        if isinstance(layer, BinaryDense):
                            layer.clip_weights()
                epoch_loss += batch_loss
                n_batches += 1
            history.train_loss.append(epoch_loss / max(1, n_batches))
            history.learning_rates.append(self.optimizer.learning_rate)
            history.train_accuracy.append(accuracy(y, self.model.predict(X, batch_size=256)))
            if X_val is not None and y_val is not None:
                history.val_accuracy.append(
                    accuracy(y_val, self.model.predict(X_val, batch_size=256))
                )
            if verbose:  # pragma: no cover - logging only
                msg = (
                    f"epoch {epoch + 1}/{epochs}: loss={history.train_loss[-1]:.4f} "
                    f"train_acc={history.train_accuracy[-1]:.4f}"
                )
                if history.val_accuracy:
                    msg += f" val_acc={history.val_accuracy[-1]:.4f}"
                print(msg)
        return history

    def evaluate(self, X: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        """Accuracy of the current model on (X, y)."""
        return accuracy(y, self.model.predict(X, batch_size=batch_size))
