"""Learning-rate schedules.

The paper uses an exponentially decreasing learning rate; the schedules here
return the learning rate for a given epoch and are applied by the trainer
before each epoch.
"""

from __future__ import annotations


class ConstantSchedule:
    """Always return the base learning rate."""

    def __init__(self, base_lr: float) -> None:
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        self.base_lr = base_lr

    def learning_rate(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.base_lr


class ExponentialDecay(ConstantSchedule):
    """``lr = base_lr * decay**epoch`` (the schedule used by the paper)."""

    def __init__(self, base_lr: float, decay: float = 0.95) -> None:
        super().__init__(base_lr)
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must lie in (0, 1]")
        self.decay = decay

    def learning_rate(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.base_lr * self.decay**epoch


class StepDecay(ConstantSchedule):
    """Divide the learning rate by ``factor`` every ``step_size`` epochs."""

    def __init__(self, base_lr: float, step_size: int = 10, factor: float = 10.0) -> None:
        super().__init__(base_lr)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if factor <= 1.0:
            raise ValueError("factor must exceed 1")
        self.step_size = step_size
        self.factor = factor

    def learning_rate(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.base_lr / self.factor ** (epoch // self.step_size)
