"""CIFAR-10 stand-in: colour images of textured shapes, 32x32x3, 10 classes.

Each class is a combination of a geometric shape (circle, square, triangle,
cross, stripes) and a colour family, so classes require both spatial and
chromatic features to separate — qualitatively similar to the role CIFAR-10
plays in the paper (a harder, colour, natural-ish 10-way task).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import ImageDataset
from repro.utils.rng import SeedLike, as_rng

_BASE_COLOURS = np.array(
    [
        [0.9, 0.2, 0.2],
        [0.2, 0.8, 0.3],
        [0.2, 0.3, 0.9],
        [0.9, 0.8, 0.2],
        [0.8, 0.3, 0.8],
        [0.3, 0.8, 0.8],
        [0.9, 0.5, 0.2],
        [0.6, 0.6, 0.6],
        [0.5, 0.3, 0.1],
        [0.2, 0.5, 0.2],
    ],
    dtype=np.float32,
)


def _shape_mask(shape_id: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Binary mask of one of five shapes at a random position/scale."""
    yy, xx = np.mgrid[0:size, 0:size]
    cy = rng.uniform(size * 0.35, size * 0.65)
    cx = rng.uniform(size * 0.35, size * 0.65)
    radius = rng.uniform(size * 0.2, size * 0.38)
    if shape_id == 0:  # circle
        return ((yy - cy) ** 2 + (xx - cx) ** 2) <= radius**2
    if shape_id == 1:  # square
        return (np.abs(yy - cy) <= radius) & (np.abs(xx - cx) <= radius)
    if shape_id == 2:  # triangle (upward)
        return (yy - cy >= -radius) & (np.abs(xx - cx) <= (yy - cy + radius) / 2)
    if shape_id == 3:  # cross
        bar = radius * 0.4
        return (np.abs(yy - cy) <= bar) | (np.abs(xx - cx) <= bar)
    # diagonal stripes
    period = max(3, int(radius))
    return ((yy + xx) % (2 * period)) < period


def make_synthetic_cifar10(
    n_train: int = 4000,
    n_test: int = 1000,
    image_size: int = 32,
    noise: float = 0.1,
    seed: SeedLike = 0,
) -> ImageDataset:
    """Generate a CIFAR-10-like dataset of coloured textured shapes."""
    if n_train <= 0 or n_test <= 0:
        raise ValueError("n_train and n_test must be positive")
    rng = as_rng(seed)
    n_total = n_train + n_test
    labels = rng.integers(0, 10, size=n_total)
    images = np.empty((n_total, image_size, image_size, 3), dtype=np.float32)
    for i, label in enumerate(labels):
        shape_id = int(label) % 5
        colour = _BASE_COLOURS[int(label)] * rng.uniform(0.8, 1.2)
        background = rng.uniform(0.05, 0.35, size=3)
        mask = _shape_mask(shape_id, image_size, rng)
        img = np.empty((image_size, image_size, 3), dtype=np.float32)
        for c in range(3):
            img[:, :, c] = np.where(mask, colour[c], background[c])
        img += rng.normal(0.0, noise, size=img.shape).astype(np.float32)
        images[i] = np.clip(img, 0.0, 1.0)
    return ImageDataset(
        X_train=images[:n_train],
        y_train=labels[:n_train].astype(np.int64),
        X_test=images[n_train:],
        y_test=labels[n_train:].astype(np.int64),
        n_classes=10,
        metadata={
            "name": "synthetic-cifar10",
            "paper_dataset": "CIFAR-10",
            "image_size": image_size,
            "noise": noise,
        },
    )
