"""Dataset generators.

The original paper evaluates on MNIST, CIFAR-10 and SVHN.  Those datasets are
not available in this offline environment, so this package provides
procedurally generated stand-ins with the same tensor shapes and number of
classes, plus pure binary-feature classification tasks used to unit-test and
benchmark the RINC machinery in isolation.  The substitution rationale is
documented in DESIGN.md.
"""

from repro.datasets.base import DataBundle, ImageDataset
from repro.datasets.binary_features import (
    make_binary_intermediate_task,
    make_binary_parity_task,
    make_binary_teacher_task,
    make_correlated_binary_task,
)
from repro.datasets.registry import DATASET_BUILDERS, load_dataset
from repro.datasets.splits import stratified_split, train_val_test_split
from repro.datasets.synthetic_digits import make_synthetic_mnist
from repro.datasets.synthetic_objects import make_synthetic_cifar10
from repro.datasets.synthetic_svhn import make_synthetic_svhn

__all__ = [
    "DATASET_BUILDERS",
    "DataBundle",
    "ImageDataset",
    "load_dataset",
    "make_binary_intermediate_task",
    "make_binary_parity_task",
    "make_binary_teacher_task",
    "make_correlated_binary_task",
    "make_synthetic_cifar10",
    "make_synthetic_mnist",
    "make_synthetic_svhn",
    "stratified_split",
    "train_val_test_split",
]
