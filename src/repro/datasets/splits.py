"""Dataset splitting helpers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_consistent_lengths


def stratified_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split (X, y) preserving per-class proportions.

    Returns ``(X_train, y_train, X_test, y_test)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    X = np.asarray(X)
    y = np.asarray(y)
    check_consistent_lengths(X=X, y=y)
    rng = as_rng(seed)
    test_idx: list[np.ndarray] = []
    train_idx: list[np.ndarray] = []
    for cls in np.unique(y):
        cls_idx = np.flatnonzero(y == cls)
        rng.shuffle(cls_idx)
        n_test = max(1, int(round(len(cls_idx) * test_fraction)))
        if n_test >= len(cls_idx):
            n_test = len(cls_idx) - 1
        test_idx.append(cls_idx[:n_test])
        train_idx.append(cls_idx[n_test:])
    train = np.concatenate(train_idx)
    test = np.concatenate(test_idx)
    rng.shuffle(train)
    rng.shuffle(test)
    return X[train], y[train], X[test], y[test]


def train_val_test_split(
    X: np.ndarray,
    y: np.ndarray,
    val_fraction: float = 0.1,
    test_fraction: float = 0.2,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, ...]:
    """Three-way random split returning train/val/test arrays."""
    if val_fraction < 0 or test_fraction < 0 or val_fraction + test_fraction >= 1.0:
        raise ValueError("val_fraction + test_fraction must be < 1 and non-negative")
    X = np.asarray(X)
    y = np.asarray(y)
    check_consistent_lengths(X=X, y=y)
    rng = as_rng(seed)
    n = X.shape[0]
    order = rng.permutation(n)
    n_test = int(round(n * test_fraction))
    n_val = int(round(n * val_fraction))
    test = order[:n_test]
    val = order[n_test : n_test + n_val]
    train = order[n_test + n_val :]
    return X[train], y[train], X[val], y[val], X[test], y[test]
