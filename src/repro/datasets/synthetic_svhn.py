"""SVHN stand-in: colour digits over cluttered backgrounds, 32x32x3, 10 classes."""

from __future__ import annotations

import numpy as np

from repro.datasets._glyphs import render_digit
from repro.datasets.base import ImageDataset
from repro.utils.rng import SeedLike, as_rng


def make_synthetic_svhn(
    n_train: int = 4000,
    n_test: int = 1000,
    image_size: int = 32,
    noise: float = 0.15,
    seed: SeedLike = 0,
) -> ImageDataset:
    """Generate an SVHN-like dataset: digit glyphs on noisy colour backgrounds.

    Compared with the MNIST stand-in, samples have non-zero backgrounds,
    random per-channel tinting and occasional clutter rectangles, mimicking
    the harder street-view setting of SVHN.
    """
    if n_train <= 0 or n_test <= 0:
        raise ValueError("n_train and n_test must be positive")
    rng = as_rng(seed)
    n_total = n_train + n_test
    labels = rng.integers(0, 10, size=n_total)
    images = np.empty((n_total, image_size, image_size, 3), dtype=np.float32)
    for i, digit in enumerate(labels):
        gray = render_digit(
            int(digit),
            rng,
            canvas_size=image_size,
            noise=noise,
            background=rng.uniform(0.15, 0.45),
            clutter=0.5,
        )
        tint = rng.uniform(0.6, 1.0, size=3)
        for c in range(3):
            images[i, :, :, c] = np.clip(gray * tint[c], 0.0, 1.0)
    return ImageDataset(
        X_train=images[:n_train],
        y_train=labels[:n_train].astype(np.int64),
        X_test=images[n_train:],
        y_test=labels[n_train:].astype(np.int64),
        n_classes=10,
        metadata={
            "name": "synthetic-svhn",
            "paper_dataset": "SVHN",
            "image_size": image_size,
            "noise": noise,
        },
    )
