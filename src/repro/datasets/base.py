"""Dataset containers shared by all generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.utils.validation import check_consistent_lengths, check_labels


@dataclass
class DataBundle:
    """A generic (features, labels) pair with train/test views.

    Attributes
    ----------
    X_train, y_train, X_test, y_test:
        Feature matrices and integer label vectors.
    n_classes:
        Number of distinct classes.
    metadata:
        Free-form description of how the data was generated.
    """

    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    n_classes: int
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_consistent_lengths(X_train=self.X_train, y_train=self.y_train)
        check_consistent_lengths(X_test=self.X_test, y_test=self.y_test)
        self.y_train = check_labels(self.y_train, self.n_classes, "y_train")
        self.y_test = check_labels(self.y_test, self.n_classes, "y_test")

    @property
    def n_train(self) -> int:
        return int(self.X_train.shape[0])

    @property
    def n_test(self) -> int:
        return int(self.X_test.shape[0])

    @property
    def n_features(self) -> int:
        return int(np.prod(self.X_train.shape[1:]))

    def describe(self) -> str:
        """Single-line description used in logs and example scripts."""
        return (
            f"{self.metadata.get('name', 'dataset')}: "
            f"{self.n_train} train / {self.n_test} test, "
            f"feature shape {tuple(self.X_train.shape[1:])}, "
            f"{self.n_classes} classes"
        )


@dataclass
class ImageDataset(DataBundle):
    """A :class:`DataBundle` whose features are image tensors (N, H, W, C)."""

    image_shape: tuple = (0, 0, 0)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.X_train.ndim != 4:
            raise ValueError(
                f"image data must have shape (N, H, W, C), got {self.X_train.shape}"
            )
        self.image_shape = tuple(self.X_train.shape[1:])

    def flattened(self) -> DataBundle:
        """Return a flattened copy (N, H*W*C) for use with dense models."""
        return DataBundle(
            X_train=self.X_train.reshape(self.n_train, -1),
            y_train=self.y_train,
            X_test=self.X_test.reshape(self.n_test, -1),
            y_test=self.y_test,
            n_classes=self.n_classes,
            metadata={**self.metadata, "flattened": True},
        )
