"""Name-based dataset registry used by experiment configurations.

The experiment harness refers to datasets by the names the paper uses
("mnist", "cifar10", "svhn"); this registry maps those names to the synthetic
stand-in builders so an experiment spec reads like the paper while the
implementation substitutes offline-generated data.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.datasets.base import ImageDataset
from repro.datasets.synthetic_digits import make_synthetic_mnist
from repro.datasets.synthetic_objects import make_synthetic_cifar10
from repro.datasets.synthetic_svhn import make_synthetic_svhn

DATASET_BUILDERS: Dict[str, Callable[..., ImageDataset]] = {
    "mnist": make_synthetic_mnist,
    "cifar10": make_synthetic_cifar10,
    "svhn": make_synthetic_svhn,
}


def load_dataset(name: str, **kwargs: object) -> ImageDataset:
    """Build the synthetic stand-in for the named paper dataset."""
    key = name.lower().replace("-", "")
    if key not in DATASET_BUILDERS:
        known = ", ".join(sorted(DATASET_BUILDERS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    return DATASET_BUILDERS[key](**kwargs)
