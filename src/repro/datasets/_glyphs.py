"""Procedural digit glyph rendering shared by the MNIST- and SVHN-like datasets.

Each digit 0-9 is defined as a seven-segment-style bitmap on a coarse grid.
Samples are produced by placing the glyph on a canvas with a random offset,
random thickness jitter, per-pixel noise and optional background clutter, so
the resulting classification task has intra-class variability comparable (in
spirit) to handwritten/streetview digits while remaining fully procedural.
"""

from __future__ import annotations

import numpy as np

# Seven-segment membership per digit: (top, top-left, top-right, middle,
# bottom-left, bottom-right, bottom)
_SEGMENTS = {
    0: (1, 1, 1, 0, 1, 1, 1),
    1: (0, 0, 1, 0, 0, 1, 0),
    2: (1, 0, 1, 1, 1, 0, 1),
    3: (1, 0, 1, 1, 0, 1, 1),
    4: (0, 1, 1, 1, 0, 1, 0),
    5: (1, 1, 0, 1, 0, 1, 1),
    6: (1, 1, 0, 1, 1, 1, 1),
    7: (1, 0, 1, 0, 0, 1, 0),
    8: (1, 1, 1, 1, 1, 1, 1),
    9: (1, 1, 1, 1, 0, 1, 1),
}


def glyph_bitmap(digit: int, height: int = 16, width: int = 10, thickness: int = 2) -> np.ndarray:
    """Render the seven-segment bitmap of ``digit`` on a ``height x width`` grid."""
    if digit not in _SEGMENTS:
        raise ValueError(f"digit must be in 0..9, got {digit}")
    if height < 7 or width < 5:
        raise ValueError("glyph grid must be at least 7x5")
    top, top_left, top_right, middle, bottom_left, bottom_right, bottom = _SEGMENTS[digit]
    canvas = np.zeros((height, width), dtype=np.float32)
    t = max(1, thickness)
    mid = height // 2
    if top:
        canvas[0:t, :] = 1.0
    if middle:
        canvas[mid - t // 2 : mid - t // 2 + t, :] = 1.0
    if bottom:
        canvas[height - t :, :] = 1.0
    if top_left:
        canvas[0:mid, 0:t] = 1.0
    if top_right:
        canvas[0:mid, width - t :] = 1.0
    if bottom_left:
        canvas[mid:, 0:t] = 1.0
    if bottom_right:
        canvas[mid:, width - t :] = 1.0
    return canvas


def render_digit(
    digit: int,
    rng: np.random.Generator,
    canvas_size: int = 28,
    noise: float = 0.15,
    background: float = 0.0,
    clutter: float = 0.0,
) -> np.ndarray:
    """Render one noisy digit sample on a ``canvas_size`` square canvas.

    Parameters
    ----------
    digit:
        Class label in ``0..9``.
    rng:
        Source of randomness.
    canvas_size:
        Output side length in pixels.
    noise:
        Standard deviation of additive Gaussian pixel noise.
    background:
        Mean background intensity (SVHN-like images use a non-zero value).
    clutter:
        Probability of adding a random bright rectangle (street-view clutter).
    """
    glyph_h = int(canvas_size * rng.uniform(0.55, 0.8))
    glyph_w = int(canvas_size * rng.uniform(0.3, 0.5))
    glyph_h = max(7, glyph_h)
    glyph_w = max(5, glyph_w)
    thickness = int(rng.integers(2, max(3, canvas_size // 8)))
    glyph = glyph_bitmap(digit, glyph_h, glyph_w, thickness)

    canvas = np.full((canvas_size, canvas_size), background, dtype=np.float32)
    if background > 0:
        canvas += rng.normal(0.0, 0.05, size=canvas.shape).astype(np.float32)

    max_row = canvas_size - glyph_h
    max_col = canvas_size - glyph_w
    row = int(rng.integers(0, max(1, max_row + 1)))
    col = int(rng.integers(0, max(1, max_col + 1)))
    intensity = rng.uniform(0.7, 1.0)
    region = canvas[row : row + glyph_h, col : col + glyph_w]
    np.maximum(region, glyph * intensity, out=region)

    if clutter > 0 and rng.random() < clutter:
        ch = int(rng.integers(2, canvas_size // 3))
        cw = int(rng.integers(2, canvas_size // 3))
        crow = int(rng.integers(0, canvas_size - ch))
        ccol = int(rng.integers(0, canvas_size - cw))
        canvas[crow : crow + ch, ccol : ccol + cw] += rng.uniform(0.2, 0.5)

    canvas += rng.normal(0.0, noise, size=canvas.shape).astype(np.float32)
    return np.clip(canvas, 0.0, 1.0)
