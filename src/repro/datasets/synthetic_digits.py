"""MNIST stand-in: grayscale procedural digits, 28x28x1, 10 classes."""

from __future__ import annotations

import numpy as np

from repro.datasets._glyphs import render_digit
from repro.datasets.base import ImageDataset
from repro.utils.rng import SeedLike, as_rng


def make_synthetic_mnist(
    n_train: int = 4000,
    n_test: int = 1000,
    image_size: int = 28,
    noise: float = 0.12,
    seed: SeedLike = 0,
) -> ImageDataset:
    """Generate an MNIST-like dataset of noisy grayscale digit glyphs.

    The tensor layout matches MNIST (``(N, 28, 28, 1)`` floats in ``[0, 1]``),
    so the same LeNet-style feature extractor used for the paper's M1
    architecture applies unchanged.
    """
    if n_train <= 0 or n_test <= 0:
        raise ValueError("n_train and n_test must be positive")
    rng = as_rng(seed)
    n_total = n_train + n_test
    labels = rng.integers(0, 10, size=n_total)
    images = np.empty((n_total, image_size, image_size, 1), dtype=np.float32)
    for i, digit in enumerate(labels):
        images[i, :, :, 0] = render_digit(
            int(digit), rng, canvas_size=image_size, noise=noise
        )
    return ImageDataset(
        X_train=images[:n_train],
        y_train=labels[:n_train].astype(np.int64),
        X_test=images[n_train:],
        y_test=labels[n_train:].astype(np.int64),
        n_classes=10,
        metadata={
            "name": "synthetic-mnist",
            "paper_dataset": "MNIST",
            "image_size": image_size,
            "noise": noise,
        },
    )
