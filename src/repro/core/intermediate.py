"""Helpers to harvest binary features and intermediate-layer targets.

The RINC modules are trained as *students* that emulate individual binary
neurons of the teacher network's intermediate layer (Fig. 4/5 of the paper).
These helpers extract the two binary matrices that training needs from a
trained :class:`~repro.nn.model.Sequential` teacher:

* the binary *feature* vector produced after the feature extractor's binary
  sigmoid (the RINC inputs), and
* the binary *intermediate-layer* activations (the RINC per-neuron targets).
"""

from __future__ import annotations

from typing import List, Type

import numpy as np

from repro.nn.layers.activations import BinarySigmoid
from repro.nn.layers.base import Layer
from repro.nn.model import Sequential


def find_layer_indices(model: Sequential, layer_type: Type[Layer]) -> List[int]:
    """Indices of every layer of ``layer_type`` in the model, in order."""
    return [i for i, layer in enumerate(model.layers) if isinstance(layer, layer_type)]


def binary_activations(
    model: Sequential, X: np.ndarray, layer_index: int, batch_size: int = 256
) -> np.ndarray:
    """Binary (0/1, uint8) activations of ``model.layers[layer_index]``.

    Raises if the requested layer does not produce strictly binary values —
    catching the common mistake of pointing at a pre-activation layer.
    """
    activations = model.activations_at(X, layer_index, batch_size=batch_size)
    activations = activations.reshape(activations.shape[0], -1)
    unique = np.unique(activations)
    if not np.all(np.isin(unique, (0.0, 1.0))):
        raise ValueError(
            f"layer {layer_index} does not produce binary activations "
            f"(found values {unique[:5]}...); point at a BinarySigmoid output"
        )
    return activations.astype(np.uint8)


def extract_binary_features(
    model: Sequential, X: np.ndarray, batch_size: int = 256
) -> np.ndarray:
    """Binary feature vector = output of the *first* BinarySigmoid layer."""
    indices = find_layer_indices(model, BinarySigmoid)
    if not indices:
        raise ValueError("model has no BinarySigmoid layer to take features from")
    return binary_activations(model, X, indices[0], batch_size=batch_size)


def extract_intermediate_targets(
    model: Sequential, X: np.ndarray, batch_size: int = 256
) -> np.ndarray:
    """Intermediate-layer bits = output of the *last* BinarySigmoid layer."""
    indices = find_layer_indices(model, BinarySigmoid)
    if len(indices) < 2:
        raise ValueError(
            "model needs two BinarySigmoid layers (feature + intermediate); "
            f"found {len(indices)}"
        )
    return binary_activations(model, X, indices[-1], batch_size=batch_size)
