"""Sparsely connected, quantised output layer (§2.2.2 of the paper).

Each of the ``nc`` output neurons is connected to only ``P`` intermediate-layer
bits, so a neuron's pre-activation is a function of ``P`` binary inputs and can
be realised with ``q`` LUTs (one per output bit of the ``q``-bit quantised
value).  The layer is retrained on the *predicted* RINC outputs so that its
weights adapt to the RINC approximation errors, then quantised to ``q`` bits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.batching import BatchedPredictorMixin
from repro.nn.layers.dense import Dense
from repro.nn.losses import SquaredHingeLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam
from repro.nn.schedulers import ExponentialDecay
from repro.nn.trainer import Trainer
from repro.utils.rng import SeedLike
from repro.utils.validation import check_binary_matrix, check_labels


def quantize_symmetric(values: np.ndarray, n_bits: int) -> np.ndarray:
    """Uniform symmetric quantisation of an array to ``n_bits`` signed levels.

    The scale maps the largest absolute value to the largest representable
    integer ``2**(n_bits-1) - 1``; an all-zero input is returned unchanged.
    """
    if n_bits < 2:
        raise ValueError("n_bits must be at least 2")
    values = np.asarray(values, dtype=np.float64)
    max_abs = np.max(np.abs(values)) if values.size else 0.0
    if max_abs == 0.0:
        return values.copy()
    levels = 2 ** (n_bits - 1) - 1
    scale = max_abs / levels
    return np.round(values / scale) * scale


class SparseQuantizedOutputLayer(BatchedPredictorMixin):
    """Multiclass read-out over RINC outputs with per-neuron sparse fan-in.

    Parameters
    ----------
    n_classes:
        Number of output neurons ``nc``.
    fan_in:
        Number of intermediate bits each output neuron reads (the paper's
        ``P``); output neuron ``j`` reads bits ``j*P .. (j+1)*P - 1``.
    n_bits:
        Quantisation precision ``q`` of the retrained weights (8 in the
        paper's final configuration).
    """

    def __init__(
        self,
        n_classes: int,
        fan_in: int,
        n_bits: int = 8,
        epochs: int = 40,
        learning_rate: float = 0.01,
        seed: SeedLike = 0,
    ) -> None:
        if n_classes <= 1:
            raise ValueError("n_classes must be at least 2")
        if fan_in <= 0:
            raise ValueError("fan_in must be positive")
        if n_bits < 2:
            raise ValueError("n_bits must be at least 2")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.n_classes = n_classes
        self.fan_in = fan_in
        self.n_bits = n_bits
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self.weights_: Optional[np.ndarray] = None  # (n_classes, fan_in) quantised
        self.biases_: Optional[np.ndarray] = None  # (n_classes,) quantised
        self.float_weights_: Optional[np.ndarray] = None
        self.float_biases_: Optional[np.ndarray] = None
        self._integer_weights_cache_: Optional[tuple] = None

    @property
    def n_inputs(self) -> int:
        """Width of the expected intermediate bit vector (``nc * P``)."""
        return self.n_classes * self.fan_in

    # ------------------------------------------------------------------ fit
    def fit(self, intermediate_bits: np.ndarray, y: np.ndarray) -> "SparseQuantizedOutputLayer":
        """Retrain the sparse read-out on predicted intermediate bits."""
        bits = check_binary_matrix(intermediate_bits, "intermediate_bits")
        if bits.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} intermediate bits, got {bits.shape[1]}"
            )
        y = check_labels(y, self.n_classes, "y")

        # The sparse layer is a bank of independent small dense layers, but a
        # single masked dense layer trains identically and far more simply.
        dense = Dense(self.n_inputs, self.n_classes, seed=self.seed)
        mask = np.zeros((self.n_inputs, self.n_classes), dtype=np.float64)
        for cls in range(self.n_classes):
            mask[cls * self.fan_in : (cls + 1) * self.fan_in, cls] = 1.0
        dense.params["W"] *= mask

        model = Sequential([dense])
        trainer = Trainer(
            model,
            SquaredHingeLoss(),
            Adam(model.layers, learning_rate=self.learning_rate),
            schedule=ExponentialDecay(self.learning_rate, 0.95),
            seed=self.seed,
        )
        X_float = bits.astype(np.float64)
        # Re-apply the sparsity mask after every epoch of training: gradients
        # for masked-out weights are discarded, mimicking a truly sparse layer.
        for epoch in range(self.epochs):
            trainer.fit(X_float, y, epochs=1, batch_size=64)
            dense.params["W"] *= mask

        self.float_weights_ = np.array(
            [
                dense.params["W"][cls * self.fan_in : (cls + 1) * self.fan_in, cls]
                for cls in range(self.n_classes)
            ]
        )
        self.float_biases_ = dense.params["b"].copy()
        self.weights_ = quantize_symmetric(self.float_weights_, self.n_bits)
        self.biases_ = quantize_symmetric(self.float_biases_, self.n_bits)
        self._integer_weights_cache_ = None
        return self

    # -------------------------------------------------------------- predict
    def _check_fitted(self) -> None:
        if self.weights_ is None or self.biases_ is None:
            raise RuntimeError("this output layer has not been fitted yet")

    def _integer_weights(self) -> tuple:
        """Quantised weights as ``(int_matrix, scale)``; exact by construction.

        Symmetric quantisation maps every weight to ``k * scale`` with
        integer ``k`` in ``[-(2**(q-1) - 1), 2**(q-1) - 1]`` and the largest
        magnitude hitting the extreme level exactly, so the scale is
        recoverable from the stored quantised weights alone — no extra
        serialised state is needed for the packed path.

        The result is cached: the packed serving path calls this once per
        request, and for one-sample requests the recovery arithmetic would
        otherwise rival the engine evaluation itself.  The cache is keyed
        on the identity of ``weights_``, so both :meth:`fit` and direct
        reassignment of the public attribute (the pattern benchmarks and
        deserialisation use) invalidate it.
        """
        cached = self._integer_weights_cache_
        if cached is None or cached[0] is not self.weights_:
            levels = 2 ** (self.n_bits - 1) - 1
            max_abs = (
                float(np.max(np.abs(self.weights_))) if self.weights_.size else 0.0
            )
            if max_abs == 0.0:
                ints, scale = np.zeros_like(self.weights_, dtype=np.int64), 1.0
            else:
                scale = max_abs / levels
                ints = np.round(self.weights_ / scale).astype(np.int64)
            cached = (self.weights_, ints, scale)
            self._integer_weights_cache_ = cached
        return cached[1], cached[2]

    def decision_scores(self, intermediate_bits: np.ndarray) -> np.ndarray:
        """Quantised pre-activations of every output neuron."""
        self._check_fitted()
        bits = check_binary_matrix(intermediate_bits, "intermediate_bits")
        if bits.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} intermediate bits, got {bits.shape[1]}"
            )
        scores = np.empty((bits.shape[0], self.n_classes), dtype=np.float64)
        for cls in range(self.n_classes):
            block = bits[:, cls * self.fan_in : (cls + 1) * self.fan_in].astype(np.float64)
            scores[:, cls] = block @ self.weights_[cls] + self.biases_[cls]
        return scores

    def predict(self, intermediate_bits: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return np.argmax(self.decision_scores(intermediate_bits), axis=1)

    # ------------------------------------------------------- packed fast path
    def decision_scores_packed(
        self, packed_bits: np.ndarray, n_samples: int
    ) -> np.ndarray:
        """Decision scores straight from packed intermediate words.

        ``packed_bits`` is the ``(nc * P, n_words)`` ``uint64`` matrix the
        compiled RINC bank emits (one row per intermediate bit, samples on
        the bit axis) — exactly ``CompiledNetlist.run_packed``'s output, so
        serving never unpacks between the RINC bank and the read-out.  Each
        neuron's quantised weights are integers times a common scale, so its
        pre-activation is ``scale * (popcount-weighted sum) + bias``,
        evaluated with bit-sliced word adders
        (:func:`~repro.engine.bitpack.packed_weighted_sums`); only the few
        count planes of the result are ever unpacked.

        Matches :meth:`decision_scores` up to float summation order (the
        weighted sum is exact in integers; the single ``scale`` multiply can
        differ from the float dot product by rounding ulps).
        """
        self._check_fitted()
        packed = np.asarray(packed_bits, dtype=np.uint64)
        if packed.ndim != 2 or packed.shape[0] != self.n_inputs:
            raise ValueError(
                f"packed_bits must have shape ({self.n_inputs}, n_words), "
                f"got {packed.shape}"
            )
        if n_samples < 0 or n_samples > packed.shape[1] * 64:
            raise ValueError(
                f"cannot recover {n_samples} samples from {packed.shape[1]} words"
            )
        from repro.engine.bitpack import packed_weighted_sums

        int_weights, scale = self._integer_weights()
        scores = np.empty((n_samples, self.n_classes), dtype=np.float64)
        for cls in range(self.n_classes):
            rows = packed[cls * self.fan_in : (cls + 1) * self.fan_in]
            sums = packed_weighted_sums(rows, int_weights[cls], n_samples)
            scores[:, cls] = scale * sums + self.biases_[cls]
        return scores

    def predict_packed(self, packed_bits: np.ndarray, n_samples: int) -> np.ndarray:
        """Predicted labels from packed intermediate words (see above)."""
        return np.argmax(self.decision_scores_packed(packed_bits, n_samples), axis=1)

    def score(self, intermediate_bits: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against integer labels."""
        y = check_labels(y, self.n_classes, "y")
        return float(np.mean(self.predict(intermediate_bits) == y))

    # --------------------------------------------------------------- hardware
    def lut_count(self) -> int:
        """``q`` LUTs per output neuron (each neuron reads only ``P`` bits)."""
        self._check_fitted()
        return self.n_bits * self.n_classes

    def quantisation_error(self) -> float:
        """Largest absolute weight change introduced by quantisation."""
        self._check_fitted()
        return float(
            max(
                np.max(np.abs(self.weights_ - self.float_weights_), initial=0.0),
                np.max(np.abs(self.biases_ - self.float_biases_), initial=0.0),
            )
        )
