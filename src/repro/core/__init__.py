"""The PoET-BiN core: RINC modules, MAT units, the sparse output layer and
the complete classifier + training workflow (the paper's primary contribution).
"""

from repro.core.lut import LUT
from repro.core.mat import MATModule
from repro.core.netlist import LUTNetlist, NetlistNode
from repro.core.output_layer import SparseQuantizedOutputLayer
from repro.core.poetbin import PoETBiNClassifier
from repro.core.rinc import RINCClassifier
from repro.core.rinc0 import RINC0
from repro.core.serialization import (
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
)
from repro.core.workflow import (
    ClassifierSpec,
    PipelineAccuracies,
    PoETBiNWorkflow,
    WorkflowResult,
)

__all__ = [
    "ClassifierSpec",
    "LUT",
    "LUTNetlist",
    "MATModule",
    "NetlistNode",
    "PipelineAccuracies",
    "PoETBiNClassifier",
    "PoETBiNWorkflow",
    "RINC0",
    "RINCClassifier",
    "SparseQuantizedOutputLayer",
    "WorkflowResult",
    "load_netlist",
    "netlist_from_dict",
    "netlist_to_dict",
    "save_netlist",
]
