"""LUT netlist: the flattened hardware view of a trained PoET-BiN classifier.

A netlist is a directed acyclic graph of LUT nodes.  Primary inputs are the
binary feature bits (named ``in<i>``); every node consumes either primary
inputs or the outputs of earlier nodes and produces one binary signal.  The
netlist is what the resource model, the latency model, the netlist simulator
and the VHDL generator all operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.utils.bitops import binary_to_index
from repro.utils.validation import check_binary_matrix


def primary_input(index: int) -> str:
    """Signal name of primary input ``index``."""
    if index < 0:
        raise ValueError("primary input index must be non-negative")
    return f"in{index}"


def is_primary_input(signal: str) -> bool:
    """True when ``signal`` is spelled like a primary input (``in<digits>``).

    This is a purely *syntactic* check on the reserved namespace.  Whether a
    signal actually is a primary input of a given netlist depends on that
    netlist's width: use :meth:`LUTNetlist.is_primary_input`, which checks the
    name against ``netlist.inputs``, whenever a netlist is at hand.
    """
    return signal.startswith("in") and signal[2:].isdigit()


def primary_input_index(signal: str) -> int:
    """Inverse of :func:`primary_input`."""
    if not is_primary_input(signal):
        raise ValueError(f"{signal!r} is not a primary input name")
    return int(signal[2:])


@dataclass
class NetlistNode:
    """One LUT in the netlist."""

    name: str
    kind: str  # "rinc0", "mat" or "output"
    input_signals: List[str]
    table: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.table = np.asarray(self.table, dtype=np.uint8)
        expected = 1 << len(self.input_signals)
        if self.table.shape != (expected,):
            raise ValueError(
                f"node {self.name!r}: table must have {expected} entries, "
                f"got {self.table.shape}"
            )
        if len(set(self.input_signals)) != len(self.input_signals):
            raise ValueError(f"node {self.name!r}: duplicate input signals")

    @property
    def n_inputs(self) -> int:
        return len(self.input_signals)


class LUTNetlist:
    """A topologically ordered collection of LUT nodes.

    Parameters
    ----------
    n_primary_inputs:
        Number of primary input bits the netlist reads.
    """

    def __init__(self, n_primary_inputs: int) -> None:
        if n_primary_inputs <= 0:
            raise ValueError("n_primary_inputs must be positive")
        self.n_primary_inputs = n_primary_inputs
        self.nodes: List[NetlistNode] = []
        self.output_signals: List[str] = []
        self._names: set[str] = set()

    # ------------------------------------------------------------ namespace
    @property
    def inputs(self) -> List[str]:
        """Names of this netlist's primary inputs (``in0`` .. ``in<n-1>``)."""
        return [primary_input(i) for i in range(self.n_primary_inputs)]

    def is_primary_input(self, signal: str) -> bool:
        """True when ``signal`` names one of *this* netlist's primary inputs.

        Unlike the module-level syntactic check, this resolves against the
        declared inputs: ``in12`` is not a primary input of a 4-input netlist
        (it may legitimately be a node name), and node names can never shadow
        a real primary input because the in-range ``in<i>`` namespace is
        reserved by :meth:`add_node`.
        """
        return (
            is_primary_input(signal)
            and primary_input_index(signal) < self.n_primary_inputs
        )

    # ------------------------------------------------------------- building
    def add_node(
        self,
        name: str,
        kind: str,
        input_signals: Iterable[str],
        table: np.ndarray,
        metadata: Optional[dict] = None,
    ) -> str:
        """Append a node; all of its inputs must already exist."""
        if name in self._names:
            raise ValueError(f"duplicate node name {name!r}")
        if self.is_primary_input(name):
            raise ValueError(
                f"node name {name!r} is reserved for a primary input; "
                f"names in0..in{self.n_primary_inputs - 1} cannot be reused"
            )
        input_signals = list(input_signals)
        for signal in input_signals:
            if self.is_primary_input(signal) or signal in self._names:
                continue
            if is_primary_input(signal):
                raise ValueError(f"primary input {signal!r} out of range")
            raise ValueError(f"node {name!r} reads unknown signal {signal!r}")
        node = NetlistNode(
            name=name,
            kind=kind,
            input_signals=input_signals,
            table=table,
            metadata=metadata or {},
        )
        self.nodes.append(node)
        self._names.add(name)
        return name

    def mark_output(self, signal: str) -> None:
        """Declare ``signal`` as one of the netlist outputs."""
        if signal not in self._names and not self.is_primary_input(signal):
            raise ValueError(f"unknown signal {signal!r}")
        self.output_signals.append(signal)

    def get_node(self, name: str) -> NetlistNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    # ----------------------------------------------------------- statistics
    @property
    def n_luts(self) -> int:
        return len(self.nodes)

    def count_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    def used_primary_inputs(self) -> np.ndarray:
        """Sorted indices of primary inputs referenced anywhere."""
        used = {
            primary_input_index(sig)
            for node in self.nodes
            for sig in node.input_signals
            if self.is_primary_input(sig)
        }
        return np.array(sorted(used), dtype=np.int64)

    def node_levels(self) -> Dict[str, int]:
        """Level of every node: longest LUT chain from the primary inputs.

        Primary inputs sit at level 0; a node's level is one more than its
        deepest input.  Nodes at one level depend only on strictly earlier
        levels, which both :meth:`logic_depth` and the compiled engine's
        scheduler rely on.
        """
        level: Dict[str, int] = {}
        for node in self.nodes:
            input_levels = [
                0 if self.is_primary_input(sig) else level[sig]
                for sig in node.input_signals
            ]
            level[node.name] = (max(input_levels) if input_levels else 0) + 1
        return level

    def logic_depth(self) -> int:
        """Longest LUT chain from any primary input to any output signal."""
        depth = self.node_levels()
        if not depth:
            return 0
        if self.output_signals:
            return max(
                depth.get(sig, 0) for sig in self.output_signals
            )
        return max(depth.values())

    # ----------------------------------------------------------- evaluation
    def evaluate(self, X_bits: np.ndarray) -> Dict[str, np.ndarray]:
        """Simulate the netlist on binary inputs; returns every signal's value."""
        X_bits = check_binary_matrix(X_bits, "X_bits")
        if X_bits.shape[1] != self.n_primary_inputs:
            raise ValueError(
                f"expected {self.n_primary_inputs} primary inputs, got {X_bits.shape[1]}"
            )
        signals: Dict[str, np.ndarray] = {}

        def resolve(signal: str) -> np.ndarray:
            if self.is_primary_input(signal):
                return X_bits[:, primary_input_index(signal)]
            return signals[signal]

        for node in self.nodes:
            if not node.input_signals:
                # zero-input nodes are constants (the fold pass emits them)
                signals[node.name] = np.full(
                    X_bits.shape[0], node.table[0], dtype=node.table.dtype
                )
                continue
            columns = np.column_stack([resolve(sig) for sig in node.input_signals])
            signals[node.name] = node.table[binary_to_index(columns)]
        return signals

    def evaluate_outputs(self, X_bits: np.ndarray) -> np.ndarray:
        """Values of the declared output signals, one column per output."""
        if not self.output_signals:
            raise RuntimeError("netlist has no declared outputs")
        signals = self.evaluate(X_bits)
        X_bits = check_binary_matrix(X_bits, "X_bits")
        columns = []
        for sig in self.output_signals:
            if self.is_primary_input(sig):
                columns.append(X_bits[:, primary_input_index(sig)])
            else:
                columns.append(signals[sig])
        return np.column_stack(columns)
