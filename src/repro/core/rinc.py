"""RINC-L: the hierarchical AdaBoost classifier (Algorithm 2 of the paper).

A RINC-L module with LUT width ``P`` is built recursively:

* RINC-0 is a single level-wise decision tree (one LUT, ``P`` inputs).
* RINC-l (l >= 1) trains up to ``P`` RINC-(l-1) sub-classifiers with discrete
  AdaBoost and combines their binary outputs with a MAT module — which is
  itself one LUT.

With ``L`` levels the module reaches ``P**(L+1)`` input bits using
``(P**(L+1) - 1) / (P - 1)`` LUTs (``P**L`` trees plus ``sum_{l<L} P**l`` MAT
modules).  The
paper's experiments use RINC-2 with P=6 or P=8 and a number of trees that is
not always the full ``P**2`` (e.g. 32 or 40), which the ``branching`` argument
expresses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.boosting.adaboost import AdaBoost
from repro.core.lut import LUT
from repro.core.mat import MATModule
from repro.core.netlist import LUTNetlist, primary_input
from repro.core.rinc0 import RINC0


class RINCClassifier:
    """Hierarchical boosted LUT classifier (RINC-L).

    Parameters
    ----------
    n_inputs:
        LUT input width ``P``.
    n_levels:
        Number of hierarchical AdaBoost levels ``L``.  ``0`` degenerates to a
        single RINC-0 tree.
    branching:
        Number of sub-classifiers boosted at each level, outermost first.
        Each entry must lie in ``[1, n_inputs]`` (a MAT module cannot combine
        more votes than its LUT has inputs).  Defaults to ``n_inputs`` at
        every level.

    Attributes
    ----------
    children_:
        The trained sub-classifiers of the outermost level (RINC-(L-1)
        instances, or a single :class:`RINC0` when ``n_levels == 0``).
    mat_:
        The MAT module combining the outermost sub-classifiers.
    """

    def __init__(
        self,
        n_inputs: int,
        n_levels: int,
        branching: Optional[Sequence[int]] = None,
    ) -> None:
        if n_inputs <= 0:
            raise ValueError("n_inputs must be positive")
        if n_levels < 0:
            raise ValueError("n_levels must be non-negative")
        if branching is None:
            branching = [n_inputs] * n_levels
        branching = list(branching)
        if len(branching) != n_levels:
            raise ValueError(
                f"branching must have {n_levels} entries, got {len(branching)}"
            )
        for width in branching:
            if not 1 <= width <= n_inputs:
                raise ValueError(
                    f"branching entries must lie in [1, {n_inputs}], got {width}"
                )
        self.n_inputs = n_inputs
        self.n_levels = n_levels
        self.branching: Tuple[int, ...] = tuple(branching)
        self.children_: List[object] = []
        self.mat_: Optional[MATModule] = None
        self._leaf: Optional[RINC0] = None
        # engines keyed by (n_features, n_workers or None); values are
        # CompiledNetlist or ShardedEngine, so alternating serial and
        # sharded serving never rebuilds a pool
        self._compiled_: dict = {}

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "RINCClassifier":
        """Train with hierarchical AdaBoost (Algorithm 2)."""
        # the netlist changes with refitting: drop every cached engine
        for engine in self._compiled_.values():
            if hasattr(engine, "close"):
                engine.close()
        self._compiled_ = {}
        if self.n_levels == 0:
            self._leaf = RINC0(self.n_inputs).fit(X, y, sample_weight=sample_weight)
            self.children_ = [self._leaf]
            self.mat_ = None
            return self

        child_levels = self.n_levels - 1
        child_branching = self.branching[1:]

        def factory(_round_index: int) -> "RINCClassifier":
            return RINCClassifier(
                n_inputs=self.n_inputs,
                n_levels=child_levels,
                branching=child_branching,
            )

        booster = AdaBoost(factory, n_rounds=self.branching[0])
        booster.fit(X, y, sample_weight=sample_weight)
        self.children_ = [record.learner for record in booster.rounds_]
        self.mat_ = MATModule.from_adaboost(booster.alphas_)
        return self

    # -------------------------------------------------------------- predict
    @property
    def is_fitted(self) -> bool:
        if self.n_levels == 0:
            return self._leaf is not None and self._leaf.is_fitted
        return self.mat_ is not None

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("this RINC classifier has not been fitted yet")

    def child_outputs(self, X: np.ndarray) -> np.ndarray:
        """Binary outputs of the outermost sub-classifiers, one column each."""
        self._check_fitted()
        if self.n_levels == 0:
            return self._leaf.predict(X)[:, np.newaxis]
        return np.column_stack([child.predict(X) for child in self.children_])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Binary prediction of the full hierarchical module."""
        self._check_fitted()
        if self.n_levels == 0:
            return self._leaf.predict(X)
        return self.mat_.evaluate(self.child_outputs(X))

    def predict_batch(
        self,
        X: np.ndarray,
        batch_size: Optional[int] = None,
        n_workers: Optional[int] = None,
    ) -> np.ndarray:
        """Binary prediction via the bit-packed engine; matches :meth:`predict`.

        The module's netlist runs through the engine's optimising pass
        pipeline and is compiled on first use, cached per feature width and
        worker count (the netlist reads primary inputs, so its shape depends
        on the width of ``X``).  ``n_workers > 1`` serves the batch through
        a sharded multicore executor with bit-identical results.
        """
        from repro.engine import compile_netlist, predict_in_batches
        from repro.utils.validation import check_binary_matrix

        self._check_fitted()
        X = check_binary_matrix(X, "X")
        n_features = X.shape[1]
        key = (n_features, n_workers if n_workers and n_workers > 1 else None)
        engine = self._compiled_.get(key)
        if engine is None:
            netlist, signal = self.to_netlist(n_primary_inputs=n_features)
            netlist.mark_output(signal)
            if key[1] is None:
                engine = compile_netlist(netlist)
            else:
                from repro.engine.parallel import ShardedEngine

                engine = ShardedEngine(netlist, n_workers=key[1])
            self._compiled_[key] = engine
        return predict_in_batches(engine.predict_batch, X, batch_size)[:, 0]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Unweighted accuracy on (X, y)."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    # --------------------------------------------------------------- hardware
    def lut_count(self) -> int:
        """Total LUTs: one per tree plus one MAT LUT per internal module."""
        self._check_fitted()
        if self.n_levels == 0:
            return 1
        return 1 + sum(child.lut_count() for child in self.children_)

    @staticmethod
    def full_lut_count(n_inputs: int, n_levels: int) -> int:
        """Closed-form LUT count for a full RINC-L: ``(P**(L+1) - 1)/(P - 1)``.

        This is the formula of §2.1.3 (the sum of ``P**l`` for ``l = 0..L``)
        and equals :meth:`lut_count` when every level uses the full branching
        factor ``P``.
        """
        if n_inputs <= 1:
            return n_levels + 1
        return (n_inputs ** (n_levels + 1) - 1) // (n_inputs - 1)

    def max_input_bits(self) -> int:
        """Upper bound on distinct feature bits reachable: ``prod(branching) * P``."""
        bits = self.n_inputs
        for width in self.branching:
            bits *= width
        return bits

    def selected_features(self) -> np.ndarray:
        """Sorted union of feature indices used by all trees in the module."""
        self._check_fitted()
        if self.n_levels == 0:
            return np.unique(self._leaf.feature_indices)
        return np.unique(np.concatenate([c.selected_features() for c in self.children_]))

    def to_netlist(
        self,
        netlist: Optional[LUTNetlist] = None,
        n_primary_inputs: Optional[int] = None,
        prefix: str = "rinc",
    ) -> Tuple[LUTNetlist, str]:
        """Append this module's LUTs to ``netlist`` and return its output signal.

        When ``netlist`` is None a new one is created; ``n_primary_inputs``
        must then be given (the width of the binary feature vector).
        """
        self._check_fitted()
        if netlist is None:
            if n_primary_inputs is None:
                raise ValueError("n_primary_inputs is required when creating a netlist")
            netlist = LUTNetlist(n_primary_inputs=n_primary_inputs)

        if self.n_levels == 0:
            lut = self._leaf.to_lut(name=f"{prefix}_t")
            signal = netlist.add_node(
                name=f"{prefix}_t",
                kind="rinc0",
                input_signals=[primary_input(int(i)) for i in lut.input_indices],
                table=lut.table,
            )
            return netlist, signal

        child_signals = []
        for idx, child in enumerate(self.children_):
            _, signal = child.to_netlist(netlist=netlist, prefix=f"{prefix}_{idx}")
            child_signals.append(signal)
        mat_lut: LUT = self.mat_.to_lut(name=f"{prefix}_mat")
        signal = netlist.add_node(
            name=f"{prefix}_mat",
            kind="mat",
            input_signals=child_signals,
            table=mat_lut.table,
            metadata={"weights": self.mat_.weights.copy(), "threshold": self.mat_.threshold},
        )
        return netlist, signal
