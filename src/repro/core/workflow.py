"""The A1 -> A2 -> A3 -> A4 training workflow of Fig. 5.

The paper trains four networks per dataset:

* **A1 — vanilla network**: full-precision feature extractor + fully connected
  classifier.
* **A2 — binary feature representation network**: the activation after the
  last feature-extractor layer is replaced by a binary sigmoid so the
  classifier consumes strictly binary features.
* **A3 — teacher network**: an *intermediate layer* of ``nc x P`` neurons with
  binary sigmoid activation is inserted after the last hidden layer; its bits
  are the targets the RINC modules will emulate.
* **A4 — PoET-BiN**: the classifier portion of the teacher is replaced by one
  RINC-L module per intermediate neuron plus the sparsely connected, ``q``-bit
  quantised output layer, which is retrained on the RINC outputs.

:class:`PoETBiNWorkflow` runs those four stages on any
:class:`~repro.datasets.base.DataBundle` and reports the four accuracies the
paper lists in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.intermediate import (
    extract_binary_features,
    extract_intermediate_targets,
)
from repro.core.poetbin import PoETBiNClassifier
from repro.datasets.base import DataBundle
from repro.nn.layers.activations import BinarySigmoid, ReLU
from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNorm
from repro.nn.layers.dense import Dense
from repro.nn.layers.sparse import BlockSparseDense
from repro.nn.losses import SquaredHingeLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam
from repro.nn.schedulers import ExponentialDecay
from repro.nn.trainer import Trainer
from repro.utils.metrics import accuracy
from repro.utils.rng import SeedLike, as_rng


@dataclass
class ClassifierSpec:
    """Hyper-parameters of the classifier portion (what PoET-BiN replaces)."""

    n_classes: int
    hidden_sizes: Tuple[int, ...]
    lut_inputs: int = 8  # the paper's P
    rinc_levels: int = 2  # the paper's L
    rinc_branching: Optional[Tuple[int, ...]] = None
    output_bits: int = 8  # the paper's q
    intermediate_per_class: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_classes <= 1:
            raise ValueError("n_classes must be at least 2")
        if not self.hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if any(h <= 0 for h in self.hidden_sizes):
            raise ValueError("hidden sizes must be positive")

    @property
    def n_intermediate(self) -> int:
        per_class = (
            self.lut_inputs
            if self.intermediate_per_class is None
            else self.intermediate_per_class
        )
        return self.n_classes * per_class


@dataclass
class PipelineAccuracies:
    """Test accuracies of the four pipeline stages (Table 2 columns A1-A4)."""

    vanilla: float
    binary_features: float
    teacher: float
    poetbin: float

    def as_row(self) -> List[float]:
        return [self.vanilla, self.binary_features, self.teacher, self.poetbin]


@dataclass
class WorkflowResult:
    """Everything the experiments need from one pipeline run."""

    accuracies: PipelineAccuracies
    poetbin: PoETBiNClassifier
    teacher: Sequential
    features_train: np.ndarray
    features_test: np.ndarray
    intermediate_train: np.ndarray
    y_train: np.ndarray
    y_test: np.ndarray
    metadata: dict = field(default_factory=dict)

    @property
    def n_binary_features(self) -> int:
        return int(self.features_train.shape[1])


class PoETBiNWorkflow:
    """Runs the four-stage training pipeline on a dataset.

    Parameters
    ----------
    feature_extractor_factory:
        Callable returning a *fresh* list of layers mapping the raw input to a
        2-D feature matrix of width ``feature_dim``.  The factory must NOT add
        the final activation — the workflow appends ReLU for the vanilla
        network and a binary sigmoid for the binarised variants (this mirrors
        the paper's "replace the ReLU after the last convolutional layer").
    feature_dim:
        Width of the feature extractor output.
    spec:
        The classifier hyper-parameters.
    epochs, batch_size, learning_rate, lr_decay:
        Training settings shared by the three network stages.
    """

    def __init__(
        self,
        feature_extractor_factory: Callable[[], Sequence[Layer]],
        feature_dim: int,
        spec: ClassifierSpec,
        epochs: int = 12,
        batch_size: int = 64,
        learning_rate: float = 0.01,
        lr_decay: float = 0.95,
        output_epochs: int = 40,
        seed: SeedLike = 0,
        verbose: bool = False,
    ) -> None:
        if feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.feature_extractor_factory = feature_extractor_factory
        self.feature_dim = feature_dim
        self.spec = spec
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.lr_decay = lr_decay
        self.output_epochs = output_epochs
        self.seed = seed
        self.verbose = verbose
        self._rng = as_rng(seed)

    # ------------------------------------------------------------ networks
    def _classifier_layers(self, include_intermediate: bool) -> List[Layer]:
        """Hidden layers (+ optional intermediate layer) + output layer."""
        layers: List[Layer] = []
        in_dim = self.feature_dim
        seed_gen = self._rng
        for width in self.spec.hidden_sizes:
            layers.append(Dense(in_dim, width, seed=int(seed_gen.integers(2**31))))
            layers.append(ReLU())
            in_dim = width
        if include_intermediate:
            layers.append(
                Dense(in_dim, self.spec.n_intermediate, seed=int(seed_gen.integers(2**31)))
            )
            layers.append(BatchNorm(self.spec.n_intermediate))
            layers.append(BinarySigmoid())
            # The teacher's read-out is block-sparse (Fig. 4): class j reads
            # only its own block of intermediate bits, so the intermediate
            # layer is trained to make that block informative about class j —
            # the property the final sparse quantised output layer relies on.
            per_class = self.spec.n_intermediate // self.spec.n_classes
            layers.append(
                BlockSparseDense(
                    self.spec.n_classes, per_class, seed=int(seed_gen.integers(2**31))
                )
            )
            return layers
        layers.append(Dense(in_dim, self.spec.n_classes, seed=int(seed_gen.integers(2**31))))
        return layers

    def build_network(self, variant: str) -> Sequential:
        """Build the ``"vanilla"``, ``"binary"`` or ``"teacher"`` network.

        All three variants normalise the feature-extractor output with batch
        normalisation (as the paper's architectures do); the binarised
        variants follow it with the binary sigmoid so that the 0-threshold
        splits the feature distribution rather than clipping it.
        """
        feature_layers = list(self.feature_extractor_factory())
        head: List[Layer] = [BatchNorm(self.feature_dim)]
        if variant == "vanilla":
            head.append(ReLU())
            head += self._classifier_layers(include_intermediate=False)
        elif variant == "binary":
            head.append(BinarySigmoid())
            head += self._classifier_layers(include_intermediate=False)
        elif variant == "teacher":
            head.append(BinarySigmoid())
            head += self._classifier_layers(include_intermediate=True)
        else:
            raise ValueError(f"unknown variant {variant!r}")
        return Sequential(feature_layers + head)

    @staticmethod
    def transfer_common_parameters(source: Sequential, target: Sequential) -> int:
        """Copy parameters layer-by-layer until the architectures diverge.

        The paper starts every stage from the previously trained network (a
        pretrained full-precision CNN is the base architecture); this helper
        implements that warm start: leading layers with matching types and
        parameter shapes are copied, and the first mismatch stops the
        transfer.  Returns the number of layers copied.
        """
        copied = 0
        for src_layer, dst_layer in zip(source.layers, target.layers):
            if type(src_layer) is not type(dst_layer):
                break
            if set(src_layer.params) != set(dst_layer.params):
                break
            if any(
                src_layer.params[name].shape != dst_layer.params[name].shape
                for name in src_layer.params
            ):
                break
            for name, value in src_layer.params.items():
                dst_layer.params[name] = value.copy()
            if isinstance(src_layer, BatchNorm):
                dst_layer.running_mean = src_layer.running_mean.copy()
                dst_layer.running_var = src_layer.running_var.copy()
            copied += 1
        return copied

    def _train_network(
        self, model: Sequential, X: np.ndarray, y: np.ndarray
    ) -> Trainer:
        trainer = Trainer(
            model,
            SquaredHingeLoss(),
            Adam(model.layers, learning_rate=self.learning_rate),
            schedule=ExponentialDecay(self.learning_rate, self.lr_decay),
            seed=int(self._rng.integers(2**31)),
        )
        trainer.fit(
            X,
            y,
            epochs=self.epochs,
            batch_size=self.batch_size,
            verbose=self.verbose,
        )
        return trainer

    # ----------------------------------------------------------------- run
    def run(self, data: DataBundle) -> WorkflowResult:
        """Execute A1 -> A4 and collect the Table 2 accuracies."""
        X_train, y_train = data.X_train, data.y_train
        X_test, y_test = data.X_test, data.y_test

        stage_accuracies = {}
        teacher: Optional[Sequential] = None
        previous: Optional[Sequential] = None
        for variant in ("vanilla", "binary", "teacher"):
            model = self.build_network(variant)
            if previous is not None:
                # warm start from the previous stage, as in the paper's
                # pretrained-base-architecture workflow
                self.transfer_common_parameters(previous, model)
            trainer = self._train_network(model, X_train, y_train)
            stage_accuracies[variant] = trainer.evaluate(X_test, y_test)
            if self.verbose:  # pragma: no cover - logging only
                print(f"[{variant}] test accuracy = {stage_accuracies[variant]:.4f}")
            previous = model
            if variant == "teacher":
                teacher = model

        assert teacher is not None
        features_train = extract_binary_features(teacher, X_train)
        features_test = extract_binary_features(teacher, X_test)
        intermediate_train = extract_intermediate_targets(teacher, X_train)

        poetbin = PoETBiNClassifier(
            n_classes=self.spec.n_classes,
            n_inputs=self.spec.lut_inputs,
            n_levels=self.spec.rinc_levels,
            branching=self.spec.rinc_branching,
            intermediate_per_class=self.spec.intermediate_per_class,
            output_bits=self.spec.output_bits,
            output_epochs=self.output_epochs,
            seed=int(self._rng.integers(2**31)),
            verbose=self.verbose,
        )
        poetbin.fit(features_train, intermediate_train, y_train)
        poetbin_accuracy = accuracy(y_test, poetbin.predict(features_test))
        if self.verbose:  # pragma: no cover - logging only
            print(f"[poetbin] test accuracy = {poetbin_accuracy:.4f}")

        accuracies = PipelineAccuracies(
            vanilla=stage_accuracies["vanilla"],
            binary_features=stage_accuracies["binary"],
            teacher=stage_accuracies["teacher"],
            poetbin=poetbin_accuracy,
        )
        return WorkflowResult(
            accuracies=accuracies,
            poetbin=poetbin,
            teacher=teacher,
            features_train=features_train,
            features_test=features_test,
            intermediate_train=intermediate_train,
            y_train=y_train,
            y_test=y_test,
            metadata={
                "dataset": data.metadata.get("name", "unknown"),
                "spec": self.spec,
                "epochs": self.epochs,
            },
        )
