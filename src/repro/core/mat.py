"""The MAT (Multiply-Add-Threshold) module.

In the RINC architecture each group of ``P`` weak classifiers is combined by
multiplying the binary classifier outputs with their AdaBoost weights, adding,
and thresholding (Fig. 2 of the paper).  Because the MAT unit has ``P`` binary
inputs and one binary output, the whole operation is pre-computed into a
single LUT — this is the step that removes all arithmetic from inference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.lut import LUT
from repro.utils.bitops import enumerate_binary_inputs
from repro.utils.validation import check_binary_matrix


class MATModule:
    """Weighted vote of binary inputs, thresholded, expressible as one LUT.

    The decision implemented is the discrete-AdaBoost rule over 0/1 votes:
    ``output = 1  iff  sum_i w_i * (2 b_i - 1) >= threshold``.

    Parameters
    ----------
    weights:
        Vote weights (the AdaBoost alphas), one per binary input.
    threshold:
        Decision threshold applied to the ±1-encoded weighted sum.  The
        AdaBoost rule uses 0.
    """

    def __init__(self, weights: np.ndarray, threshold: float = 0.0) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if weights.size > 16:
            raise ValueError("a MAT module wider than 16 inputs cannot be a single LUT")
        self.weights = weights
        self.threshold = float(threshold)

    @classmethod
    def from_adaboost(cls, alphas: np.ndarray) -> "MATModule":
        """MAT module implementing the AdaBoost decision over 0/1 votes."""
        return cls(weights=np.asarray(alphas, dtype=np.float64), threshold=0.0)

    @property
    def n_inputs(self) -> int:
        return int(self.weights.size)

    def weighted_sum(self, bits: np.ndarray) -> np.ndarray:
        """±1-encoded weighted sum for each row of ``bits``."""
        bits = check_binary_matrix(bits, "bits")
        if bits.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input columns, got {bits.shape[1]}"
            )
        signed = 2.0 * bits.astype(np.float64) - 1.0
        return signed @ self.weights

    def evaluate(self, bits: np.ndarray) -> np.ndarray:
        """Binary MAT output (ties resolve to 1, matching AdaBoost's sign)."""
        return (self.weighted_sum(bits) >= self.threshold).astype(np.uint8)

    def to_lut(self, input_indices: Optional[np.ndarray] = None, name: str = "") -> LUT:
        """Pre-compute the MAT decision for all ``2**P`` input combinations."""
        if input_indices is None:
            input_indices = np.arange(self.n_inputs)
        input_indices = np.asarray(input_indices, dtype=np.int64)
        if input_indices.shape != (self.n_inputs,):
            raise ValueError("input_indices must provide one index per MAT input")
        combos = enumerate_binary_inputs(self.n_inputs)
        table = self.evaluate(combos)
        return LUT(input_indices=input_indices, table=table, name=name)

    def effective_inputs(self, tolerance: float = 1e-12) -> np.ndarray:
        """Indices of inputs that can actually change the MAT decision.

        An input whose weight is too small relative to the margin of the other
        inputs can never flip the thresholded output; the Xilinx synthesizer
        prunes the corresponding upstream logic (§4.3 of the paper), and the
        resource model reproduces that behaviour with this method.
        """
        keep = []
        combos = enumerate_binary_inputs(self.n_inputs)
        out = self.evaluate(combos)
        for i, w_i in enumerate(self.weights):
            # An input matters iff toggling it changes the thresholded output
            # for at least one assignment of the remaining inputs.
            flipped = combos.copy()
            flipped[:, i] ^= 1
            if np.any(out != self.evaluate(flipped)) and abs(w_i) > tolerance:
                keep.append(i)
        return np.asarray(keep, dtype=np.int64)
