"""Look-Up Table representation.

A LUT is the fundamental hardware primitive PoET-BiN targets: ``P`` binary
inputs, one binary output, with the full truth table stored explicitly.  Every
trained RINC-0 tree and every MAT module reduces to exactly one LUT, which is
what makes the architecture power-efficient — inference is pure table lookup
with no multiplications, additions or weight fetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.bitops import binary_to_index, enumerate_binary_inputs
from repro.utils.validation import check_binary_matrix


@dataclass
class LUT:
    """An explicit truth table over a subset of binary inputs.

    Attributes
    ----------
    input_indices:
        Which columns of the presented binary input vector feed this LUT
        (level order: the first index is the most significant address bit).
    table:
        Output bit for every address, length ``2 ** len(input_indices)``.
    name:
        Optional identifier used in netlists and generated VHDL.
    """

    input_indices: np.ndarray
    table: np.ndarray
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.input_indices = np.asarray(self.input_indices, dtype=np.int64)
        self.table = np.asarray(self.table, dtype=np.uint8)
        if self.input_indices.ndim != 1:
            raise ValueError("input_indices must be 1-D")
        if np.any(self.input_indices < 0):
            raise ValueError("input_indices must be non-negative")
        if len(np.unique(self.input_indices)) != len(self.input_indices):
            raise ValueError("input_indices must be distinct")
        expected = 1 << len(self.input_indices)
        if self.table.shape != (expected,):
            raise ValueError(
                f"table must have {expected} entries for {len(self.input_indices)} "
                f"inputs, got shape {self.table.shape}"
            )
        if self.table.size and not np.all((self.table == 0) | (self.table == 1)):
            raise ValueError("table entries must be 0/1")

    @property
    def n_inputs(self) -> int:
        """Number of LUT inputs (the paper's ``P``)."""
        return int(len(self.input_indices))

    def evaluate(self, X_bits: np.ndarray) -> np.ndarray:
        """Look up the output for each row of the full binary input matrix."""
        X_bits = check_binary_matrix(X_bits, "X_bits")
        if self.n_inputs and X_bits.shape[1] <= int(self.input_indices.max()):
            raise ValueError(
                f"input matrix has {X_bits.shape[1]} columns but the LUT reads "
                f"index {int(self.input_indices.max())}"
            )
        addresses = binary_to_index(X_bits[:, self.input_indices])
        return self.table[addresses]

    def evaluate_local(self, bits: np.ndarray) -> np.ndarray:
        """Look up outputs when ``bits`` columns are already the LUT's inputs."""
        bits = check_binary_matrix(bits, "bits")
        if bits.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input columns, got {bits.shape[1]}"
            )
        return self.table[binary_to_index(bits)]

    def truth_table(self) -> np.ndarray:
        """Return the full (inputs, output) truth table as a 2-D array."""
        inputs = enumerate_binary_inputs(self.n_inputs)
        return np.column_stack([inputs, self.table])

    @classmethod
    def from_function(cls, input_indices: np.ndarray, func, name: str = "") -> "LUT":
        """Build a LUT by evaluating ``func`` on every input combination.

        ``func`` receives the enumerated local input matrix of shape
        ``(2**P, P)`` and must return the corresponding binary outputs.
        """
        input_indices = np.asarray(input_indices, dtype=np.int64)
        combos = enumerate_binary_inputs(len(input_indices))
        outputs = np.asarray(func(combos)).astype(np.uint8).ravel()
        return cls(input_indices=input_indices, table=outputs, name=name)
