"""Serialization of trained LUT netlists.

A deployed PoET-BiN classifier is fully described by its LUT netlist (plus the
quantised output-layer weights); persisting that netlist lets the training
pipeline and the hardware-generation flow run as separate steps — train once,
then regenerate VHDL / memory images / reports from the saved artefact.  The
format is plain JSON so the artefact stays inspectable and diffable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.netlist import LUTNetlist

FORMAT_VERSION = 1


def netlist_to_dict(netlist: LUTNetlist) -> dict:
    """Convert a netlist to a JSON-serialisable dictionary."""
    nodes = []
    for node in netlist.nodes:
        metadata = {}
        for key, value in node.metadata.items():
            if isinstance(value, np.ndarray):
                metadata[key] = value.tolist()
            else:
                metadata[key] = value
        nodes.append(
            {
                "name": node.name,
                "kind": node.kind,
                "inputs": list(node.input_signals),
                "table": node.table.astype(int).tolist(),
                "metadata": metadata,
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "n_primary_inputs": netlist.n_primary_inputs,
        "nodes": nodes,
        "outputs": list(netlist.output_signals),
    }


def netlist_from_dict(payload: dict) -> LUTNetlist:
    """Rebuild a netlist from :func:`netlist_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported netlist format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    netlist = LUTNetlist(n_primary_inputs=int(payload["n_primary_inputs"]))
    for node in payload["nodes"]:
        metadata = dict(node.get("metadata", {}))
        if "weights" in metadata:
            metadata["weights"] = np.asarray(metadata["weights"], dtype=np.float64)
        netlist.add_node(
            name=node["name"],
            kind=node["kind"],
            input_signals=list(node["inputs"]),
            table=np.asarray(node["table"], dtype=np.uint8),
            metadata=metadata,
        )
    for signal in payload.get("outputs", []):
        netlist.mark_output(signal)
    return netlist


def save_netlist(netlist: LUTNetlist, path: Union[str, Path]) -> Path:
    """Write the netlist to a JSON file and return the path."""
    path = Path(path)
    path.write_text(json.dumps(netlist_to_dict(netlist), indent=2))
    return path


def load_netlist(path: Union[str, Path]) -> LUTNetlist:
    """Read a netlist previously written by :func:`save_netlist`."""
    payload = json.loads(Path(path).read_text())
    return netlist_from_dict(payload)
