"""RINC-0: the single-LUT binary neuron (a level-wise decision tree).

RINC-0 is the base case of the hierarchical RINC construction: one level-wise
decision tree whose ``P`` selected features become the LUT inputs and whose
leaf labels become the LUT truth table.  The class below is a thin adapter
around :class:`~repro.trees.level_tree.LevelWiseDecisionTree` that exposes the
weak-learner protocol required by AdaBoost plus the LUT/netlist view used by
the hardware backend.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.lut import LUT
from repro.trees.level_tree import LevelWiseDecisionTree


class RINC0:
    """A binary neuron implemented as exactly one ``P``-input LUT.

    Parameters
    ----------
    n_inputs:
        LUT input width ``P`` (the paper uses 6 or 8).
    excluded_features:
        Optional feature indices the tree must not select.
    """

    def __init__(
        self, n_inputs: int, excluded_features: Optional[Sequence[int]] = None
    ) -> None:
        self.n_inputs = n_inputs
        self.tree = LevelWiseDecisionTree(
            n_inputs=n_inputs, excluded_features=excluded_features
        )

    # weak-learner protocol -------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "RINC0":
        self.tree.fit(X, y, sample_weight=sample_weight)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.tree.predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return self.tree.score(X, y)

    # hardware view ---------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self.tree.feature_indices_ is not None

    @property
    def feature_indices(self) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("this RINC-0 module has not been fitted yet")
        return self.tree.feature_indices_

    def to_lut(self, name: str = "") -> LUT:
        """The single LUT this module occupies."""
        features, table = self.tree.to_lut()
        return LUT(input_indices=features, table=table, name=name)

    def lut_count(self) -> int:
        """Number of LUTs required (always one, by construction)."""
        return 1
