"""The complete PoET-BiN classifier.

A PoET-BiN classifier is a bank of RINC-L modules — one per neuron of the
teacher network's intermediate layer (``nc x P`` neurons) — followed by the
sparsely connected, ``q``-bit quantised output layer.  Training follows the
paper's student/teacher recipe:

1. each RINC-L module is trained to emulate one intermediate-layer bit, then
2. the output layer is retrained on the *predicted* RINC outputs so it adapts
   to their approximation errors.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.core.netlist import LUTNetlist

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.compiled_netlist import CompiledNetlist
    from repro.engine.parallel import ShardedEngine, WorkerPool
from repro.core.output_layer import SparseQuantizedOutputLayer
from repro.core.rinc import RINCClassifier
from repro.utils.metrics import accuracy
from repro.utils.rng import SeedLike
from repro.utils.validation import check_binary_matrix, check_labels


class PoETBiNClassifier:
    """LUT-only multiclass classifier (the paper's final architecture).

    Parameters
    ----------
    n_classes:
        Number of classes ``nc``.
    n_inputs:
        LUT input width ``P`` (6 or 8 in the paper).
    n_levels:
        RINC hierarchy depth ``L`` (2 in all the paper's experiments).
    branching:
        Per-level boosting width of each RINC module (see
        :class:`~repro.core.rinc.RINCClassifier`); defaults to ``P`` everywhere.
    intermediate_per_class:
        Number of intermediate bits (RINC modules) per class; the paper uses
        ``P`` so the intermediate layer has ``nc * P`` neurons.
    output_bits:
        Quantisation precision ``q`` of the output layer.
    """

    def __init__(
        self,
        n_classes: int,
        n_inputs: int = 8,
        n_levels: int = 2,
        branching: Optional[Sequence[int]] = None,
        intermediate_per_class: Optional[int] = None,
        output_bits: int = 8,
        output_epochs: int = 40,
        output_learning_rate: float = 0.01,
        seed: SeedLike = 0,
        verbose: bool = False,
    ) -> None:
        if n_classes <= 1:
            raise ValueError("n_classes must be at least 2")
        self.n_classes = n_classes
        self.n_inputs = n_inputs
        self.n_levels = n_levels
        self.branching = branching
        self.intermediate_per_class = (
            n_inputs if intermediate_per_class is None else intermediate_per_class
        )
        if self.intermediate_per_class <= 0:
            raise ValueError("intermediate_per_class must be positive")
        self.output_bits = output_bits
        self.output_epochs = output_epochs
        self.output_learning_rate = output_learning_rate
        self.seed = seed
        self.verbose = verbose
        self.rinc_modules_: List[RINCClassifier] = []
        self.output_layer_: Optional[SparseQuantizedOutputLayer] = None
        self.n_features_: Optional[int] = None
        # engine backend ("numpy"/"native"/"native-mt"/"auto") -> engine
        self._compiled_: dict = {}
        # (n_workers or ("pool", id(pool)), engine_backend) -> ShardedEngine
        self._sharded_: dict = {}

    @property
    def n_intermediate(self) -> int:
        """Total number of intermediate bits (= number of RINC modules)."""
        return self.n_classes * self.intermediate_per_class

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        X_features: np.ndarray,
        intermediate_targets: np.ndarray,
        y: np.ndarray,
    ) -> "PoETBiNClassifier":
        """Train the RINC bank and retrain the sparse output layer.

        Parameters
        ----------
        X_features:
            Binary feature matrix from the (binarised) feature extractor,
            shape ``(n, F)``.
        intermediate_targets:
            Binary intermediate-layer activations of the teacher network,
            shape ``(n, nc * intermediate_per_class)``.
        y:
            Integer class labels, shape ``(n,)``.
        """
        X_features = check_binary_matrix(X_features, "X_features")
        intermediate_targets = check_binary_matrix(
            intermediate_targets, "intermediate_targets"
        )
        y = check_labels(y, self.n_classes, "y")
        if intermediate_targets.shape[1] != self.n_intermediate:
            raise ValueError(
                f"expected {self.n_intermediate} intermediate targets, "
                f"got {intermediate_targets.shape[1]}"
            )
        if X_features.shape[0] != intermediate_targets.shape[0]:
            raise ValueError("X_features and intermediate_targets length mismatch")
        self.n_features_ = X_features.shape[1]
        # invalidate cached engines before mutating the RINC bank
        self._compiled_ = {}
        self._close_sharded()

        self.rinc_modules_ = []
        for neuron in range(self.n_intermediate):
            module = RINCClassifier(
                n_inputs=self.n_inputs,
                n_levels=self.n_levels,
                branching=self.branching,
            )
            module.fit(X_features, intermediate_targets[:, neuron])
            self.rinc_modules_.append(module)
            if self.verbose:  # pragma: no cover - logging only
                emulation = module.score(X_features, intermediate_targets[:, neuron])
                print(
                    f"RINC module {neuron + 1}/{self.n_intermediate}: "
                    f"emulation accuracy {emulation:.4f}"
                )

        predicted_bits = self.predict_intermediate(X_features)
        self.output_layer_ = SparseQuantizedOutputLayer(
            n_classes=self.n_classes,
            fan_in=self.intermediate_per_class,
            n_bits=self.output_bits,
            epochs=self.output_epochs,
            learning_rate=self.output_learning_rate,
            seed=self.seed,
        )
        self.output_layer_.fit(predicted_bits, y)
        return self

    # -------------------------------------------------------------- predict
    def _check_fitted(self) -> None:
        if not self.rinc_modules_ or self.output_layer_ is None:
            raise RuntimeError("this PoET-BiN classifier has not been fitted yet")

    def predict_intermediate(self, X_features: np.ndarray) -> np.ndarray:
        """Predicted intermediate bits, one column per RINC module."""
        if not self.rinc_modules_:
            raise RuntimeError("this PoET-BiN classifier has not been fitted yet")
        X_features = check_binary_matrix(X_features, "X_features")
        return np.column_stack([m.predict(X_features) for m in self.rinc_modules_])

    def predict(self, X_features: np.ndarray) -> np.ndarray:
        """Predicted class labels (module-by-module reference path)."""
        self._check_fitted()
        return self.output_layer_.predict(self.predict_intermediate(X_features))

    def compiled_netlist(self, engine_backend: str = "numpy"):
        """The bit-packed engine for this classifier, compiled on first use.

        ``engine_backend`` picks the evaluation engine — the NumPy word-op
        interpreter (default), the generated-C native engine
        (``"native"``), its autotuned multithreaded/SIMD tier
        (``"native-mt"``, which shards large batches across word ranges
        in-process), or ``"auto"`` (native when the host has a C
        toolchain, else NumPy) — cached per backend.
        """
        self._check_fitted()
        engine = self._compiled_.get(engine_backend)
        if engine is None:
            from repro.engine import compile_netlist

            engine = compile_netlist(
                self.to_netlist(), backend=engine_backend
            )
            self._compiled_[engine_backend] = engine
        return engine

    def sharded_engine(
        self,
        n_workers: Optional[int] = None,
        *,
        pool: Optional["WorkerPool"] = None,
        engine_backend: str = "numpy",
    ) -> "ShardedEngine":
        """A multicore executor for the RINC bank.

        ``n_workers`` creates (and caches, per worker count) an engine that
        owns a private pool — the single-model path.  ``pool`` instead
        attaches this classifier to a shared
        :class:`~repro.engine.parallel.WorkerPool` (cached per pool), so
        many classifiers served from one process share one set of worker
        processes — the multi-model serving path.  ``engine_backend``
        picks the per-worker evaluation engine (see
        :meth:`compiled_netlist`); caching keys on it, so one classifier
        can serve a native and a NumPy view side by side.
        """
        self._check_fitted()
        if (pool is None) == (n_workers is None):
            raise ValueError("provide exactly one of n_workers and pool")
        from repro.engine.parallel import ShardedEngine

        base = ("pool", id(pool)) if pool is not None else n_workers
        key = (base, engine_backend)
        engine = self._sharded_.get(key)
        if engine is None:
            engine = ShardedEngine(
                self.to_netlist(),
                n_workers=n_workers,
                pool=pool,
                engine_backend=engine_backend,
            )
            self._sharded_[key] = engine
        return engine

    def _close_sharded(self) -> None:
        for engine in self._sharded_.values():
            engine.close()
        self._sharded_ = {}

    def _engine(
        self,
        n_workers: Optional[int],
        pool: Optional["WorkerPool"] = None,
        engine_backend: str = "numpy",
    ):
        if pool is not None:
            if n_workers is not None:
                raise ValueError(
                    "provide at most one of n_workers and pool"
                )
            return self.sharded_engine(pool=pool, engine_backend=engine_backend)
        if n_workers is None or n_workers <= 1:
            return self.compiled_netlist(engine_backend)
        return self.sharded_engine(n_workers, engine_backend=engine_backend)

    def predict_intermediate_batch(
        self,
        X_features: np.ndarray,
        batch_size: Optional[int] = None,
        n_workers: Optional[int] = None,
        pool: Optional["WorkerPool"] = None,
        engine_backend: str = "numpy",
    ) -> np.ndarray:
        """Intermediate bits via the bit-packed engine; matches
        :meth:`predict_intermediate` bit for bit.  ``n_workers`` shards the
        packed words across a private process pool; ``pool`` shares an
        existing :class:`~repro.engine.parallel.WorkerPool` instead (see
        :meth:`sharded_engine`).  ``engine_backend`` picks the evaluator —
        ``"numpy"``, ``"native"`` (generated C), ``"native-mt"``
        (autotuned multithreaded native) or ``"auto"``."""
        from repro.engine import predict_in_batches

        engine = self._engine(n_workers, pool, engine_backend)
        X_features = check_binary_matrix(X_features, "X_features")
        return predict_in_batches(engine.predict_batch, X_features, batch_size)

    def predict_batch(
        self,
        X_features: np.ndarray,
        batch_size: Optional[int] = None,
        n_workers: Optional[int] = None,
        pool: Optional["WorkerPool"] = None,
        engine_backend: str = "numpy",
    ) -> np.ndarray:
        """Predicted class labels, packed end to end.

        The whole serving path stays in packed words: the RINC bank is
        evaluated by the compiled netlist (sharded across ``n_workers``
        private processes, or a shared ``pool``, when given), and its
        packed outputs feed the output layer's popcount-based read-out
        directly — nothing is unpacked between the RINC bank and the final
        scores.  The intermediate bits are bit-identical to
        :meth:`predict_intermediate`; labels match :meth:`predict` except
        in the measure-zero case of two classes whose float scores tie
        within rounding ulps (the packed read-out sums integers exactly,
        the float reference accumulates per-weight rounding — see
        :meth:`~repro.core.output_layer.SparseQuantizedOutputLayer.decision_scores_packed`).
        """
        from repro.engine import pack_bits, predict_in_batches

        engine = self._engine(n_workers, pool, engine_backend)
        X_features = check_binary_matrix(X_features, "X_features")

        def predict_chunk(chunk: np.ndarray) -> np.ndarray:
            packed_intermediate = engine.run_packed(pack_bits(chunk))
            return self.output_layer_.predict_packed(
                packed_intermediate, chunk.shape[0]
            )

        return predict_in_batches(predict_chunk, X_features, batch_size)

    def decision_scores_batch(
        self,
        X_features: np.ndarray,
        batch_size: Optional[int] = None,
        n_workers: Optional[int] = None,
        pool: Optional["WorkerPool"] = None,
        engine_backend: str = "numpy",
    ) -> np.ndarray:
        """Per-class decision scores ``(n, nc)``, packed end to end.

        The serving-layer entry point: one engine pass yields the scores via
        :meth:`~repro.core.output_layer.SparseQuantizedOutputLayer.decision_scores_packed`,
        and ``argmax`` over them reproduces :meth:`predict_batch` — so a
        server can return labels *and* confidences from a single packed
        evaluation instead of running the bank twice.  ``pool`` attaches
        the bank to a shared :class:`~repro.engine.parallel.WorkerPool`,
        the multi-model server's configuration.
        """
        self._check_fitted()
        from repro.engine import pack_bits, predict_in_batches

        engine = self._engine(n_workers, pool, engine_backend)
        X_features = check_binary_matrix(X_features, "X_features")

        def scores_chunk(chunk: np.ndarray) -> np.ndarray:
            packed_intermediate = engine.run_packed(pack_bits(chunk))
            return self.output_layer_.decision_scores_packed(
                packed_intermediate, chunk.shape[0]
            )

        return predict_in_batches(scores_chunk, X_features, batch_size)

    def decision_scores_packed_batch(
        self,
        packed: np.ndarray,
        n_samples: int,
        n_workers: Optional[int] = None,
        pool: Optional["WorkerPool"] = None,
        engine_backend: str = "numpy",
    ) -> np.ndarray:
        """Per-class scores ``(n_samples, nc)`` from *already-packed* rows.

        The binary wire protocol's zero-copy entry point: ``packed`` is the
        :func:`~repro.engine.bitpack.pack_bits` layout — uint64 bit-planes
        of shape ``(n_features, n_words(n_samples))`` — so a client that
        packed once ships the words and the server evaluates them directly,
        never expanding back to a byte matrix.  ``argmax`` over the result
        matches :meth:`predict_batch` on the corresponding unpacked rows
        exactly (both read out the same packed intermediate bits).  Padding
        bits past ``n_samples`` in the last word may hold anything; the
        read-out only consumes the live lanes.
        """
        self._check_fitted()
        from repro.engine import n_words

        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        if packed.ndim != 2:
            raise ValueError(f"packed must be 2-D, got shape {packed.shape}")
        n_samples = int(n_samples)
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        if packed.shape[0] != self.n_features_:
            raise ValueError(
                f"packed carries {packed.shape[0]} feature planes, this "
                f"model expects {self.n_features_}"
            )
        expected_words = n_words(n_samples)
        if packed.shape[1] != expected_words:
            raise ValueError(
                f"packed has {packed.shape[1]} words per plane, but "
                f"{n_samples} samples need {expected_words}"
            )
        engine = self._engine(n_workers, pool, engine_backend)
        packed_intermediate = engine.run_packed(packed)
        return self.output_layer_.decision_scores_packed(
            packed_intermediate, n_samples
        )

    def score(self, X_features: np.ndarray, y: np.ndarray) -> float:
        """Multiclass accuracy."""
        y = check_labels(y, self.n_classes, "y")
        return accuracy(y, self.predict(X_features))

    def emulation_accuracy(
        self, X_features: np.ndarray, intermediate_targets: np.ndarray
    ) -> np.ndarray:
        """Per-module accuracy at emulating its intermediate-layer bit."""
        self._check_fitted()
        intermediate_targets = check_binary_matrix(
            intermediate_targets, "intermediate_targets"
        )
        predicted = self.predict_intermediate(X_features)
        return np.mean(predicted == intermediate_targets, axis=0)

    # --------------------------------------------------------------- hardware
    def lut_count(self) -> int:
        """Total LUTs: RINC modules plus the quantised output layer."""
        self._check_fitted()
        rinc = sum(m.lut_count() for m in self.rinc_modules_)
        return rinc + self.output_layer_.lut_count()

    def to_netlist(self) -> LUTNetlist:
        """Netlist of all RINC modules; outputs are the intermediate bits.

        The quantised output layer is arithmetic over ``P`` bits per neuron
        and is accounted for separately (``q`` LUTs per neuron) by the
        resource model; the netlist covers the purely boolean part.
        """
        self._check_fitted()
        netlist = LUTNetlist(n_primary_inputs=self.n_features_)
        for index, module in enumerate(self.rinc_modules_):
            _, signal = module.to_netlist(netlist=netlist, prefix=f"n{index}")
            netlist.mark_output(signal)
        return netlist
