"""Entropy helpers for decision-tree training.

All entropies are base-2 (bits) and accept non-negative *weights* rather than
counts, because the boosted trees of the RINC architecture are trained on
AdaBoost-reweighted samples.
"""

from __future__ import annotations

import numpy as np


def binary_entropy(p: np.ndarray) -> np.ndarray:
    """Entropy of a Bernoulli(p) variable, elementwise, in bits.

    ``p`` values of exactly 0 or 1 give zero entropy (the ``0 log 0 = 0``
    convention).
    """
    p = np.asarray(p, dtype=np.float64)
    if np.any((p < 0) | (p > 1)):
        raise ValueError("probabilities must lie in [0, 1]")
    out = np.zeros_like(p)
    interior = (p > 0) & (p < 1)
    pi = p[interior]
    out[interior] = -(pi * np.log2(pi) + (1 - pi) * np.log2(1 - pi))
    return out


def entropy_from_counts(counts: np.ndarray) -> np.ndarray:
    """Entropy (bits) of distributions given as rows of non-negative weights.

    Parameters
    ----------
    counts:
        Array of shape ``(..., n_classes)``.  Rows that sum to zero (empty
        nodes) have zero entropy.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    totals = counts.sum(axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        probs = np.where(totals > 0, counts / np.where(totals > 0, totals, 1.0), 0.0)
        log_terms = np.where(probs > 0, probs * np.log2(probs), 0.0)
    return -log_terms.sum(axis=-1)


def weighted_label_entropy(y: np.ndarray, sample_weight: np.ndarray) -> float:
    """Weighted entropy (bits) of a binary label vector."""
    y = np.asarray(y)
    w = np.asarray(sample_weight, dtype=np.float64)
    if y.shape != w.shape:
        raise ValueError("y and sample_weight must have the same shape")
    if np.any(w < 0):
        raise ValueError("sample weights must be non-negative")
    total = w.sum()
    if total == 0:
        return 0.0
    w1 = float(w[y == 1].sum())
    return float(binary_entropy(np.array(w1 / total)))
