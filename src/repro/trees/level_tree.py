"""Level-wise decision tree — Algorithm 1 of the paper (the RINC-0 trainer).

A conventional decision tree grows node by node, choosing a possibly different
feature at every node.  The paper instead trains *level-wise*: every node of a
level tests the same feature, so a tree of depth ``P`` uses exactly ``P``
distinct features and its leaf table is precisely a ``P``-input LUT.  This
maximises the use of a fixed-input LUT (which is constrained by the number of
distinct inputs, not by depth or node count) and makes leaf lookup O(1).

The implementation vectorises the inner loops of Algorithm 1: at each level the
weighted class histograms of every candidate feature are obtained with a single
sparse matrix product (samples grouped by current node and class, multiplied by
the binary feature matrix), so selecting a feature costs O(n_samples x
n_features) with no per-feature Python loop.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import sparse

from repro.utils.bitops import binary_to_index
from repro.utils.validation import (
    check_binary_matrix,
    check_binary_vector,
    check_consistent_lengths,
)


def _weighted_child_entropy(class0: np.ndarray, class1: np.ndarray) -> np.ndarray:
    """Weighted entropy contribution ``total * H(class0, class1)``, elementwise.

    Equals ``-(class0 * log2(class0/total) + class1 * log2(class1/total))``
    with the usual ``0 log 0 = 0`` convention; used to score candidate
    features of one tree level in a fully vectorised way.
    """
    total = class0 + class1
    with np.errstate(divide="ignore", invalid="ignore"):
        term0 = np.where(class0 > 0, class0 * np.log2(np.where(class0 > 0, class0, 1.0)), 0.0)
        term1 = np.where(class1 > 0, class1 * np.log2(np.where(class1 > 0, class1, 1.0)), 0.0)
        norm = np.where(total > 0, total * np.log2(np.where(total > 0, total, 1.0)), 0.0)
    return norm - term0 - term1


class LevelWiseDecisionTree:
    """Binary classifier over binary features, trained level-wise.

    Parameters
    ----------
    n_inputs:
        Number of levels == number of distinct features selected == LUT input
        width ``P``.  The fitted tree is exactly one ``P``-input LUT.
    excluded_features:
        Features that must not be selected (used by callers that want
        non-overlapping trees).

    Attributes
    ----------
    feature_indices_:
        The selected features, in level order (level 0 first — the most
        significant LUT address bit).
    table_:
        Leaf labels for every LUT address, shape ``(2**n_inputs,)``.
    """

    def __init__(
        self,
        n_inputs: int,
        excluded_features: Optional[Sequence[int]] = None,
    ) -> None:
        if n_inputs <= 0:
            raise ValueError("n_inputs must be positive")
        if n_inputs > 16:
            raise ValueError(
                "n_inputs above 16 would require enumerating more than 65536 "
                "LUT entries; the paper uses 6 to 8"
            )
        self.n_inputs = n_inputs
        self.excluded_features = tuple(excluded_features or ())
        self.feature_indices_: Optional[np.ndarray] = None
        self.table_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "LevelWiseDecisionTree":
        """Select features level-by-level and fill the leaf table."""
        X = check_binary_matrix(X, "X")
        y = check_binary_vector(y, "y")
        check_consistent_lengths(X=X, y=y)
        n_samples, n_features = X.shape
        if n_samples == 0:
            raise ValueError("cannot fit on an empty dataset")
        if sample_weight is None:
            weights = np.full(n_samples, 1.0 / n_samples)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64)
            if weights.shape != (n_samples,):
                raise ValueError("sample_weight must have shape (n_samples,)")
            if np.any(weights < 0):
                raise ValueError("sample weights must be non-negative")
            if weights.sum() <= 0:
                raise ValueError("sample weights must not all be zero")

        available = np.ones(n_features, dtype=bool)
        for idx in self.excluded_features:
            if not 0 <= idx < n_features:
                raise ValueError(f"excluded feature {idx} out of range")
            available[idx] = False
        if available.sum() < self.n_inputs:
            raise ValueError(
                f"need at least {self.n_inputs} available features, "
                f"have {int(available.sum())}"
            )

        y_int = y.astype(np.int64)
        X_float = X.astype(np.float64)
        selected: list[int] = []
        # node index of each sample in the partially built tree (i bits so far)
        node_idx = np.zeros(n_samples, dtype=np.int64)
        for level in range(self.n_inputs):
            n_nodes = 1 << level
            # group samples by (current node, class); one sparse matmul then
            # yields the weighted count of feature==1 per group and feature.
            group = node_idx * 2 + y_int
            grouping = sparse.csr_matrix(
                (weights, (group, np.arange(n_samples))), shape=(n_nodes * 2, n_samples)
            )
            ones_count = np.asarray(grouping @ X_float)  # (n_nodes*2, F)
            group_total = np.asarray(grouping.sum(axis=1)).ravel()  # (n_nodes*2,)
            zeros_count = group_total[:, np.newaxis] - ones_count
            # per candidate feature, the children class counts are
            #   bit=1 child of node m: (ones_count[2m], ones_count[2m+1])
            #   bit=0 child of node m: (zeros_count[2m], zeros_count[2m+1])
            c1_class0 = ones_count[0::2, :]
            c1_class1 = ones_count[1::2, :]
            c0_class0 = zeros_count[0::2, :]
            c0_class1 = zeros_count[1::2, :]
            level_entropy = _weighted_child_entropy(c1_class0, c1_class1)
            level_entropy += _weighted_child_entropy(c0_class0, c0_class1)
            level_entropy = level_entropy.sum(axis=0)  # (F,)
            level_entropy[~available] = np.inf
            best_feature = int(np.argmin(level_entropy))
            selected.append(best_feature)
            available[best_feature] = False
            node_idx = (node_idx << 1) | X[:, best_feature]

        # Leaf labels: weighted majority class per node, ties resolved to 1
        # (Algorithm 1 appends 1 when S0 <= S1).
        n_leaves = 1 << self.n_inputs
        leaf_counts = np.bincount(
            node_idx * 2 + y_int, weights=weights, minlength=n_leaves * 2
        ).reshape(n_leaves, 2)
        self.table_ = (leaf_counts[:, 0] <= leaf_counts[:, 1]).astype(np.uint8)
        self.feature_indices_ = np.asarray(selected, dtype=np.int64)
        return self

    # -------------------------------------------------------------- predict
    def _check_fitted(self) -> None:
        if self.feature_indices_ is None or self.table_ is None:
            raise RuntimeError("this tree has not been fitted yet")

    def decision_path(self, X: np.ndarray) -> np.ndarray:
        """LUT address (leaf index) of every sample."""
        self._check_fitted()
        X = check_binary_matrix(X, "X")
        if X.shape[1] <= int(self.feature_indices_.max()):
            raise ValueError("X has fewer features than the tree was trained on")
        return binary_to_index(X[:, self.feature_indices_])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted binary labels."""
        return self.table_[self.decision_path(X)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Unweighted accuracy on (X, y)."""
        y = check_binary_vector(y, "y")
        return float(np.mean(self.predict(X) == y))

    # ------------------------------------------------------------------ LUT
    def to_lut(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(feature_indices, table)`` — the LUT this tree encodes."""
        self._check_fitted()
        return self.feature_indices_.copy(), self.table_.copy()
