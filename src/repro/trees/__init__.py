"""Decision-tree substrates.

* :mod:`repro.trees.entropy` — weighted entropy / information-gain helpers.
* :mod:`repro.trees.classic_tree` — a conventional node-wise greedy decision
  tree (the "off-the-shelf" style of tree used by the POLYBiNN baseline).
* :mod:`repro.trees.level_tree` — the paper's modified *level-wise* decision
  tree (Algorithm 1), the building block of the RINC-0 module.
"""

from repro.trees.classic_tree import ClassicDecisionTree
from repro.trees.entropy import (
    binary_entropy,
    entropy_from_counts,
    weighted_label_entropy,
)
from repro.trees.level_tree import LevelWiseDecisionTree

__all__ = [
    "ClassicDecisionTree",
    "LevelWiseDecisionTree",
    "binary_entropy",
    "entropy_from_counts",
    "weighted_label_entropy",
]
