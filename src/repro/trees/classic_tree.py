"""Conventional node-wise greedy decision tree over binary features.

This is the "off-the-shelf" style of decision tree the paper contrasts with
its level-wise variant: each node picks its own best feature, growth is
bounded by ``max_depth`` and/or ``max_nodes``, and different branches may use
different features (so the tree does *not* map to a single LUT).  It is used
by the POLYBiNN baseline and as the reference point for the RINC-0 capacity
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.trees.entropy import entropy_from_counts
from repro.utils.validation import (
    check_binary_matrix,
    check_binary_vector,
    check_consistent_lengths,
)


@dataclass
class _Node:
    """One node of the fitted tree."""

    prediction: int
    feature: int = -1  # -1 marks a leaf
    left: Optional["_Node"] = None  # feature == 0 branch
    right: Optional["_Node"] = None  # feature == 1 branch

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class ClassicDecisionTree:
    """Greedy entropy-minimising binary decision tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    max_nodes:
        Optional cap on the total number of internal nodes.
    min_samples_split:
        Minimum weighted fraction of samples required to split a node.
    """

    def __init__(
        self,
        max_depth: int = 8,
        max_nodes: Optional[int] = None,
        min_samples_split: float = 1e-9,
    ) -> None:
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        if max_nodes is not None and max_nodes <= 0:
            raise ValueError("max_nodes must be positive when given")
        self.max_depth = max_depth
        self.max_nodes = max_nodes
        self.min_samples_split = min_samples_split
        self.root_: Optional[_Node] = None
        self.n_internal_nodes_ = 0
        self.depth_ = 0

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "ClassicDecisionTree":
        X = check_binary_matrix(X, "X")
        y = check_binary_vector(y, "y")
        check_consistent_lengths(X=X, y=y)
        n_samples = X.shape[0]
        if n_samples == 0:
            raise ValueError("cannot fit on an empty dataset")
        if sample_weight is None:
            weights = np.full(n_samples, 1.0 / n_samples)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64)
            if weights.shape != (n_samples,):
                raise ValueError("sample_weight must have shape (n_samples,)")
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("sample weights must be non-negative and not all zero")
        self.n_internal_nodes_ = 0
        self.depth_ = 0
        self.root_ = self._build(X, y.astype(np.int64), weights, depth=0)
        return self

    def _majority(self, y: np.ndarray, weights: np.ndarray) -> int:
        w1 = float(weights[y == 1].sum())
        w0 = float(weights[y == 0].sum())
        return 1 if w0 <= w1 else 0

    def _build(
        self, X: np.ndarray, y: np.ndarray, weights: np.ndarray, depth: int
    ) -> _Node:
        prediction = self._majority(y, weights)
        self.depth_ = max(self.depth_, depth)
        total = weights.sum()
        if (
            depth >= self.max_depth
            or total <= self.min_samples_split
            or len(np.unique(y)) < 2
            or (self.max_nodes is not None and self.n_internal_nodes_ >= self.max_nodes)
        ):
            return _Node(prediction=prediction)

        # choose the feature whose split minimises weighted entropy
        best_feature = -1
        best_entropy = np.inf
        for feat in range(X.shape[1]):
            bits = X[:, feat].astype(np.int64)
            counts = np.bincount(bits * 2 + y, weights=weights, minlength=4).reshape(2, 2)
            branch_totals = counts.sum(axis=1)
            entropy = float(np.dot(branch_totals, entropy_from_counts(counts)))
            if entropy < best_entropy - 1e-15:
                best_entropy = entropy
                best_feature = feat
        if best_feature < 0:
            return _Node(prediction=prediction)

        mask = X[:, best_feature] == 1
        if mask.all() or (~mask).all():
            return _Node(prediction=prediction)

        self.n_internal_nodes_ += 1
        node = _Node(prediction=prediction, feature=best_feature)
        node.left = self._build(X[~mask], y[~mask], weights[~mask], depth + 1)
        node.right = self._build(X[mask], y[mask], weights[mask], depth + 1)
        return node

    # -------------------------------------------------------------- predict
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("this tree has not been fitted yet")
        X = check_binary_matrix(X, "X")
        out = np.empty(X.shape[0], dtype=np.uint8)
        for i in range(X.shape[0]):
            node = self.root_
            while not node.is_leaf:
                node = node.right if X[i, node.feature] == 1 else node.left
            out[i] = node.prediction
        return out

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Unweighted accuracy on (X, y)."""
        y = check_binary_vector(y, "y")
        return float(np.mean(self.predict(X) == y))

    def count_distinct_features(self) -> int:
        """Number of distinct features referenced anywhere in the tree."""
        if self.root_ is None:
            raise RuntimeError("this tree has not been fitted yet")
        features: set[int] = set()
        stack = [self.root_]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                features.add(node.feature)
                stack.extend([node.left, node.right])
        return len(features)
