"""Decomposition of wide LUTs into 6-input physical LUTs.

Xilinx devices provide 6-input LUTs plus dedicated F7/F8 multiplexers.  A
7-input function therefore occupies two 6-input LUTs (plus a free F7 mux) and
an 8-input function occupies four (plus free F7/F8 muxes) — which is why the
paper's P=8 designs for MNIST/CIFAR-10 use four physical LUTs per logical LUT
and run at a lower clock.  This module provides both the closed-form count and
an actual functional Shannon decomposition that can be simulated and verified.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.lut import LUT
from repro.core.netlist import LUTNetlist


def luts6_required(n_inputs: int, max_inputs: int = 6) -> int:
    """Number of ``max_inputs``-input physical LUTs for one ``n_inputs`` LUT.

    Dedicated mux resources (F7/F8) are treated as free, matching the Xilinx
    counting the paper uses ("each 8-input LUT requires four 6-input LUTs").
    """
    if n_inputs <= 0:
        raise ValueError("n_inputs must be positive")
    if max_inputs <= 1:
        raise ValueError("max_inputs must be at least 2")
    if n_inputs <= max_inputs:
        return 1
    return 2 ** (n_inputs - max_inputs)


def decompose_lut(lut: LUT, max_inputs: int = 6) -> Tuple[List[LUT], List[dict]]:
    """Shannon-decompose ``lut`` into cofactor LUTs plus mux selections.

    Returns ``(cofactor_luts, muxes)`` where each cofactor LUT has at most
    ``max_inputs`` inputs and each mux record describes how two signals are
    selected by one of the removed (most significant) inputs.  The original
    function equals the final mux output; :func:`decompose_netlist` uses this
    to build an equivalent 6-input netlist that can be simulated.
    """
    if max_inputs < 2:
        raise ValueError("max_inputs must be at least 2")
    if lut.n_inputs <= max_inputs:
        return [lut], []

    # Split on the most significant input: table = [f0 | f1] halves.
    half = lut.table.size // 2
    msb_index = int(lut.input_indices[0])
    rest_indices = lut.input_indices[1:]
    f0 = LUT(input_indices=rest_indices, table=lut.table[:half], name=f"{lut.name}_c0")
    f1 = LUT(input_indices=rest_indices, table=lut.table[half:], name=f"{lut.name}_c1")
    luts0, muxes0 = decompose_lut(f0, max_inputs)
    luts1, muxes1 = decompose_lut(f1, max_inputs)
    mux = {
        "select_input": msb_index,
        "when_zero": f0.name if not muxes0 else muxes0[-1]["name"],
        "when_one": f1.name if not muxes1 else muxes1[-1]["name"],
        "name": f"{lut.name}_mux",
    }
    return luts0 + luts1, muxes0 + muxes1 + [mux]


def decompose_netlist(netlist: LUTNetlist, max_inputs: int = 6) -> LUTNetlist:
    """Rebuild ``netlist`` so no node exceeds ``max_inputs`` inputs.

    Wide nodes are Shannon-decomposed; the resulting mux nodes are represented
    as 3-input LUTs (select, a, b) with kind ``"mux"`` so that resource models
    can choose whether to count them (generic FPGA) or not (Xilinx dedicated
    F7/F8 muxes).

    This is a thin wrapper over the engine compiler's
    :class:`~repro.engine.passes.DecomposePass`, so hardware codegen and the
    bit-packed engine share a single decomposition implementation (naming,
    node kinds and metadata are identical between the two).
    """
    from repro.engine.ir import IRGraph
    from repro.engine.passes import DecomposePass

    graph = DecomposePass(max_inputs=max_inputs).run(IRGraph.from_netlist(netlist))
    return graph.to_netlist()
