"""Resource (LUT count) modelling and synthesizer-style pruning — Table 7.

Two effects determine the physical LUT count of a PoET-BiN design:

* **decomposition**: logical LUTs wider than the device's 6 inputs are split
  into several physical LUTs (``P = 8`` costs four 6-input LUTs each);
* **pruning**: MAT inputs whose AdaBoost weight is too small to ever flip the
  thresholded decision are dead logic; the synthesizer removes them together
  with the sub-tree that feeds them (the paper observes ~36% of the CIFAR-10
  LUTs removed this way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

import numpy as np

from repro.core.mat import MATModule
from repro.core.netlist import LUTNetlist
from repro.hardware.lut_decompose import luts6_required


@dataclass
class ResourceReport:
    """LUT resource summary of one netlist / design."""

    logical_luts: int
    physical_luts: int
    luts_by_kind: Dict[str, int]
    pruned_luts: int
    output_layer_luts: int

    @property
    def total_physical_luts(self) -> int:
        """Physical LUTs including the quantised output layer."""
        return self.physical_luts + self.output_layer_luts

    @property
    def pruned_fraction(self) -> float:
        """Fraction of logical LUTs removed by pruning."""
        before = self.logical_luts + self.pruned_luts
        return self.pruned_luts / before if before else 0.0


def output_layer_luts(n_classes: int, n_bits: int) -> int:
    """LUTs of the sparse quantised output layer: ``q`` per output neuron."""
    if n_classes <= 0 or n_bits <= 0:
        raise ValueError("n_classes and n_bits must be positive")
    return n_classes * n_bits


def prune_netlist(netlist: LUTNetlist, tolerance: float = 1e-12) -> LUTNetlist:
    """Remove MAT inputs that cannot affect the output, then dead logic.

    A MAT node whose metadata carries its AdaBoost weights is re-examined: any
    input whose weight never changes the thresholded decision is disconnected
    (the MAT LUT is rebuilt over the surviving inputs).  Nodes whose output is
    no longer read by anything — recursively — are dropped, reproducing what
    the Xilinx synthesizer does to low-weight decision trees (§4.3).
    """
    # First pass: rebuild MAT nodes over their effective inputs only.
    rebuilt: Dict[str, tuple] = {}
    for node in netlist.nodes:
        if node.kind == "mat" and "weights" in node.metadata:
            weights = np.asarray(node.metadata["weights"], dtype=np.float64)
            threshold = float(node.metadata.get("threshold", 0.0))
            mat = MATModule(weights=weights, threshold=threshold)
            keep = mat.effective_inputs(tolerance=tolerance)
            if len(keep) == 0:
                # constant output: keep a single input so the node stays a LUT
                keep = np.array([int(np.argmax(np.abs(weights)))])
            if len(keep) < node.n_inputs:
                sub_mat = MATModule(weights=weights[keep], threshold=threshold)
                sub_lut = sub_mat.to_lut()
                signals = [node.input_signals[i] for i in keep]
                rebuilt[node.name] = (signals, sub_lut.table, weights[keep])
            else:
                rebuilt[node.name] = (
                    list(node.input_signals),
                    node.table,
                    weights,
                )
        else:
            rebuilt[node.name] = (list(node.input_signals), node.table, None)

    # Second pass: keep only nodes reachable from the declared outputs.
    reachable: Set[str] = set()
    stack = [sig for sig in netlist.output_signals if not netlist.is_primary_input(sig)]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        signals, _, _ = rebuilt[name]
        stack.extend(sig for sig in signals if not netlist.is_primary_input(sig))

    pruned = LUTNetlist(n_primary_inputs=netlist.n_primary_inputs)
    for node in netlist.nodes:
        if node.name not in reachable and netlist.output_signals:
            continue
        signals, table, weights = rebuilt[node.name]
        metadata = dict(node.metadata)
        if weights is not None:
            metadata["weights"] = weights
        pruned.add_node(node.name, node.kind, signals, table, metadata)
    for sig in netlist.output_signals:
        pruned.mark_output(sig)
    return pruned


def resource_report(
    netlist: LUTNetlist,
    physical_lut_inputs: int = 6,
    prune: bool = True,
    n_classes: Optional[int] = None,
    output_bits: int = 8,
    prune_tolerance: float = 1e-12,
) -> ResourceReport:
    """Full Table 7-style resource report for a netlist.

    Parameters
    ----------
    netlist:
        The RINC netlist (typically ``PoETBiNClassifier.to_netlist()``).
    physical_lut_inputs:
        Input width of the device's physical LUTs (6 for the paper's target).
    prune:
        Whether to apply synthesizer-style pruning first.
    n_classes, output_bits:
        When given, the quantised output layer (``q`` LUTs per class) is added
        to the report.
    """
    original_count = netlist.n_luts
    work = prune_netlist(netlist, tolerance=prune_tolerance) if prune else netlist
    logical = work.n_luts
    physical = sum(luts6_required(node.n_inputs, physical_lut_inputs) for node in work.nodes)
    out_luts = output_layer_luts(n_classes, output_bits) if n_classes else 0
    return ResourceReport(
        logical_luts=logical,
        physical_luts=physical,
        luts_by_kind=work.count_by_kind(),
        pruned_luts=original_count - logical,
        output_layer_luts=out_luts,
    )
