"""Power models: Table 4 operation costs, Table 5 operation counts, and the
bottom-up power estimates for fully connected, binary-quantised and PoET-BiN
classifiers.

The paper's estimation procedure (§4.2) is:

* measure the power of a single multiply and a single add on the target FPGA
  (Table 4), keep only the *logic + signal* dynamic components;
* count the multiply/accumulate operations of the classifier portion
  (Table 5);
* classifier energy = sum(ops x per-op compute power) x clock period.

For binary (1-bit) networks the unit is a whole binary neuron (XNOR + popcount
+ compare) rather than a MAC, and for PoET-BiN the measured total power of the
LUT design is multiplied by the clock period.  This module reproduces each of
those estimators; the PoET-BiN FPGA measurement is replaced by an analytical
per-LUT switching model calibrated against the paper's own reported numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass(frozen=True)
class OperationPower:
    """Power breakdown of one arithmetic operation (Watts), as in Table 4."""

    clock: float
    logic: float
    signal: float
    io: float
    static: float

    @property
    def total(self) -> float:
        """Total power as the vendor tool reports it."""
        return self.clock + self.logic + self.signal + self.io + self.static

    @property
    def compute(self) -> float:
        """Logic + signal power — the only part attributable to the computation."""
        return self.logic + self.signal


#: Table 4 of the paper: per-operation power on a Spartan-6 at 62.5 MHz.
SPARTAN6_OPERATIONS: Dict[str, OperationPower] = {
    "mult16": OperationPower(clock=0.001, logic=0.001, signal=0.000, io=0.020, static=0.036),
    "add16": OperationPower(clock=0.001, logic=0.000, signal=0.001, io=0.024, static=0.036),
    "mult32": OperationPower(clock=0.002, logic=0.001, signal=0.001, io=0.035, static=0.037),
    "add32": OperationPower(clock=0.001, logic=0.000, signal=0.002, io=0.048, static=0.037),
    "mult_float": OperationPower(clock=0.005, logic=0.006, signal=0.005, io=0.046, static=0.037),
    "add_float": OperationPower(clock=0.004, logic=0.003, signal=0.005, io=0.034, static=0.037),
}

#: Clock period used for all non-PoET-BiN estimates (62.5 MHz, §4.2).
DEFAULT_CLOCK_PERIOD_S = 16e-9


@dataclass(frozen=True)
class OperationCounts:
    """Multiply / add counts of a fully connected classifier (Table 5)."""

    multiplications: int
    additions: int

    @property
    def total(self) -> int:
        return self.multiplications + self.additions


def count_classifier_operations(layer_sizes: Sequence[int]) -> OperationCounts:
    """MAC counts of the classifier portion given its layer widths.

    ``layer_sizes`` lists the widths from the binary feature vector to the
    output layer, e.g. ``[512, 512, 10]`` for the MNIST M1 architecture.  Each
    fully connected layer of ``n_in -> n_out`` contributes ``n_in * n_out``
    multiplications and the same number of additions (multiply-accumulate),
    which is the counting used for Table 5.
    """
    sizes = list(layer_sizes)
    if len(sizes) < 2:
        raise ValueError("layer_sizes must contain at least input and output widths")
    if any(s <= 0 for s in sizes):
        raise ValueError("layer widths must be positive")
    macs = sum(int(a) * int(b) for a, b in zip(sizes[:-1], sizes[1:]))
    return OperationCounts(multiplications=macs, additions=macs)


def classifier_energy_per_inference(
    counts: OperationCounts,
    precision: str,
    clock_period_s: float = DEFAULT_CLOCK_PERIOD_S,
    operations: Dict[str, OperationPower] = SPARTAN6_OPERATIONS,
) -> float:
    """Energy (J) of one inference of an arithmetic classifier.

    ``precision`` selects the Table 4 rows: ``"float"``, ``"16"`` or ``"32"``.
    """
    key = {"float": "float", "16": "16", "32": "32"}.get(str(precision))
    if key is None:
        raise ValueError("precision must be 'float', '16' or '32'")
    mult = operations["mult_float" if key == "float" else f"mult{key}"]
    add = operations["add_float" if key == "float" else f"add{key}"]
    energy = (
        counts.multiplications * mult.compute + counts.additions * add.compute
    ) * clock_period_s
    return float(energy)


@dataclass
class BinaryNeuronPowerModel:
    """Power of a bank of BinaryNet-style binary neurons (§4.2).

    The paper measures 26 mW of logic+signal power for one 512-input binary
    neuron (XNOR array, adder tree, comparator) after subtracting the shift
    registers.  Power is assumed proportional to the fan-in, which matches the
    linear growth of the XNOR array and adder tree.
    """

    reference_power_w: float = 0.026
    reference_fan_in: int = 512

    def neuron_power(self, fan_in: int) -> float:
        """Logic+signal power (W) of one binary neuron with ``fan_in`` inputs."""
        if fan_in <= 0:
            raise ValueError("fan_in must be positive")
        return self.reference_power_w * fan_in / self.reference_fan_in

    def classifier_power(self, layer_sizes: Sequence[int]) -> float:
        """Total power of a binary classifier with the given layer widths."""
        sizes = list(layer_sizes)
        if len(sizes) < 2:
            raise ValueError("layer_sizes must contain at least input and output widths")
        total = 0.0
        for fan_in, n_neurons in zip(sizes[:-1], sizes[1:]):
            total += n_neurons * self.neuron_power(fan_in)
        return total

    def classifier_energy_per_inference(
        self, layer_sizes: Sequence[int], clock_period_s: float = DEFAULT_CLOCK_PERIOD_S
    ) -> float:
        """Energy (J) of one inference of the binary classifier."""
        return self.classifier_power(layer_sizes) * clock_period_s


@dataclass
class PoETBiNPowerModel:
    """Analytical stand-in for the FPGA power measurement of Table 3.

    Dynamic power is modelled as a per-LUT switching energy times the number
    of physical 6-input LUTs times the clock frequency, plus a small clock
    tree overhead; static power is the device baseline plus a per-LUT leakage
    term.  The default coefficients are calibrated so that the three designs
    of the paper (11899 / 9650 / 2660 LUTs at 62.5 / 62.5 / 100 MHz) land in
    the right regime — absolute watts are approximate, but the resulting
    energies keep the orders of magnitude of Table 6.
    """

    switching_energy_per_lut_j: float = 6.0e-13
    clock_tree_power_w: float = 0.02
    static_base_w: float = 0.038
    static_per_lut_w: float = 5.0e-7

    def dynamic_power(self, n_luts: int, clock_hz: float) -> float:
        """Dynamic (logic + signal + clock) power in Watts."""
        if n_luts <= 0:
            raise ValueError("n_luts must be positive")
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        return self.switching_energy_per_lut_j * n_luts * clock_hz + self.clock_tree_power_w

    def static_power(self, n_luts: int) -> float:
        """Static (leakage) power in Watts."""
        if n_luts <= 0:
            raise ValueError("n_luts must be positive")
        return self.static_base_w + self.static_per_lut_w * n_luts

    def total_power(self, n_luts: int, clock_hz: float) -> float:
        return self.dynamic_power(n_luts, clock_hz) + self.static_power(n_luts)

    def energy_per_inference(self, n_luts: int, clock_hz: float) -> float:
        """Single-cycle inference: energy = total power x clock period."""
        return self.total_power(n_luts, clock_hz) / clock_hz

    def power_report(self, n_luts: int, clock_hz: float) -> Dict[str, float]:
        """Table 3-style breakdown for one design."""
        dynamic = self.dynamic_power(n_luts, clock_hz)
        static = self.static_power(n_luts)
        return {
            "dynamic_w": dynamic,
            "static_w": static,
            "total_w": dynamic + static,
            "clock_hz": float(clock_hz),
            "n_luts": int(n_luts),
        }
