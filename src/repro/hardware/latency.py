"""Critical-path latency model — the latency column of Table 7.

PoET-BiN inference is a single combinational pass: the critical path is a
chain of physical LUTs (tree LUT, then one MAT LUT per hierarchy level, then
the output-layer LUT), each contributing a LUT propagation delay plus a net
routing delay.  Designs with ``P`` larger than the physical LUT width pay an
extra mux level per logical LUT, which is why the paper's P=8 designs (MNIST,
CIFAR-10) are slower than the P=6 SVHN design and run at 62.5 MHz instead of
100 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.netlist import LUTNetlist
from repro.hardware.lut_decompose import decompose_netlist


@dataclass
class LatencyModel:
    """Per-stage delay coefficients (seconds), roughly Spartan-6 class.

    Attributes
    ----------
    lut_delay_s:
        Propagation delay through one physical LUT.
    net_delay_s:
        Average routing delay between consecutive LUT stages.
    io_delay_s:
        Fixed input/output and clock-to-out overhead.
    """

    lut_delay_s: float = 0.6e-9
    net_delay_s: float = 0.8e-9
    io_delay_s: float = 1.0e-9

    def path_latency(self, n_stages: int) -> float:
        """Latency (s) of a combinational path with ``n_stages`` physical LUTs."""
        if n_stages < 0:
            raise ValueError("n_stages must be non-negative")
        if n_stages == 0:
            return self.io_delay_s
        return (
            self.io_delay_s
            + n_stages * self.lut_delay_s
            + (n_stages - 1) * self.net_delay_s
        )

    def netlist_latency(
        self,
        netlist: LUTNetlist,
        physical_lut_inputs: int = 6,
        include_output_layer: bool = True,
    ) -> float:
        """Critical-path latency of a netlist after decomposition to 6-input LUTs.

        ``include_output_layer`` adds one more LUT stage for the quantised
        sparse output layer that follows the RINC modules.
        """
        physical = decompose_netlist(netlist, max_inputs=physical_lut_inputs)
        depth = physical.logic_depth()
        if include_output_layer:
            depth += 1
        return self.path_latency(depth)

    def max_clock_hz(self, latency_s: float) -> float:
        """Highest single-cycle clock frequency for a given critical path."""
        if latency_s <= 0:
            raise ValueError("latency_s must be positive")
        return 1.0 / latency_s

    def supported_clock_hz(self, latency_s: float, candidates=(100e6, 62.5e6, 50e6, 25e6)) -> float:
        """Largest of the candidate clock frequencies the path can meet.

        The paper uses 100 MHz for the P=6 design and 62.5 MHz for the P=8
        designs; this helper picks the same way from a candidate list.
        """
        max_hz = self.max_clock_hz(latency_s)
        feasible = [hz for hz in candidates if hz <= max_hz]
        if not feasible:
            return float(min(candidates))
        return float(max(feasible))
