"""Verilog code generation from trained LUT netlists.

A second HDL backend alongside :mod:`repro.hardware.vhdl`, for flows that
prefer Verilog.  Both backends consume the same netlist and embed the same
truth tables, so either output realises the identical boolean function.
"""

from repro.hardware.verilog.codegen import generate_verilog
from repro.hardware.verilog.testbench import generate_verilog_testbench

__all__ = ["generate_verilog", "generate_verilog_testbench"]
