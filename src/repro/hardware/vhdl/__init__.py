"""VHDL code generation from trained LUT netlists."""

from repro.hardware.vhdl.codegen import generate_vhdl
from repro.hardware.vhdl.testbench import generate_testbench

__all__ = ["generate_testbench", "generate_vhdl"]
