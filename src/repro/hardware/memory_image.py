"""Memory-image export of a LUT netlist.

§2.1.1 of the paper notes that the RINC-0 tables are "not limited to LUTs
alone — the approach can also be implemented in memory blocks", i.e. the
pre-computed truth tables can be stored in block RAM / ROM with the selected
feature bits forming the address.  This module emits that representation:

* a per-node memory image (one word per address, LSB = LUT output), and
* standard ``$readmemh`` / ``$readmemb``-style initialisation file contents,

so the same trained classifier can target LUT fabric (via the VHDL generator)
or embedded memory blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.netlist import LUTNetlist, NetlistNode


@dataclass(frozen=True)
class MemoryImage:
    """The memory view of one LUT node."""

    name: str
    address_bits: int
    words: np.ndarray  # one 0/1 word per address

    @property
    def depth(self) -> int:
        return int(self.words.size)

    def as_binary_lines(self) -> List[str]:
        """``$readmemb`` file contents: one bit per line, address 0 first."""
        return [str(int(bit)) for bit in self.words]

    def as_hex_lines(self, word_bits: int = 1) -> List[str]:
        """``$readmemh`` file contents with ``word_bits`` packed per word."""
        if word_bits < 1:
            raise ValueError("word_bits must be at least 1")
        width = (word_bits + 3) // 4
        return [f"{int(bit):0{width}x}" for bit in self.words]


def node_memory_image(node: NetlistNode) -> MemoryImage:
    """Memory image of one netlist node."""
    return MemoryImage(name=node.name, address_bits=node.n_inputs, words=node.table.copy())


def netlist_memory_images(netlist: LUTNetlist) -> Dict[str, MemoryImage]:
    """Memory images of every node, keyed by node name."""
    return {node.name: node_memory_image(node) for node in netlist.nodes}


def total_memory_bits(netlist: LUTNetlist) -> int:
    """Total ROM bits needed to hold every truth table of the netlist.

    This is the quantity the paper's §2.1.1 sizing argument refers to (a
    30-input table would already need a gigabit); for the LUT-sized nodes the
    RINC construction produces it stays tiny.
    """
    return int(sum(node.table.size for node in netlist.nodes))


def write_memory_files(netlist: LUTNetlist, directory) -> List[str]:
    """Write one ``.mem`` file per node into ``directory``; returns the paths."""
    from pathlib import Path

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, image in netlist_memory_images(netlist).items():
        path = directory / f"{name}.mem"
        path.write_text("\n".join(image.as_binary_lines()) + "\n")
        paths.append(str(path))
    return paths
