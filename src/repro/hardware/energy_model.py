"""Per-inference energy comparison — Table 6 of the paper.

For each dataset architecture the paper compares the classifier-portion energy
of: a full-precision (float) network, 32-bit and 16-bit quantised networks, a
1-bit (BinaryNet-style) network, and PoET-BiN.  All non-PoET-BiN estimates are
operation counts x per-operation compute power x clock period; PoET-BiN is the
design's total power x clock period (single-cycle inference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.hardware.power_model import (
    DEFAULT_CLOCK_PERIOD_S,
    BinaryNeuronPowerModel,
    PoETBiNPowerModel,
    classifier_energy_per_inference,
    count_classifier_operations,
)


@dataclass
class EnergyBreakdown:
    """Energy per inference (J) of each technique, one Table 6 column."""

    vanilla_float: float
    quant_1bit: float
    quant_16bit: float
    quant_32bit: float
    poetbin: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "vanilla": self.vanilla_float,
            "1-bit quant": self.quant_1bit,
            "16-bit quant": self.quant_16bit,
            "32-bit quant": self.quant_32bit,
            "poet-bin": self.poetbin,
        }

    def reduction_vs(self, technique: str) -> float:
        """Energy reduction factor of PoET-BiN relative to ``technique``."""
        value = self.as_dict()[technique]
        if self.poetbin <= 0:
            raise ValueError("PoET-BiN energy must be positive")
        return value / self.poetbin


@dataclass
class EnergyModel:
    """Combines the arithmetic, binary-neuron and LUT power models."""

    binary_model: BinaryNeuronPowerModel = None
    poetbin_model: PoETBiNPowerModel = None
    clock_period_s: float = DEFAULT_CLOCK_PERIOD_S

    def __post_init__(self) -> None:
        if self.binary_model is None:
            self.binary_model = BinaryNeuronPowerModel()
        if self.poetbin_model is None:
            self.poetbin_model = PoETBiNPowerModel()
        if self.clock_period_s <= 0:
            raise ValueError("clock_period_s must be positive")

    def classifier_energies(self, layer_sizes: Sequence[int]) -> Dict[str, float]:
        """Energies of the arithmetic and binary variants for one architecture."""
        counts = count_classifier_operations(layer_sizes)
        return {
            "vanilla": classifier_energy_per_inference(
                counts, "float", self.clock_period_s
            ),
            "16-bit quant": classifier_energy_per_inference(
                counts, "16", self.clock_period_s
            ),
            "32-bit quant": classifier_energy_per_inference(
                counts, "32", self.clock_period_s
            ),
            "1-bit quant": self.binary_model.classifier_energy_per_inference(
                layer_sizes, self.clock_period_s
            ),
        }

    def breakdown(
        self,
        layer_sizes: Sequence[int],
        poetbin_luts: int,
        poetbin_clock_hz: float,
    ) -> EnergyBreakdown:
        """Full Table 6 column for one dataset architecture."""
        energies = self.classifier_energies(layer_sizes)
        poetbin_energy = self.poetbin_model.energy_per_inference(
            poetbin_luts, poetbin_clock_hz
        )
        return EnergyBreakdown(
            vanilla_float=energies["vanilla"],
            quant_1bit=energies["1-bit quant"],
            quant_16bit=energies["16-bit quant"],
            quant_32bit=energies["32-bit quant"],
            poetbin=poetbin_energy,
        )
