"""FPGA hardware models and code generation.

The original paper synthesises the generated VHDL for a Xilinx Spartan-6 and
reads power/latency/LUT counts from the vendor tools.  Offline, this package
provides the analytical equivalents:

* :mod:`repro.hardware.lut_decompose` — Shannon decomposition of wide LUTs
  into 6-input LUTs (what the synthesizer does with ``P = 8`` designs).
* :mod:`repro.hardware.resources` — LUT counting and synthesizer-style pruning
  (Table 7).
* :mod:`repro.hardware.power_model` / :mod:`repro.hardware.energy_model` — the
  per-operation power library of Table 4, the operation counts of Table 5, and
  the bottom-up energy estimation of Tables 3 and 6.
* :mod:`repro.hardware.latency` — critical-path latency estimates (Table 7).
* :mod:`repro.hardware.vhdl` — VHDL and testbench generation from a trained
  LUT netlist.
"""

from repro.hardware.energy_model import EnergyBreakdown, EnergyModel
from repro.hardware.latency import LatencyModel
from repro.hardware.lut_decompose import decompose_lut, decompose_netlist, luts6_required
from repro.hardware.memory_image import (
    MemoryImage,
    netlist_memory_images,
    total_memory_bits,
    write_memory_files,
)
from repro.hardware.power_model import (
    SPARTAN6_OPERATIONS,
    BinaryNeuronPowerModel,
    OperationCounts,
    OperationPower,
    PoETBiNPowerModel,
    count_classifier_operations,
)
from repro.hardware.resources import ResourceReport, prune_netlist, resource_report
from repro.hardware.verilog import generate_verilog, generate_verilog_testbench
from repro.hardware.vhdl import generate_testbench, generate_vhdl

__all__ = [
    "BinaryNeuronPowerModel",
    "EnergyBreakdown",
    "EnergyModel",
    "LatencyModel",
    "MemoryImage",
    "OperationCounts",
    "OperationPower",
    "PoETBiNPowerModel",
    "ResourceReport",
    "SPARTAN6_OPERATIONS",
    "netlist_memory_images",
    "total_memory_bits",
    "write_memory_files",
    "count_classifier_operations",
    "decompose_lut",
    "decompose_netlist",
    "generate_testbench",
    "generate_verilog",
    "generate_verilog_testbench",
    "generate_vhdl",
    "luts6_required",
    "prune_netlist",
    "resource_report",
]
