"""Small helpers for rendering experiment results as text tables.

The experiment harness regenerates each table of the paper; these helpers
produce both a plain aligned-text rendering (for terminal output) and a
GitHub-flavoured markdown rendering (for EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a padded plain-text table."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a GitHub-flavoured markdown table."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
