"""Classification metrics used by experiments and tests."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.utils.validation import check_consistent_lengths


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of predictions equal to the reference labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_consistent_lengths(y_true=y_true, y_pred=y_pred)
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float(np.mean(y_true == y_pred))


def error_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Complement of :func:`accuracy`."""
    return 1.0 - accuracy(y_true, y_pred)


def binary_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Accuracy for 0/1 targets; validates that inputs really are binary."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    for name, arr in (("y_true", y_true), ("y_pred", y_pred)):
        uniq = np.unique(arr)
        if not np.all(np.isin(uniq, (0, 1))):
            raise ValueError(f"{name} must only contain 0/1 values, got {uniq}")
    return accuracy(y_true, y_pred)


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class ``i`` predicted ``j``."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    check_consistent_lengths(y_true=y_true, y_pred=y_pred)
    if y_true.size and (y_true.min() < 0 or y_pred.min() < 0):
        raise ValueError("labels must be non-negative integers")
    if n_classes is None:
        n_classes = int(max(y_true.max(initial=-1), y_pred.max(initial=-1))) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def classification_report(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> Dict[str, np.ndarray | float]:
    """Per-class precision/recall/F1 plus overall accuracy.

    Returns a dictionary with keys ``precision``, ``recall``, ``f1`` (arrays of
    length ``n_classes``) and ``accuracy`` (float).  Classes with no support or
    no predictions get a score of 0 rather than NaN.
    """
    cm = confusion_matrix(y_true, y_pred, n_classes=n_classes)
    true_pos = np.diag(cm).astype(np.float64)
    pred_counts = cm.sum(axis=0).astype(np.float64)
    true_counts = cm.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(pred_counts > 0, true_pos / pred_counts, 0.0)
        recall = np.where(true_counts > 0, true_pos / true_counts, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "accuracy": accuracy(y_true, y_pred),
    }
