"""Bit-level helpers used throughout the LUT machinery.

A Look-Up Table over ``P`` binary inputs is addressed by the integer formed
from those input bits.  The functions here convert between bit matrices and
LUT addresses, enumerate all addresses, and pack/unpack bit vectors.  The most
significant bit corresponds to the *first* input (index 0), matching how the
level-wise decision tree assigns features to levels: the feature chosen at
level 0 is the top of the tree and therefore the most significant address bit.
"""

from __future__ import annotations

import numpy as np


def binary_to_index(bits: np.ndarray) -> np.ndarray:
    """Convert rows of binary values to LUT addresses.

    Parameters
    ----------
    bits:
        Array of shape ``(n, P)`` (or ``(P,)``) containing 0/1 values.  The
        first column is the most significant bit.

    Returns
    -------
    numpy.ndarray
        Integer addresses of shape ``(n,)`` (or a scalar array for 1-D input).
    """
    arr = np.asarray(bits)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
        squeeze = True
    else:
        squeeze = False
    if arr.ndim != 2:
        raise ValueError(f"bits must be 1-D or 2-D, got shape {arr.shape}")
    n_bits = arr.shape[1]
    if n_bits == 0:
        result = np.zeros(arr.shape[0], dtype=np.int64)
    else:
        weights = (1 << np.arange(n_bits - 1, -1, -1)).astype(np.int64)
        result = arr.astype(np.int64) @ weights
    return result[0] if squeeze else result


def index_to_binary(index: np.ndarray, n_bits: int) -> np.ndarray:
    """Convert LUT addresses back to binary rows of width ``n_bits``."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    idx = np.atleast_1d(np.asarray(index, dtype=np.int64))
    if np.any(idx < 0) or (n_bits < 63 and np.any(idx >= (1 << n_bits))):
        raise ValueError("index out of range for the requested bit width")
    shifts = np.arange(n_bits - 1, -1, -1)
    return ((idx[:, np.newaxis] >> shifts) & 1).astype(np.uint8)


def enumerate_binary_inputs(n_bits: int) -> np.ndarray:
    """Return all ``2**n_bits`` binary input combinations, in address order."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    if n_bits > 24:
        raise ValueError(
            f"refusing to enumerate 2**{n_bits} combinations; "
            "LUTs wider than 24 inputs are not representable explicitly"
        )
    return index_to_binary(np.arange(1 << n_bits), n_bits)


def popcount(values: np.ndarray) -> np.ndarray:
    """Vectorised population count (number of set bits) of integer values."""
    vals = np.asarray(values, dtype=np.uint64)
    counts = np.zeros(vals.shape, dtype=np.int64)
    work = vals.copy()
    while np.any(work):
        counts += (work & 1).astype(np.int64)
        work >>= np.uint64(1)
    return counts


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a binary matrix ``(n, F)`` into bytes along the feature axis."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError(f"bits must be 2-D, got shape {arr.shape}")
    return np.packbits(arr, axis=1)


def unpack_bits(packed: np.ndarray, n_features: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`, truncated to ``n_features`` columns."""
    arr = np.asarray(packed, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError(f"packed must be 2-D, got shape {arr.shape}")
    unpacked = np.unpackbits(arr, axis=1)
    if unpacked.shape[1] < n_features:
        raise ValueError(
            f"packed data holds {unpacked.shape[1]} bits per row, "
            f"cannot recover {n_features} features"
        )
    return unpacked[:, :n_features]
