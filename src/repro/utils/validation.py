"""Input validation helpers shared across the library."""

from __future__ import annotations

import numpy as np


def check_consistent_lengths(**named_arrays: np.ndarray) -> None:
    """Raise ``ValueError`` when the named arrays differ in first-axis length."""
    lengths = {name: np.asarray(arr).shape[0] for name, arr in named_arrays.items()}
    if len(set(lengths.values())) > 1:
        details = ", ".join(f"{name}={length}" for name, length in lengths.items())
        raise ValueError(f"inconsistent first-axis lengths: {details}")


def check_binary_matrix(X: np.ndarray, name: str = "X") -> np.ndarray:
    """Validate and return a 2-D 0/1 matrix as ``uint8``."""
    arr = np.asarray(X)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError(f"{name} must contain only 0/1 values")
    return arr.astype(np.uint8, copy=False)


def check_binary_vector(y: np.ndarray, name: str = "y") -> np.ndarray:
    """Validate and return a 1-D 0/1 vector as ``uint8``."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError(f"{name} must contain only 0/1 values")
    return arr.astype(np.uint8, copy=False)


def check_labels(y: np.ndarray, n_classes: int, name: str = "y") -> np.ndarray:
    """Validate integer class labels in ``[0, n_classes)``."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        return arr.astype(np.int64)
    if not np.issubdtype(arr.dtype, np.integer):
        rounded = np.round(arr)
        if not np.allclose(arr, rounded):
            raise ValueError(f"{name} must contain integer class labels")
        arr = rounded
    arr = arr.astype(np.int64)
    if arr.min() < 0 or arr.max() >= n_classes:
        raise ValueError(
            f"{name} labels must lie in [0, {n_classes}), "
            f"got range [{arr.min()}, {arr.max()}]"
        )
    return arr


def check_probability(value: float, name: str = "value") -> float:
    """Validate a scalar probability in ``[0, 1]``."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value
