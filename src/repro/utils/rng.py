"""Random-number-generator helpers.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an existing :class:`numpy.random.Generator`.  The
helpers here normalise that argument so components never share hidden global
state and experiments stay reproducible.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic generator, or
        an existing :class:`numpy.random.Generator` which is returned as-is.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int or numpy Generator, got {type(seed)!r}")


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``count`` independent generators.

    Used when a composite model (e.g. a hierarchical RINC classifier) trains
    several stochastic sub-components and each must be independently seeded.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = as_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
