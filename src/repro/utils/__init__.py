"""Shared utilities: RNG handling, bit manipulation, metrics, validation."""

from repro.utils.bitops import (
    binary_to_index,
    enumerate_binary_inputs,
    index_to_binary,
    pack_bits,
    popcount,
    unpack_bits,
)
from repro.utils.metrics import (
    accuracy,
    binary_accuracy,
    classification_report,
    confusion_matrix,
    error_rate,
)
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.tables import format_table, render_markdown_table
from repro.utils.validation import (
    check_binary_matrix,
    check_binary_vector,
    check_consistent_lengths,
    check_labels,
    check_probability,
)

__all__ = [
    "accuracy",
    "as_rng",
    "binary_accuracy",
    "binary_to_index",
    "check_binary_matrix",
    "check_binary_vector",
    "check_consistent_lengths",
    "check_labels",
    "check_probability",
    "classification_report",
    "confusion_matrix",
    "enumerate_binary_inputs",
    "error_rate",
    "format_table",
    "index_to_binary",
    "pack_bits",
    "popcount",
    "render_markdown_table",
    "spawn_rngs",
    "unpack_bits",
]
