"""The asyncio inference server: sockets in, coalesced packed batches out.

:class:`InferenceServer` ties the pieces together: a TCP listener speaking
the length-prefixed JSON protocol (:mod:`repro.serving.protocol`), one
shared :class:`~repro.serving.queue.BatchingQueue` that coalesces every
connection's requests into joint packed evaluations, and a
:class:`~repro.serving.stats.ServerStats` collector exposed through the
``stats`` op.  Each connection is an independent asyncio task; all of them
feed the same queue, which is the whole point — concurrency across sockets
becomes batch occupancy inside the engine.

The server evaluates either a *labels* function or a *scores* function
(per-class decision scores, labels derived by ``argmax``); with a scores
function, clients may request confidences at no extra engine cost.
:meth:`InferenceServer.for_model` picks the best entry point a model offers
— for :class:`~repro.core.poetbin.PoETBiNClassifier` that is
``decision_scores_batch``, the path that serves straight from
``decision_scores_packed`` without unpacking between the RINC bank and the
read-out, sharded across a persistent
:class:`~repro.engine.parallel.ShardedEngine` worker pool once batches
grow past its words-per-worker threshold.

:class:`BackgroundServer` runs the whole thing on a dedicated event-loop
thread, which is how the tests, the benchmark and the demo drive it from
blocking code.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.serving.protocol import (
    ProtocolError,
    encode_message,
    read_message,
)
from repro.serving.queue import (
    BadRequestError,
    BatchingQueue,
    ServerOverloadedError,
    ServingError,
)
from repro.serving.stats import ServerStats

__all__ = ["BackgroundServer", "InferenceServer"]


def _error_response(error_type: str, message: str) -> Dict[str, Any]:
    return {"ok": False, "error": {"type": error_type, "message": message}}


class _CorkedWriter:
    """Per-connection response writer that coalesces same-tick writes.

    When a batch completes, every request of that batch resolves in the same
    event-loop pass — so their responses can share one ``send`` syscall
    instead of paying one each (under load, each small send costs a GIL
    round trip on top of the syscall).  ``send`` appends the encoded frame
    and schedules a single flush with ``call_soon``; the flush runs after
    all same-tick completions and writes the concatenation.  Loop-confined,
    so no lock is needed.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._frames: list = []
        self._flush_scheduled = False

    def send(self, payload: Dict[str, Any]) -> None:
        self._frames.append(encode_message(payload))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._frames or self._writer.is_closing():
            self._frames.clear()
            return
        data = b"".join(self._frames)
        self._frames.clear()
        self._writer.write(data)

    async def drain(self) -> None:
        await self._writer.drain()


class InferenceServer:
    """Serve a batch-evaluable model over TCP with request coalescing.

    Parameters
    ----------
    batch_fn:
        ``(n, F) -> (n,)`` label function.  Mutually exclusive with
        ``scores_fn``.
    scores_fn:
        ``(n, F) -> (n, n_classes)`` decision-score function; labels are
        derived by ``argmax`` so one evaluation yields both.
    host, port:
        Listen address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    max_batch, max_wait_us, max_queue:
        The coalescing and admission-control policy — see
        :class:`~repro.serving.queue.BatchingQueue`.
    stats:
        Optional shared collector; a private one is created otherwise.
    warm_up:
        Optional zero-argument callable run once at :meth:`start` (e.g.
        ``engine.warm_up`` to pre-fork the sharded pool, or a one-sample
        evaluation to populate caches) so the cost lands at startup, not in
        the first request's latency.
    backlog:
        Listen-queue depth; sized for hundreds of simultaneous connects
        (the whole point of a coalescing server is bursty many-client
        traffic, and a dropped SYN costs a full retransmit timeout).
    """

    def __init__(
        self,
        batch_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        *,
        scores_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        max_queue: int = 1024,
        stats: Optional[ServerStats] = None,
        warm_up: Optional[Callable[[], Any]] = None,
        backlog: int = 512,
    ) -> None:
        if (batch_fn is None) == (scores_fn is None):
            raise ValueError("provide exactly one of batch_fn and scores_fn")
        self._scores_mode = scores_fn is not None
        self.stats = stats if stats is not None else ServerStats()
        self._queue = BatchingQueue(
            scores_fn if self._scores_mode else batch_fn,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            max_queue=max_queue,
            stats=self.stats,
        )
        self._warm_up = warm_up
        self._backlog = backlog
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()

    @classmethod
    def for_model(cls, model: Any, *, n_workers: Optional[int] = None, **kwargs):
        """Build a server around whatever batch entry point ``model`` has.

        Preference order: ``decision_scores_batch`` (labels *and* scores
        from one packed evaluation — PoET-BiN's serving path), then
        ``predict_batch``, then the model itself as a plain callable.
        ``n_workers`` is forwarded where the entry point accepts it, so big
        coalesced batches fan out to the model's sharded engine.
        """
        if hasattr(model, "decision_scores_batch"):
            if n_workers is None:
                return cls(scores_fn=model.decision_scores_batch, **kwargs)
            return cls(
                scores_fn=lambda X: model.decision_scores_batch(
                    X, n_workers=n_workers
                ),
                **kwargs,
            )
        if hasattr(model, "predict_batch"):
            return cls(batch_fn=model.predict_batch, **kwargs)
        if callable(model):
            return cls(batch_fn=model, **kwargs)
        raise TypeError(
            f"{type(model).__name__} offers neither decision_scores_batch, "
            "predict_batch nor __call__"
        )

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> Tuple[str, int]:
        """Bind the listener (running the warm-up first); returns the address."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._warm_up is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self._warm_up
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=self._backlog
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Run until cancelled (convenience for ``asyncio.run`` scripts)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, hang up open connections, drain the queue."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # wait_closed() does not wait for in-flight connection handlers
        # (pre-3.12 asyncio); cancel them so shutdown never leaks a task
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self._queue.close()

    # ----------------------------------------------------------- connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        # Pipelined dispatch: every request on this connection is handled in
        # its own task, so a stream of requests from one client coalesces
        # into shared batches exactly like requests from many clients.  A
        # request carrying an ``"id"`` gets it echoed in the response, which
        # is how pipelining clients re-associate out-of-order completions;
        # the corked writer turns all completions of one batch into a
        # single frame-atomic send.
        corked = _CorkedWriter(writer)
        in_flight: set = set()

        async def respond(request: Dict[str, Any]) -> None:
            response = await self._dispatch(request)
            if "id" in request:
                response["id"] = request["id"]
            corked.send(response)
            await corked.drain()

        try:
            while True:
                try:
                    request = await read_message(reader)
                except ProtocolError as error:
                    corked.send(_error_response("bad_request", str(error)))
                    break
                if request is None:  # client closed cleanly
                    break
                request_task = asyncio.create_task(respond(request))
                in_flight.add(request_task)
                request_task.add_done_callback(in_flight.discard)
            if in_flight:
                await asyncio.gather(*list(in_flight))
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass  # client vanished mid-write; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down with the connection open
        finally:
            for request_task in list(in_flight):
                request_task.cancel()
            corked._flush()  # anything still corked goes out before the FIN
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover
                pass
            # deregister only once fully torn down, so stop() still awaits
            # a handler that is draining its transport
            self._connections.discard(task)

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op", "predict")
        if op == "predict":
            return await self._handle_predict(request)
        if op == "stats":
            return {"ok": True, "stats": self.stats.snapshot()}
        if op == "ping":
            return {"ok": True}
        return _error_response("bad_request", f"unknown op {op!r}")

    async def _handle_predict(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return_scores = bool(request.get("return_scores", False))
        if return_scores and not self._scores_mode:
            return _error_response(
                "bad_request", "this server has no scores path"
            )
        features = request.get("features")
        try:
            # no dtype coercion here: check_binary_matrix inside the queue
            # must see the raw values so 0.5 is rejected, not truncated to 0
            rows = np.asarray(features)
        except (TypeError, ValueError):
            return _error_response(
                "bad_request", "features must be a rectangular 0/1 matrix"
            )
        try:
            result = await self._queue.submit(rows)
        except ServingError as error:
            return _error_response(error.error_type, str(error))
        except Exception as error:  # noqa: BLE001 - model failure
            self_type = type(error).__name__
            return _error_response("internal", f"{self_type}: {error}")
        if self._scores_mode:
            labels = np.argmax(result, axis=1)
            response: Dict[str, Any] = {"ok": True, "labels": labels.tolist()}
            if return_scores:
                response["scores"] = np.asarray(result).tolist()
            return response
        return {"ok": True, "labels": np.asarray(result).tolist()}


class BackgroundServer:
    """Run an :class:`InferenceServer` on its own event-loop thread.

    Blocking code (tests, benchmarks, the demo) starts the server with::

        with BackgroundServer(InferenceServer.for_model(clf)) as handle:
            with ServingClient(*handle.address) as client:
                labels = client.predict(rows)

    The thread owns the loop: ``start`` returns once the listener is bound
    (re-raising any startup failure), ``stop`` schedules a clean shutdown —
    drain, close, loop teardown — and joins the thread.
    """

    def __init__(self, server: InferenceServer) -> None:
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.host, self.server.port

    def start(self) -> Tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        started = threading.Event()
        failure: list = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except Exception as error:  # noqa: BLE001 - surfaced in start()
                failure.append(error)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.stop())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-serving-loop", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self.address

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
