"""The asyncio inference server: sockets in, coalesced packed batches out.

:class:`InferenceServer` ties the pieces together: a TCP listener speaking
*both* wire protocols on one port — the length-prefixed JSON protocol
(:mod:`repro.serving.protocol`) and the zero-copy binary protocol
(:mod:`repro.serving.binary_protocol`), discriminated by each frame's
first byte, with binary predict requests feeding their packed words
straight into the model's queue — plus an optional plain-HTTP listener
(``http_port=``) serving ``GET /metrics`` and ``GET /healthz``
(:mod:`repro.serving.metrics_http`), a
:class:`~repro.serving.registry.ModelRegistry` mapping model names to
per-model :class:`~repro.serving.queue.BatchingQueue`\\ s (each coalescing
its model's concurrent requests into joint packed evaluations, under its
own ``max_batch``/``max_wait_us``/``max_queue`` policy), an optional
shared :class:`~repro.serving.queue.AdmissionBudget` bounding total
in-flight samples across all models, and per-model
:class:`~repro.serving.stats.ServerStats` exposed through the ``stats``
and ``stats_text`` ops.  Each connection is an independent asyncio task;
requests route to their model's queue by the protocol's ``model`` field
(absent → the default model), so concurrency across sockets becomes batch
occupancy inside each model's engine.

Multi-tenancy is a config knob, not an architecture change: a single-model
server is just a registry of one.  The constructor's ``batch_fn``/
``scores_fn`` shortcut registers that one model under the name
``"default"`` — the PR-4 API unchanged — while :meth:`register_model`
adds more, each evaluating either a *labels* function or a *scores*
function (per-class decision scores, labels derived by ``argmax``).
:meth:`InferenceServer.for_model` picks the best entry point a model
offers — for :class:`~repro.core.poetbin.PoETBiNClassifier` that is
``decision_scores_batch``, the path that serves straight from
``decision_scores_packed`` without unpacking between the RINC bank and the
read-out.  Passing ``pool=`` routes a model's sharded evaluation through a
shared :class:`~repro.engine.parallel.WorkerPool`, so every hosted model's
big batches fan out over one set of worker processes.

:class:`BackgroundServer` runs the whole thing on a dedicated event-loop
thread, which is how the tests, the benchmark and the demo drive it from
blocking code.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.serving.lifecycle import CanaryPolicy
from repro.serving.metrics_http import HttpMetricsListener
from repro.serving.queue import (
    AdmissionBudget,
    BadRequestError,
    ServerUnavailableError,
    ServingError,
)
from repro.serving.registry import ModelRegistry, RegisteredModel
from repro.serving.stats import ServerStats, render_stats_text
from repro.serving.transport import (
    BinaryRequest,
    FrameServer,
    encode_error,
    encode_reply,
    error_response as _error_response,
)

__all__ = ["BackgroundServer", "InferenceServer"]


def _forwardable(fn: Callable, candidates: Dict[str, Any]) -> Dict[str, Any]:
    """The subset of ``candidates`` that ``fn``'s signature accepts.

    An engine exposing a bare ``predict_batch(X)`` (a ``CompiledNetlist``,
    a ``ShardedEngine`` view that already *is* a pool binding) must not be
    handed sharding kwargs it never declared — the pre-PR behaviour was to
    ignore them silently, and a per-request ``TypeError`` would be a
    regression.  Unintrospectable callables forward nothing.
    """
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return {}
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    ):
        return dict(candidates)
    return {k: v for k, v in candidates.items() if k in params}


def _resolved_backend(backend: Optional[str]) -> str:
    """The backend *label* a registration advertises: ``None`` → numpy,
    ``"auto"`` → whichever engine the host toolchain actually yields.
    ``"native-mt"`` keeps its label (the attach raises downstream when the
    host cannot build, same contract as ``"native"``)."""
    from repro.engine.compiled_netlist import ENGINE_BACKENDS
    from repro.engine.native import toolchain_available

    if backend is None:
        return "numpy"
    if backend not in ENGINE_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {ENGINE_BACKENDS}"
        )
    if backend == "auto":
        return "native" if toolchain_available() else "numpy"
    return backend


def _resolved_threads(label: str, threads: Optional[int]) -> int:
    """The in-process thread count a registration advertises.

    An explicit ``threads`` wins; otherwise ``native-mt`` defaults to the
    autotuner's parallel candidate (the host core count) and every other
    backend is single-threaded.
    """
    if threads is not None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        return threads
    if label == "native-mt":
        from repro.engine.native import default_thread_count

        return default_thread_count()
    return 1


def _resolved_unroll(label: str, unroll: Optional[int]) -> int:
    """The vector lane count a registration advertises.

    An explicit ``unroll`` wins; otherwise ``native-mt`` defaults to the
    autotuner's vector candidate and every other backend is scalar.
    """
    if unroll is not None:
        if unroll < 1:
            raise ValueError("unroll must be >= 1")
        return unroll
    if label == "native-mt":
        from repro.engine.native import DEFAULT_UNROLL

        return DEFAULT_UNROLL
    return 1


def _model_entry_point(
    model: Any,
    n_workers: Optional[int],
    pool: Optional[Any],
    engine_backend: Optional[str] = None,
) -> Tuple[Optional[Callable], Optional[Callable], Optional[Callable]]:
    """``(batch_fn, scores_fn, packed_fn)`` for what ``model`` offers.

    Preference order: ``decision_scores_batch`` (labels *and* scores from
    one packed evaluation — PoET-BiN's serving path), then
    ``predict_batch``, then the model itself as a plain callable.  A model
    that additionally offers ``decision_scores_packed_batch`` (scores
    straight from pre-packed words) gets it wired as the binary protocol's
    zero-copy ``packed_fn``.  ``n_workers``/``pool``/``engine_backend``
    are forwarded where the entry point accepts them, so big coalesced
    batches fan out to the model's sharded engine — a shared ``pool``
    makes every hosted model share one set of workers, and
    ``engine_backend`` picks the evaluator (numpy vs generated C).
    """
    if n_workers is not None and pool is not None:
        raise ValueError("provide at most one of n_workers and pool")
    candidates = {}
    if n_workers is not None:
        candidates["n_workers"] = n_workers
    if pool is not None:
        candidates["pool"] = pool
    if engine_backend is not None:
        candidates["engine_backend"] = engine_backend
    if hasattr(model, "decision_scores_batch"):
        packed_fn = None
        if hasattr(model, "decision_scores_packed_batch"):
            packed_forwarded = _forwardable(
                model.decision_scores_packed_batch, candidates
            )
            packed_fn = (
                lambda words, n: model.decision_scores_packed_batch(
                    words, n, **packed_forwarded
                )
            )
        forwarded = _forwardable(model.decision_scores_batch, candidates)
        if not forwarded:
            return None, model.decision_scores_batch, packed_fn
        return (
            None,
            lambda X: model.decision_scores_batch(X, **forwarded),
            packed_fn,
        )
    if hasattr(model, "predict_batch"):
        forwarded = _forwardable(model.predict_batch, candidates)
        if not forwarded:
            return model.predict_batch, None, None
        return (lambda X: model.predict_batch(X, **forwarded)), None, None
    if callable(model):
        return model, None, None
    raise TypeError(
        f"{type(model).__name__} offers neither decision_scores_batch, "
        "predict_batch nor __call__"
    )


class InferenceServer(FrameServer):
    """Serve one or many batch-evaluable models over TCP with coalescing.

    The transport half — dual-protocol listener, pipelined per-connection
    dispatch, corked writes, and the explicit ``starting → serving →
    draining → stopped`` lifecycle with :meth:`~FrameServer.drain` — lives
    in the :class:`~repro.serving.transport.FrameServer` base; this class
    owns the *model* half: the registry, the queues, and the request
    semantics of both protocols.  While draining, new predicts are rejected
    with the typed ``unavailable`` error (control ops keep answering so the
    drain can be observed) and ``/healthz`` answers 503.

    Parameters
    ----------
    batch_fn:
        ``(n, F) -> (n,)`` label function, registered as the model named
        ``"default"``.  Mutually exclusive with ``scores_fn``; omit both to
        start an empty server and populate it with :meth:`register_model`.
    scores_fn:
        ``(n, F) -> (n, n_classes)`` decision-score function; labels are
        derived by ``argmax`` so one evaluation yields both.
    packed_fn:
        Optional ``(packed_words, n_samples) -> array`` zero-copy path for
        binary-protocol requests on the default model: the coalesced
        ``(F, n_words(n))`` uint64 bit-planes reach the model as words —
        no unpack, no re-pack.  Output semantics must match the given
        evaluation function's (scores with ``scores_fn``, labels with
        ``batch_fn``).
    host, port:
        Listen address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    http_port:
        ``None`` (default) disables the HTTP listener; any port (0 for
        ephemeral) additionally serves ``GET /metrics`` (Prometheus
        exposition of every model's stats) and ``GET /healthz`` over plain
        HTTP on the same host — no scrape sidecar needed.  Read the bound
        address back from :attr:`http_address` after :meth:`start`.
    max_batch, max_wait_us, max_queue:
        Default per-model coalescing and admission-control policy — see
        :class:`~repro.serving.queue.BatchingQueue`.  :meth:`register_model`
        can override any of them per model.
    max_total_queue:
        Optional *shared* admission bound in samples across every hosted
        model (see :class:`~repro.serving.queue.AdmissionBudget`); ``None``
        leaves only the per-model bounds.
    stats:
        Optional collector for the constructor-registered default model; a
        private one per model is created otherwise.
    warm_up:
        Optional zero-argument callable run once at :meth:`start` (e.g.
        ``pool.warm_up`` to pre-fork the shared worker pool, or a one-sample
        evaluation per model to populate caches) so the cost lands at
        startup, not in the first request's latency.
    backlog:
        Listen-queue depth; sized for hundreds of simultaneous connects
        (the whole point of a coalescing server is bursty many-client
        traffic, and a dropped SYN costs a full retransmit timeout).
    backend:
        Descriptive label for the constructor-registered default model's
        evaluation engine (``"numpy"``/``"native"``/``"native-mt"``);
        :meth:`for_model` resolves it from its ``backend=`` selection.
        Surfaced in ``list_models`` and the
        ``repro_serving_model_backend`` metric.
    threads:
        In-process thread count label for the default model (the
        ``native-mt`` engine's word-shard fan-out; 1 for everything else).
        Surfaced in ``list_models`` and the
        ``repro_serving_model_threads`` gauge.
    unroll:
        Vector lane count label for the default model (words per emitted
        statement in the ``native-mt`` engine's generated code; 1 for
        scalar backends).  Surfaced in ``list_models``.
    """

    def __init__(
        self,
        batch_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        *,
        scores_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        packed_fn: Optional[Callable[[np.ndarray, int], np.ndarray]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: Optional[int] = None,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        max_queue: int = 1024,
        max_total_queue: Optional[int] = None,
        stats: Optional[ServerStats] = None,
        warm_up: Optional[Callable[[], Any]] = None,
        backlog: int = 512,
        backend: str = "numpy",
        threads: int = 1,
        unroll: int = 1,
    ) -> None:
        if batch_fn is not None and scores_fn is not None:
            raise ValueError("provide at most one of batch_fn and scores_fn")
        budget = (
            AdmissionBudget(max_total_queue)
            if max_total_queue is not None
            else None
        )
        self._registry = ModelRegistry(
            budget=budget,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            max_queue=max_queue,
        )
        if batch_fn is not None or scores_fn is not None:
            self._registry.register(
                "default",
                batch_fn,
                scores_fn=scores_fn,
                packed_fn=packed_fn,
                stats=stats,
                backend=backend,
                threads=threads,
                unroll=unroll,
            )
        else:
            if stats is not None:
                raise ValueError(
                    "stats= applies to the constructor-registered default "
                    "model; pass it to register_model instead"
                )
            if packed_fn is not None:
                raise ValueError(
                    "packed_fn= applies to the constructor-registered "
                    "default model; pass it to register_model instead"
                )
        super().__init__(host=host, port=port, backlog=backlog)
        self._warm_up = warm_up
        self._empty_stats: Optional[ServerStats] = None
        self.http_port = http_port
        self._http: Optional[HttpMetricsListener] = None

    @classmethod
    def for_model(
        cls,
        model: Any,
        *,
        n_workers: Optional[int] = None,
        pool: Optional[Any] = None,
        backend: Optional[str] = None,
        threads: Optional[int] = None,
        unroll: Optional[int] = None,
        **kwargs,
    ):
        """Build a single-model server around ``model``'s best entry point.

        See :func:`_model_entry_point` for the preference order (including
        the binary protocol's packed path when the model offers one);
        ``register_model(name, model=...)`` is the multi-model counterpart.
        ``backend`` selects the evaluation engine where the model accepts
        an ``engine_backend`` kwarg — ``"native"`` for the generated-C
        backend, ``"native-mt"`` for its autotuned multithreaded tier,
        ``"auto"`` to use native when a C toolchain exists.  ``threads``
        overrides the advertised in-process thread count (defaulting to
        the host core count for ``native-mt``, 1 otherwise); ``unroll``
        likewise the advertised vector lane count.
        """
        label = _resolved_backend(backend)
        resolved_threads = _resolved_threads(label, threads)
        resolved_unroll = _resolved_unroll(label, unroll)
        batch_fn, scores_fn, packed_fn = _model_entry_point(
            model, n_workers, pool, backend
        )
        if scores_fn is not None:
            return cls(
                scores_fn=scores_fn,
                packed_fn=packed_fn,
                backend=label,
                threads=resolved_threads,
                unroll=resolved_unroll,
                **kwargs,
            )
        return cls(
            batch_fn=batch_fn,
            packed_fn=packed_fn,
            backend=label,
            threads=resolved_threads,
            unroll=resolved_unroll,
            **kwargs,
        )

    # ------------------------------------------------------- model hosting
    @property
    def registry(self) -> ModelRegistry:
        return self._registry

    @property
    def stats(self) -> ServerStats:
        """The default model's stats collector (single-model back-compat).

        An empty server returns an inert placeholder collector rather than
        raising — pre-PR callers could always read this attribute.
        """
        if len(self._registry) == 0:
            if self._empty_stats is None:
                self._empty_stats = ServerStats()
            return self._empty_stats
        return self._registry.resolve(None).stats

    def register_model(
        self,
        name: str,
        batch_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        *,
        scores_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        packed_fn: Optional[Callable[[np.ndarray, int], np.ndarray]] = None,
        model: Any = None,
        n_workers: Optional[int] = None,
        pool: Optional[Any] = None,
        max_batch: Optional[int] = None,
        max_wait_us: Optional[float] = None,
        max_queue: Optional[int] = None,
        stats: Optional[ServerStats] = None,
        default: bool = False,
        backend: Optional[str] = None,
        threads: Optional[int] = None,
        unroll: Optional[int] = None,
        version: Optional[int] = None,
        on_retire: Optional[Callable[[], Any]] = None,
    ) -> RegisteredModel:
        """Host another model under ``name``, with its own queue and knobs.

        Give either an evaluation function (``batch_fn``/``scores_fn``,
        plus optionally the binary protocol's zero-copy ``packed_fn``) or
        ``model=`` to pick the object's best entry point — including its
        packed path when it offers one (optionally sharded over
        ``n_workers`` / a shared ``pool`` — pass the same pool to every
        model so they share one set of worker processes).  With ``model=``,
        ``backend`` selects the evaluation engine (``"numpy"``,
        ``"native"`` for generated C, ``"native-mt"`` for the autotuned
        multithreaded native runtime, ``"auto"`` for
        native-if-toolchain); with explicit functions it is a descriptive
        label only.  The resolved value shows up in ``list_models`` and
        the ``repro_serving_model_backend`` metric; ``threads`` likewise
        labels the in-process word-shard fan-out (defaulting to the host
        core count for ``native-mt``, 1 otherwise) in ``list_models`` and
        the ``repro_serving_model_threads`` gauge, and ``unroll`` the
        vector lane count (the autotuner default for ``native-mt``, 1
        otherwise) in ``list_models``.  Knobs left ``None``
        inherit the server-level defaults.  Safe while serving: requests
        naming ``name`` route to the new queue from the next dispatch.

        ``version=`` on an already-hosted name adds a *standby* version to
        the family — traffic moves only on ``promote``/``promote_canary``
        (see :class:`~repro.serving.registry.ModelRegistry`).  When the
        version eventually retires (displaced by a promotion, rolled back
        by a canary, or unregistered), ``on_retire`` runs once; with
        ``model=`` and sharded evaluation (``pool=``/``n_workers=``) a
        hook is synthesized automatically that closes the model's cached
        sharded engines — detaching the retired version from the shared
        :class:`~repro.engine.parallel.WorkerPool` so worker-side state
        does not accumulate across version churn.
        """
        label = _resolved_backend(backend)
        resolved_threads = _resolved_threads(label, threads)
        resolved_unroll = _resolved_unroll(label, unroll)
        if model is not None:
            if batch_fn is not None or scores_fn is not None or packed_fn is not None:
                raise ValueError("provide model= or an evaluation fn, not both")
            batch_fn, scores_fn, packed_fn = _model_entry_point(
                model, n_workers, pool, backend
            )
            if on_retire is None and (
                pool is not None or n_workers is not None
            ):
                on_retire = getattr(model, "_close_sharded", None)
        elif n_workers is not None or pool is not None:
            raise ValueError(
                "n_workers/pool apply to model=; with an explicit "
                "batch_fn/scores_fn, bind the sharding into the function"
            )
        return self._registry.register(
            name,
            batch_fn,
            scores_fn=scores_fn,
            packed_fn=packed_fn,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            max_queue=max_queue,
            stats=stats,
            default=default,
            backend=label,
            threads=resolved_threads,
            unroll=resolved_unroll,
            version=version,
            on_retire=on_retire,
        )

    async def unregister_model(self, name: str) -> None:
        """Stop hosting ``name`` — every version: new requests get
        ``model_not_found``, already-admitted ones drain through the
        closing queues, and each version's retire hook fires."""
        for entry in self._registry.unregister(name):
            await entry.queue.close()
            self._registry.retire_record(entry)

    @property
    def http_address(self) -> Optional[Tuple[str, int]]:
        """The HTTP listener's bound ``(host, port)``; ``None`` when the
        server was built without ``http_port`` or has not started yet."""
        if self._http is None:
            return None
        return self._http.host, self._http.port

    def render_metrics(self) -> str:
        """Every hosted model's stats in Prometheus exposition format —
        the payload behind both ``GET /metrics`` and the ``stats_text``
        wire op.  Includes the serving-version gauge and the cumulative
        shadow-traffic counters (``repro_serving_shadow_requests`` /
        ``repro_serving_shadow_divergences``)."""
        return render_stats_text(
            {
                entry.name: entry.stats.snapshot()
                for entry in self._registry.entries()
            },
            backends={
                entry.name: entry.backend
                for entry in self._registry.entries()
            },
            threads={
                entry.name: entry.threads
                for entry in self._registry.entries()
            },
            versions=self._registry.serving_versions(),
            shadows=self._registry.shadow_totals(),
        )

    # ------------------------------------------------------------ lifecycle
    # start/serve_forever/drain/stop and the connection handler live in
    # FrameServer; the hooks below plug in the model layer's pieces.
    async def _on_start(self) -> None:
        if self._warm_up is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self._warm_up
            )

    async def _post_bind(self) -> None:
        if self.http_port is not None:
            self._http = HttpMetricsListener(
                self.render_metrics,
                host=self.host,
                port=self.http_port,
                state=lambda: self.state,
            )
            try:
                _, self.http_port = await self._http.start()
            except BaseException:
                self._http = None
                raise  # FrameServer.start runs full stop() and re-raises

    async def _on_drain(self) -> None:
        # admissions already stopped (state is draining, the predict paths
        # reject); everything admitted before the flip completes here
        await self._registry.flush_all()

    async def _pre_stop(self) -> None:
        if self._http is not None:
            await self._http.stop()
            self._http = None

    async def _on_stop(self) -> None:
        await self._registry.close()

    # ------------------------------------------------------------- dispatch
    def _resolve(self, request: Dict[str, Any]) -> RegisteredModel:
        model = request.get("model")
        if model is not None and not isinstance(model, str):
            raise BadRequestError("the model field must be a string")
        return self._registry.resolve(model)

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op", "predict")
        if op == "predict":
            return await self._handle_predict(request)
        if op == "stats":
            try:
                entry = self._resolve(request)
            except ServingError as error:
                return _error_response(error.error_type, str(error))
            return {
                "ok": True,
                "model": entry.name,
                # live queue depth alongside the counter snapshot — the
                # rebalancer's per-model demand signal
                "backlog_samples": entry.queue.backlog_samples,
                "stats": entry.stats.snapshot(),
            }
        if op == "stats_text":
            return {"ok": True, "text": self.render_metrics()}
        if op == "list_models":
            return {
                "ok": True,
                "default": self._registry.default_name,
                "models": [
                    self._registry.describe_family(name)
                    for name in self._registry.names
                ],
            }
        if op == "ping":
            return {"ok": True, "state": self.state}
        if op == "drain":
            await self.drain()
            return {"ok": True, "state": self.state}
        if op == "set_admission_weights":
            return self._handle_set_weights(request)
        if op in (
            "promote",
            "set_shadow",
            "clear_shadow",
            "promote_canary",
            "shadow_report",
            "lifecycle",
        ):
            return self._handle_lifecycle(op, request)
        return _error_response("bad_request", f"unknown op {op!r}")

    def _handle_lifecycle(
        self, op: str, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """The lifecycle control ops, shared by both wire protocols (JSON
        frames and binary OP_CONTROL frames dispatch identically)."""
        model = request.get("model")
        if model is not None and not isinstance(model, str):
            return _error_response(
                "bad_request", "the model field must be a string"
            )
        try:
            if op == "shadow_report":
                return {
                    "ok": True,
                    "report": self._registry.shadow_report(model),
                }
            if op == "lifecycle":
                family = self._registry.resolve(model).name
                return {
                    "ok": True,
                    "model": family,
                    "events": self._registry.lifecycle_events(family),
                }
            if op == "clear_shadow":
                return {"ok": True, **self._registry.clear_shadow(model)}
            version = request.get("version")
            if not isinstance(version, int) or isinstance(version, bool):
                return _error_response(
                    "bad_request", f"op {op!r} needs an integer version"
                )
            if op == "promote":
                return {"ok": True, **self._registry.promote(model, version)}
            if op == "set_shadow":
                fraction = request.get("fraction", 1.0)
                if not isinstance(fraction, (int, float)) or isinstance(
                    fraction, bool
                ):
                    return _error_response(
                        "bad_request", "fraction must be a number in (0, 1]"
                    )
                return {
                    "ok": True,
                    **self._registry.set_shadow(
                        model, version, float(fraction)
                    ),
                }
            # op == "promote_canary"
            policy = CanaryPolicy.from_wire(request)
            return {
                "ok": True,
                **self._registry.promote_canary(model, version, policy),
            }
        except ServingError as error:
            return _error_response(error.error_type, str(error))
        except (TypeError, ValueError) as error:
            return _error_response("bad_request", str(error))

    def _handle_set_weights(self, request: Dict[str, Any]) -> Dict[str, Any]:
        budget = self._registry.budget
        if budget is None:
            return _error_response(
                "bad_request",
                "this server has no shared admission budget to partition; "
                "start it with max_total_queue=",
            )
        weights = request.get("weights")
        if not isinstance(weights, dict):
            return _error_response(
                "bad_request", "weights must be a {model: weight} object"
            )
        try:
            budget.set_weights(weights)
        except ValueError as error:
            return _error_response("bad_request", str(error))
        return {
            "ok": True,
            "weights": budget.weights,
            "shares": {
                name: budget.share_of(name) for name in budget.weights
            },
        }

    async def _dispatch_binary(self, request: BinaryRequest) -> bytes:
        """One binary predict: packed words straight into the model's queue.

        Returns the encoded reply (or typed error) frame; the request id is
        echoed so pipelining clients re-associate out-of-order completions.
        """
        rid = request.request_id
        if self.state != self.SERVING:
            return encode_error(
                "unavailable",
                f"this server is {self.state} and admits no new work",
                request_id=rid,
            )
        try:
            entry = self._registry.resolve(request.model)
        except ServingError as error:
            return encode_error(error.error_type, str(error), request_id=rid)
        if request.return_scores and not entry.scores_mode:
            return encode_error(
                "bad_request",
                f"model {entry.name!r} has no scores path",
                request_id=rid,
            )
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        try:
            result = await entry.queue.submit_packed(
                request.packed, request.n_samples
            )
        except ServingError as error:
            return encode_error(error.error_type, str(error), request_id=rid)
        except Exception as error:  # noqa: BLE001 - model failure
            return encode_error(
                "internal", f"{type(error).__name__}: {error}", request_id=rid
            )
        # mirror to the shadow candidate (if any) *after* the primary
        # result exists — fire-and-forget, the client reply is not delayed
        self._registry.spawn_shadow(
            entry,
            request.packed,
            request.n_samples,
            True,
            result,
            (loop.time() - t0) * 1e6,
        )
        if entry.scores_mode:
            scores = np.asarray(result)
            labels = np.argmax(scores, axis=1)
            return encode_reply(
                labels,
                scores if request.return_scores else None,
                request_id=rid,
            )
        return encode_reply(np.asarray(result), request_id=rid)

    async def _handle_predict(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.state != self.SERVING:
            return _error_response(
                ServerUnavailableError.error_type,
                f"this server is {self.state} and admits no new work",
            )
        try:
            entry = self._resolve(request)
        except ServingError as error:
            return _error_response(error.error_type, str(error))
        return_scores = bool(request.get("return_scores", False))
        if return_scores and not entry.scores_mode:
            return _error_response(
                "bad_request",
                f"model {entry.name!r} has no scores path",
            )
        features = request.get("features")
        try:
            # no dtype coercion here: check_binary_matrix inside the queue
            # must see the raw values so 0.5 is rejected, not truncated to 0
            rows = np.asarray(features)
        except (TypeError, ValueError):
            return _error_response(
                "bad_request", "features must be a rectangular 0/1 matrix"
            )
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        try:
            result = await entry.queue.submit(rows)
        except ServingError as error:
            return _error_response(error.error_type, str(error))
        except Exception as error:  # noqa: BLE001 - model failure
            self_type = type(error).__name__
            return _error_response("internal", f"{self_type}: {error}")
        # mirror to the shadow candidate (if any) *after* the primary
        # result exists — fire-and-forget, the client reply is not delayed
        self._registry.spawn_shadow(
            entry, rows, rows.shape[0], False, result, (loop.time() - t0) * 1e6
        )
        if entry.scores_mode:
            labels = np.argmax(result, axis=1)
            response: Dict[str, Any] = {"ok": True, "labels": labels.tolist()}
            if return_scores:
                response["scores"] = np.asarray(result).tolist()
            return response
        return {"ok": True, "labels": np.asarray(result).tolist()}


class BackgroundServer:
    """Run an :class:`InferenceServer` on its own event-loop thread.

    Blocking code (tests, benchmarks, the demo) starts the server with::

        with BackgroundServer(InferenceServer.for_model(clf)) as handle:
            with ServingClient(*handle.address) as client:
                labels = client.predict(rows)

    The thread owns the loop: ``start`` returns once the listener is bound
    (re-raising any startup failure), ``stop`` schedules a clean shutdown —
    drain, close, loop teardown — and joins the thread.
    """

    def __init__(self, server: InferenceServer) -> None:
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.host, self.server.port

    def start(self) -> Tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        started = threading.Event()
        failure: list = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except Exception as error:  # noqa: BLE001 - surfaced in start()
                failure.append(error)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.stop())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-serving-loop", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self.address

    def run(self, coro, timeout: float = 30.0):
        """Run ``coro`` on the server's event loop and return its result.

        The blocking-side door to loop-confined state: lifecycle mutators
        (``register_model`` on a live server, ``registry.promote``,
        ``registry.wait_idle``) are synchronous-on-the-loop by design, so
        off-thread callers route them through here instead of mutating the
        registry from a foreign thread.
        """
        if self._loop is None or self._thread is None:
            raise RuntimeError("server thread not started")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
