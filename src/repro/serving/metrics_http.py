"""A native HTTP listener for operational endpoints: ``/metrics`` + ``/healthz``.

The Prometheus exposition rendering has existed since PR 5
(:func:`~repro.serving.stats.render_stats_text`), but scraping it required
a sidecar speaking the serving wire protocol.  This module is the missing
transport: a deliberately tiny asyncio HTTP/1.0-style server — request
line, headers, one response, close — because a scrape endpoint needs
nothing more (Prometheus is happy with ``Connection: close``), and pulling
in an HTTP framework for two GET routes would be all liability.

Routes:

``GET /metrics``
    The Prometheus exposition text (``text/plain; version=0.0.4``) from the
    ``render`` callable — for :class:`~repro.serving.server.InferenceServer`
    that is every hosted model's stats snapshot.

``GET /healthz``
    ``ok`` (200) while the owning server reports the ``serving`` state; any
    other state — ``draining`` above all — answers 503 with the state name
    as the body.  Load balancers and the cluster router key off exactly
    this flip to stop sending a draining box new work while its admitted
    requests finish.  A listener built without a ``state`` callable always
    answers 200 (a bare liveness probe).

Anything else is ``404``; non-GET/HEAD methods are ``405``; a malformed
request line is ``400``.  ``HEAD`` is honoured (headers only) since probes
sometimes use it.  The reader is bounded (:data:`MAX_REQUEST_BYTES`) so a
hostile peer cannot feed an unbounded header section.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional, Tuple

__all__ = ["HttpMetricsListener", "MAX_REQUEST_BYTES"]

#: Upper bound on one request's line + header section.
MAX_REQUEST_BYTES = 16 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: the content type Prometheus expects from a scrape target
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _response(
    status: int,
    body: str,
    content_type: str = "text/plain; charset=utf-8",
    *,
    head_only: bool = False,
) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.0 {status} {_STATUS_TEXT[status]}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("ascii")
    return head if head_only else head + payload


class HttpMetricsListener:
    """Serve ``/metrics`` (and ``/healthz``) over plain HTTP.

    Parameters
    ----------
    render:
        Zero-argument callable returning the exposition text; called per
        scrape on the event loop (snapshotting is a few lock-guarded
        copies, cheap enough to stay inline).
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from the
        :meth:`start` return value).
    state:
        Optional zero-argument callable returning the owning server's
        lifecycle state; ``/healthz`` answers 200 only while it returns
        ``"serving"``, 503 otherwise.  ``None`` keeps the pre-lifecycle
        behaviour: always 200.
    """

    def __init__(
        self,
        render: Callable[[], str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        state: Optional[Callable[[], str]] = None,
    ) -> None:
        self._render = render
        self._state = state
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("HTTP listener already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- handling
    def _respond_to(self, method: str, path: str, head_only: bool) -> bytes:
        path = path.split("?", 1)[0]
        if method not in ("GET", "HEAD"):
            return _response(405, "only GET is supported\n", head_only=head_only)
        if path == "/metrics":
            try:
                text = self._render()
            except Exception as error:  # noqa: BLE001 - surface, don't hang up
                return _response(
                    500, f"metrics rendering failed: {error}\n",
                    head_only=head_only,
                )
            return _response(
                200, text, METRICS_CONTENT_TYPE, head_only=head_only
            )
        if path == "/healthz":
            state = "serving" if self._state is None else self._state()
            if state == "serving":
                return _response(200, "ok\n", head_only=head_only)
            return _response(503, f"{state}\n", head_only=head_only)
        return _response(
            404, "try /metrics or /healthz\n", head_only=head_only
        )

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request_line = await reader.readuntil(b"\r\n")
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
            ):
                return  # peer hung up or flooded before a request line
            parts = request_line.decode("ascii", errors="replace").split()
            if len(parts) < 2:
                writer.write(_response(400, "malformed request line\n"))
                return
            method, path = parts[0].upper(), parts[1]
            # drain the (bounded) header section; the routes need none of it
            consumed = len(request_line)
            while True:
                try:
                    line = await reader.readuntil(b"\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                ):
                    break
                consumed += len(line)
                if line == b"\r\n" or consumed > MAX_REQUEST_BYTES:
                    break
            writer.write(self._respond_to(method, path, method == "HEAD"))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
            ):  # pragma: no cover
                pass
