"""Run a backend server or a cluster router as its own OS process.

The single-box serving tests drive :class:`~repro.serving.server.
BackgroundServer` threads, but the cluster story — a router over replicated
backends, one of which gets killed mid-run — only means something across
*process* boundaries: a SIGKILL must take the whole box down, not a thread.
This module is that boundary::

    python -m repro.serving.standalone backend \\
        --model alpha=popcount:256:10:20 --model beta=popcount:256:10:20 \\
        --max-total-queue 32768
    python -m repro.serving.standalone router \\
        --route alpha=127.0.0.1:7101,127.0.0.1:7102 \\
        --route beta=127.0.0.1:7101,127.0.0.1:7102

Each process prints exactly one line to stdout once its listener is bound::

    SERVING <host> <port> <http_port|->

— which is how the spawning benchmark/demo learns the ephemeral ports.
SIGTERM and SIGINT trigger the graceful path: ``drain()`` (stop admissions,
flush admitted batches, 503 on ``/healthz``) and then ``stop()``.  SIGKILL,
by design, triggers nothing — that is the failure the router's failover
exists for.

The built-in model family is ``popcount:F:C[:SLEEP_MS]``: ``F`` binary
features, labels ``popcount(row) % C`` — trivially bit-exact to recompute
on the driver side — plus an optional *modeled service time* of SLEEP_MS
milliseconds per batch.  The sleep happens on the queue's executor thread
with the GIL released, exactly like a real engine's compute does, so
replica scaling measured against it is honest even on a single-core CI
box (two sleeping replicas genuinely overlap; two spinning ones would
not).
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.bitpack import unpack_bits
from repro.serving.retry import RetryPolicy
from repro.serving.router import RouterServer
from repro.serving.server import InferenceServer

__all__ = [
    "main",
    "make_popcount_model",
    "parse_model_spec",
    "parse_route",
    "parse_shadow",
]


def make_popcount_model(
    n_features: int, n_classes: int, sleep_ms: float = 0.0
):
    """``(batch_fn, packed_fn)`` for the standalone popcount model."""

    def batch_fn(X: np.ndarray) -> np.ndarray:
        if sleep_ms > 0:
            time.sleep(sleep_ms / 1e3)  # modeled service time, GIL released
        return X.astype(np.int64).sum(axis=1) % n_classes

    def packed_fn(words: np.ndarray, n_samples: int) -> np.ndarray:
        return batch_fn(unpack_bits(words, n_samples))

    return batch_fn, packed_fn


def parse_model_spec(
    spec: str,
) -> Tuple[str, Optional[int], int, int, float]:
    """``name[@V]=popcount:F:C[:SLEEP_MS]`` → ``(name, V, F, C, sleep_ms)``.

    ``V`` is the model version (``None`` when unversioned).  Repeating a
    name with different versions builds a version family: the first listed
    version serves, later ones register as standby candidates for
    ``--shadow`` / canary promotion.
    """
    try:
        name, rest = spec.split("=", 1)
        version: Optional[int] = None
        if "@" in name:
            name, _, suffix = name.partition("@")
            version = int(suffix)
        parts = rest.split(":")
        if parts[0] != "popcount" or len(parts) not in (3, 4):
            raise ValueError
        n_features, n_classes = int(parts[1]), int(parts[2])
        sleep_ms = float(parts[3]) if len(parts) == 4 else 0.0
    except (ValueError, IndexError):
        raise SystemExit(
            f"bad --model spec {spec!r}; "
            "expected name[@VERSION]=popcount:F:C[:SLEEP_MS]"
        )
    return name, version, n_features, n_classes, sleep_ms


def parse_shadow(spec: str) -> Tuple[str, int, float]:
    """``name=version[:fraction]`` → ``(name, version, fraction)``."""
    try:
        name, rest = spec.split("=", 1)
        parts = rest.split(":")
        if len(parts) not in (1, 2):
            raise ValueError
        version = int(parts[0])
        fraction = float(parts[1]) if len(parts) == 2 else 1.0
    except (ValueError, IndexError):
        raise SystemExit(
            f"bad --shadow spec {spec!r}; expected name=VERSION[:FRACTION]"
        )
    return name, version, fraction


def parse_route(spec: str) -> Tuple[str, List[Tuple[str, int]]]:
    """``name=host:port,host:port`` → ``(name, [(host, port), ...])``."""
    try:
        name, rest = spec.split("=", 1)
        endpoints = []
        for part in rest.split(","):
            host, port = part.rsplit(":", 1)
            endpoints.append((host, int(port)))
        if not endpoints:
            raise ValueError
    except (ValueError, IndexError):
        raise SystemExit(
            f"bad --route spec {spec!r}; expected name=host:port[,host:port]"
        )
    return name, endpoints


def _announce(host: str, port: int, http_port: Optional[int]) -> None:
    print(f"SERVING {host} {port} {http_port if http_port is not None else '-'}")
    sys.stdout.flush()


async def _run_until_signalled(server) -> None:
    """Serve until SIGTERM/SIGINT, then drain and stop."""
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    await server.drain()
    await server.stop()


async def _backend_main(args: argparse.Namespace) -> None:
    server = InferenceServer(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        max_queue=args.max_queue,
        max_total_queue=args.max_total_queue,
    )
    for spec in args.model:
        name, version, n_features, n_classes, sleep_ms = parse_model_spec(
            spec
        )
        batch_fn, packed_fn = make_popcount_model(
            n_features, n_classes, sleep_ms
        )
        server.register_model(
            name, batch_fn, packed_fn=packed_fn, version=version
        )
    for spec in args.shadow or ():
        name, version, fraction = parse_shadow(spec)
        try:
            server.registry.set_shadow(name, version, fraction)
        except (ValueError, KeyError) as error:
            raise SystemExit(f"bad --shadow spec {spec!r}: {error}")
    await server.start()
    _announce(server.host, server.port, server.http_port)
    await _run_until_signalled(server)


async def _router_main(args: argparse.Namespace) -> None:
    placement: Dict[str, List[Tuple[str, int]]] = {}
    for spec in args.route:
        name, endpoints = parse_route(spec)
        placement[name] = endpoints
    router = RouterServer(
        placement,
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        retry=RetryPolicy(
            max_attempts=args.max_attempts, base_delay=args.base_delay
        ),
        connect_timeout=args.connect_timeout,
        request_timeout=args.request_timeout,
        health_interval=args.health_interval,
        health_timeout=args.health_timeout,
        reinstate_after=args.reinstate_after,
        rebalance_interval=args.rebalance_interval,
    )
    await router.start()
    _announce(router.host, router.port, router.http_port)
    await _run_until_signalled(router)


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.standalone",
        description=__doc__.split("\n\n")[0],
    )
    sub = parser.add_subparsers(dest="role", required=True)

    backend = sub.add_parser("backend", help="one replicated model server")
    backend.add_argument("--host", default="127.0.0.1")
    backend.add_argument("--port", type=int, default=0)
    backend.add_argument("--http-port", type=int, default=None)
    backend.add_argument(
        "--model",
        action="append",
        required=True,
        help=(
            "name[@VERSION]=popcount:F:C[:SLEEP_MS]; repeatable — repeat a "
            "name with different versions to build a hot-swap family (the "
            "first listed version serves)"
        ),
    )
    backend.add_argument(
        "--shadow",
        action="append",
        default=None,
        help=(
            "name=VERSION[:FRACTION]: mirror that fraction of the named "
            "family's traffic to standby VERSION; repeatable"
        ),
    )
    backend.add_argument("--max-batch", type=int, default=64)
    backend.add_argument("--max-wait-us", type=float, default=2000.0)
    backend.add_argument("--max-queue", type=int, default=32768)
    backend.add_argument("--max-total-queue", type=int, default=None)

    router = sub.add_parser("router", help="cluster router over backends")
    router.add_argument("--host", default="127.0.0.1")
    router.add_argument("--port", type=int, default=0)
    router.add_argument("--http-port", type=int, default=None)
    router.add_argument(
        "--route",
        action="append",
        required=True,
        help="name=host:port[,host:port]; repeatable",
    )
    router.add_argument("--max-attempts", type=int, default=4)
    router.add_argument("--base-delay", type=float, default=0.05)
    router.add_argument("--connect-timeout", type=float, default=2.0)
    router.add_argument("--request-timeout", type=float, default=30.0)
    router.add_argument("--health-interval", type=float, default=0.25)
    router.add_argument("--health-timeout", type=float, default=2.0)
    router.add_argument("--reinstate-after", type=int, default=2)
    router.add_argument("--rebalance-interval", type=float, default=None)

    args = parser.parse_args(argv)
    runner = _backend_main if args.role == "backend" else _router_main
    try:
        asyncio.run(runner(args))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C without handler
        pass


if __name__ == "__main__":
    main()
