"""Length-prefixed JSON wire protocol for the inference server.

Every message — request or response — is one JSON object encoded as UTF-8
and prefixed with its byte length as a 4-byte big-endian unsigned integer::

    +----------------+--------------------------+
    | length (>I, 4B)| UTF-8 JSON payload       |
    +----------------+--------------------------+

JSON keeps the protocol debuggable with ``nc`` and trivially portable; the
length prefix makes framing exact (no sentinel scanning), which is what the
asyncio reader and the blocking client both rely on.  Payloads are capped at
:data:`MAX_MESSAGE_BYTES` so a corrupt or hostile header cannot make either
side allocate gigabytes.

A binary sibling (:mod:`repro.serving.binary_protocol`) shares the same
listener: its frames lead with the ``0xBF`` magic byte, which a JSON length
header under the 64 MiB cap can never produce, so the first byte of every
frame picks the codec.

Request objects (client → server)::

    {"op": "predict", "features": [[0, 1, ...], ...],
     "return_scores": false, "model": "name"?}   # the workhorse
    {"op": "stats", "model": "name"?}            # one model's snapshot
    {"op": "stats_text"}                         # Prometheus-style scrape
    {"op": "list_models"}                        # hosted models + default
    {"op": "ping"}                               # liveness + lifecycle state
    {"op": "drain"}                              # stop admissions, flush
    {"op": "set_admission_weights",
     "weights": {"name": 3, ...}}                # re-partition the budget

``model`` is optional everywhere it appears: absent routes to the server's
default model; a name the server does not host fails with the typed
``model_not_found`` error.

Response objects (server → client) always carry ``"ok"``::

    {"ok": true, "labels": [...], "scores": [[...], ...]?}
    {"ok": true, "model": "name", "backlog_samples": 0, "stats": {...}}
    {"ok": true, "text": "# TYPE repro_serving_... counter\\n..."}
    {"ok": true, "default": "name", "models": [{"name": ..., "scores": ...,
                                                "max_batch": ...}, ...]}
    {"ok": true, "state": "serving" | "draining" | ...}   # ping / drain
    {"ok": false, "error": {"type": "overloaded" | "bad_request" |
                            "model_not_found" | "unavailable" | "internal",
                            "message": "..."}}

Both async (:func:`read_message` / :func:`write_message`) and blocking
(:func:`recv_message` / :func:`send_message`) transports are provided.

.. note::
   This module is a re-export shim: the codec itself lives in
   :mod:`repro.serving.transport` — the single framing implementation the
   client, the server and the cluster router all share — and nothing here
   adds behaviour.  Import from either name; patch (e.g. the message cap)
   on :mod:`repro.serving.transport`, where the implementation reads it.
"""

from __future__ import annotations

from repro.serving.transport import (  # noqa: F401
    MAX_MESSAGE_BYTES,
    ProtocolError,
    _decode_body,
    _HEADER,
    _recv_exactly,
    encode_message,
    read_message,
    recv_message,
    send_message,
    write_message,
)

__all__ = [
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "encode_message",
    "read_message",
    "recv_message",
    "send_message",
    "write_message",
]
