"""Length-prefixed JSON wire protocol for the inference server.

Every message — request or response — is one JSON object encoded as UTF-8
and prefixed with its byte length as a 4-byte big-endian unsigned integer::

    +----------------+--------------------------+
    | length (>I, 4B)| UTF-8 JSON payload       |
    +----------------+--------------------------+

JSON keeps the protocol debuggable with ``nc`` and trivially portable; the
length prefix makes framing exact (no sentinel scanning), which is what the
asyncio reader and the blocking client both rely on.  Payloads are capped at
:data:`MAX_MESSAGE_BYTES` so a corrupt or hostile header cannot make either
side allocate gigabytes.

A binary sibling (:mod:`repro.serving.binary_protocol`) shares the same
listener: its frames lead with the ``0xBF`` magic byte, which a JSON length
header under the 64 MiB cap can never produce, so the first byte of every
frame picks the codec.

Request objects (client → server)::

    {"op": "predict", "features": [[0, 1, ...], ...],
     "return_scores": false, "model": "name"?}   # the workhorse
    {"op": "stats", "model": "name"?}            # one model's snapshot
    {"op": "stats_text"}                         # Prometheus-style scrape
    {"op": "list_models"}                        # hosted models + default
    {"op": "ping"}                               # liveness probe

``model`` is optional everywhere it appears: absent routes to the server's
default model; a name the server does not host fails with the typed
``model_not_found`` error.

Response objects (server → client) always carry ``"ok"``::

    {"ok": true, "labels": [...], "scores": [[...], ...]?}
    {"ok": true, "model": "name", "stats": {...}}
    {"ok": true, "text": "# TYPE repro_serving_... counter\\n..."}
    {"ok": true, "default": "name", "models": [{"name": ..., "scores": ...,
                                                "max_batch": ...}, ...]}
    {"ok": false, "error": {"type": "overloaded" | "bad_request" |
                            "model_not_found" | "internal",
                            "message": "..."}}

Both async (:func:`read_message` / :func:`write_message`) and blocking
(:func:`recv_message` / :func:`send_message`) transports are provided; they
share :func:`encode_message` so the framing cannot drift apart.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Optional

__all__ = [
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "encode_message",
    "read_message",
    "recv_message",
    "send_message",
    "write_message",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one message's JSON payload (64 MiB ≈ a 250k-sample
#: request of 256 features — far beyond anything the batcher admits).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Malformed frame: bad header, oversized payload, or invalid JSON."""


def encode_message(payload: Dict[str, Any]) -> bytes:
    """Serialise one message to its framed wire form.

    Non-finite floats raise :class:`ProtocolError`: ``json.dumps`` would
    otherwise emit the bare ``NaN``/``Infinity`` tokens, which are not JSON
    — a strict peer rejects the whole frame.  The server converts this
    failure into the typed ``internal`` wire error; the binary protocol
    carries non-finite scores losslessly instead.
    """
    try:
        body = json.dumps(
            payload, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except ValueError as error:
        raise ProtocolError(
            f"payload is not JSON-serialisable: {error}"
        ) from error
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte cap"
        )
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"invalid JSON payload: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_length(length: int) -> None:
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame announces {length} bytes, cap is {MAX_MESSAGE_BYTES}"
        )


# ----------------------------------------------------------------- asyncio
async def read_message(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read one framed message; ``None`` on clean EOF before a header."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:  # connection closed between messages
            return None
        raise ProtocolError("connection closed mid-header") from error
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-message") from error
    return _decode_body(body)


async def write_message(
    writer: asyncio.StreamWriter, payload: Dict[str, Any]
) -> None:
    """Frame and send one message, draining the transport buffer."""
    writer.write(encode_message(payload))
    await writer.drain()


# ---------------------------------------------------------------- blocking
def _recv_exactly(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Blocking counterpart of :func:`read_message` (``None`` on clean EOF)."""
    header = _recv_exactly(sock, _HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ProtocolError("connection closed mid-header")
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if len(body) < length:
        raise ProtocolError("connection closed mid-message")
    return _decode_body(body)


def send_message(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Blocking counterpart of :func:`write_message`."""
    sock.sendall(encode_message(payload))
