"""Model lifecycle primitives: divergence recording, canary policy, event log.

Production serving replaces models under load.  Three small pieces make
that safe without slowing the hot path, all owned by the registry's
per-name version family:

:class:`DivergenceStore`
    The shadow-traffic ledger.  When a model has a shadow candidate, a
    sampled fraction of its traffic is *mirrored* to the candidate after
    the primary reply has been sent; each mirrored request is compared
    bit-for-bit (labels) and numerically (max per-class score delta,
    latency ratio) and the outcome lands here.  The store is bounded on
    both axes — a deque of the most recent divergent records for
    debugging, a reservoir of latency ratios for the p99 — and keeps two
    scopes: *candidate-scoped* counters that reset when the shadow target
    changes (what canary decisions read) and *cumulative* totals that
    never reset (what the Prometheus counters export, so scraped
    ``rate()`` math survives a re-target).

:class:`CanaryPolicy`
    The promotion gate: after at least ``min_requests`` mirrored
    requests, a candidate whose divergence rate (label mismatches *and*
    shadow errors, over mirrored requests) stays within
    ``max_divergence_rate`` — and whose shadow/primary latency-ratio p99
    stays within ``max_p99_ratio``, when set — is auto-promoted;
    otherwise it is rolled back (shadow cleared, candidate version
    unregistered, primary untouched).

:class:`LifecycleLog`
    A bounded, monotonically-sequenced event history per model name —
    ``registered`` / ``promoted`` / ``draining`` / ``retired`` /
    ``shadow_set`` / ``canary_rolled_back`` / ... — queryable over the
    wire (the ``lifecycle`` op) so an operator can reconstruct how the
    serving pointer got where it is.

The blind-comparison shape (evaluate candidate on the exact traffic the
primary answered, record only the diff) follows the debug-DB diff
pattern the roadmap names as the exemplar.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "CanaryPolicy",
    "DivergenceStore",
    "LifecycleLog",
    "compare_outputs",
]


def compare_outputs(
    scores_mode: bool, primary: Any, candidate: Any
) -> Tuple[int, float]:
    """``(n_label_mismatches, max_confidence_delta)`` between two replies.

    For scores-mode models both sides are ``(n, n_classes)`` score
    matrices: labels are compared by argmax and the confidence delta is
    the largest absolute per-class score difference.  A candidate whose
    class count differs from the primary's is structurally divergent:
    every sample counts as mismatched and the delta is ``+Inf``.  For
    labels-mode models only the labels exist, so the delta is 0.
    """
    p = np.asarray(primary)
    c = np.asarray(candidate)
    if scores_mode:
        if p.shape != c.shape:
            return int(p.shape[0]), float("inf")
        p_labels = np.argmax(p, axis=1)
        c_labels = np.argmax(c, axis=1)
        mismatched = int(np.count_nonzero(p_labels != c_labels))
        delta = float(np.max(np.abs(p - c))) if p.size else 0.0
        return mismatched, delta
    if p.shape != c.shape:
        return int(p.shape[0]), float("inf")
    return int(np.count_nonzero(p != c)), 0.0


@dataclass(frozen=True)
class CanaryPolicy:
    """The auto-promotion gate for :meth:`ModelRegistry.promote_canary`.

    Parameters
    ----------
    min_requests:
        Mirrored requests required before any verdict; until then the
        canary stays in ``watching`` state.
    max_divergence_rate:
        Highest tolerated fraction of mirrored requests that diverged
        (label mismatch *or* shadow evaluation error).  The default 0.0
        demands bit-exact agreement — the right bar for a retrained
        PoET-BiN bank that is supposed to be an equivalent drop-in.
    max_p99_ratio:
        Optional cap on the p99 of shadow/primary latency ratios; a
        candidate that answers correctly but 10x slower should not be
        promoted.  ``None`` skips the latency gate.
    """

    min_requests: int = 32
    max_divergence_rate: float = 0.0
    max_p99_ratio: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_requests < 1:
            raise ValueError("min_requests must be >= 1")
        if not 0.0 <= self.max_divergence_rate <= 1.0:
            raise ValueError("max_divergence_rate must be in [0, 1]")
        if self.max_p99_ratio is not None and self.max_p99_ratio <= 0:
            raise ValueError("max_p99_ratio must be positive")

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "CanaryPolicy":
        """Build from a wire request's optional policy fields."""
        kwargs: Dict[str, Any] = {}
        if payload.get("min_requests") is not None:
            kwargs["min_requests"] = int(payload["min_requests"])
        if payload.get("max_divergence_rate") is not None:
            kwargs["max_divergence_rate"] = float(
                payload["max_divergence_rate"]
            )
        if payload.get("max_p99_ratio") is not None:
            kwargs["max_p99_ratio"] = float(payload["max_p99_ratio"])
        return cls(**kwargs)

    def describe(self) -> Dict[str, Any]:
        return {
            "min_requests": self.min_requests,
            "max_divergence_rate": self.max_divergence_rate,
            "max_p99_ratio": self.max_p99_ratio,
        }


class DivergenceStore:
    """Bounded ledger of shadow-traffic outcomes for one model family.

    Two scopes coexist:

    * **candidate-scoped** counters/records/reservoir, reset by
      :meth:`retarget` whenever the shadow pointer moves to a different
      version — canary decisions must never mix evidence across
      candidates;
    * **cumulative totals** (``total_requests`` / ``total_divergences``)
      that survive re-targets — these back the monotonic Prometheus
      counters ``repro_serving_shadow_requests`` /
      ``repro_serving_shadow_divergences``.

    A mirrored request is *divergent* when any label mismatched (or the
    comparison was structural — different class counts).  Shadow
    evaluation errors (candidate queue shed, model raise) are counted
    separately but weigh as divergences in the canary's rate.
    """

    def __init__(
        self, max_records: int = 256, max_ratio_samples: int = 4096
    ) -> None:
        if max_records < 1 or max_ratio_samples < 1:
            raise ValueError("store bounds must be >= 1")
        self.max_records = max_records
        self.max_ratio_samples = max_ratio_samples
        self.candidate_version: Optional[int] = None
        self.total_requests = 0
        self.total_divergences = 0
        self._reset_candidate()

    def _reset_candidate(self) -> None:
        self.requests = 0
        self.divergences = 0
        self.errors = 0
        self.samples = 0
        self.mismatched_samples = 0
        self.max_confidence_delta = 0.0
        self._records: deque = deque(maxlen=self.max_records)
        self._ratios: deque = deque(maxlen=self.max_ratio_samples)

    # ------------------------------------------------------------- recording
    def retarget(self, version: Optional[int]) -> None:
        """Point the candidate scope at ``version``, resetting it (totals
        survive).  Re-targeting the *same* version keeps the evidence."""
        if version != self.candidate_version:
            self.candidate_version = version
            self._reset_candidate()

    def observe(
        self,
        n_samples: int,
        n_mismatched: int,
        max_confidence_delta: float,
        latency_ratio: float,
    ) -> bool:
        """Record one mirrored request; returns whether it diverged."""
        divergent = n_mismatched > 0
        self.requests += 1
        self.total_requests += 1
        self.samples += int(n_samples)
        self.mismatched_samples += int(n_mismatched)
        if max_confidence_delta > self.max_confidence_delta:
            self.max_confidence_delta = float(max_confidence_delta)
        self._ratios.append(float(latency_ratio))
        if divergent:
            self.divergences += 1
            self.total_divergences += 1
            self._records.append(
                {
                    "ts": time.time(),
                    "n_samples": int(n_samples),
                    "n_label_mismatches": int(n_mismatched),
                    "max_confidence_delta": float(max_confidence_delta),
                    "latency_ratio": float(latency_ratio),
                }
            )
        return divergent

    def observe_error(self, message: str) -> None:
        """Record a mirrored request whose candidate evaluation failed."""
        self.requests += 1
        self.total_requests += 1
        self.errors += 1
        self._records.append({"ts": time.time(), "error": message})

    # --------------------------------------------------------------- reading
    def divergence_rate(self) -> float:
        """Divergent-or-errored fraction of mirrored requests (0.0 when
        nothing has been mirrored yet)."""
        if self.requests == 0:
            return 0.0
        return (self.divergences + self.errors) / self.requests

    def p99_latency_ratio(self) -> float:
        if not self._ratios:
            return 0.0
        return float(
            np.percentile(np.fromiter(self._ratios, dtype=np.float64), 99.0)
        )

    def summary(self) -> Dict[str, Any]:
        """One JSON-clean dict: candidate-scoped stats plus the totals."""
        ratios = np.fromiter(self._ratios, dtype=np.float64)
        mean_ratio = float(ratios.mean()) if ratios.size else 0.0
        delta = self.max_confidence_delta
        return {
            "candidate_version": self.candidate_version,
            "shadow_requests": self.requests,
            "shadow_divergences": self.divergences,
            "shadow_errors": self.errors,
            "samples": self.samples,
            "mismatched_samples": self.mismatched_samples,
            # +Inf is not JSON; the structural-divergence marker crosses
            # the wire as a very explicit sentinel string instead
            "max_confidence_delta": (
                delta if np.isfinite(delta) else "inf"
            ),
            "divergence_rate": self.divergence_rate(),
            "p99_latency_ratio": self.p99_latency_ratio(),
            "mean_latency_ratio": mean_ratio,
            "total_requests": self.total_requests,
            "total_divergences": self.total_divergences,
        }

    def records(self) -> List[Dict[str, Any]]:
        """The bounded divergence/error records, oldest first (JSON-clean:
        non-finite confidence deltas cross as the ``"inf"`` sentinel)."""
        out = []
        for record in self._records:
            record = dict(record)
            delta = record.get("max_confidence_delta")
            if delta is not None and not np.isfinite(delta):
                record["max_confidence_delta"] = "inf"
            out.append(record)
        return out


class LifecycleLog:
    """Bounded, sequenced event history for one model family."""

    def __init__(self, max_events: int = 512) -> None:
        self._events: deque = deque(maxlen=max_events)
        self._seq = 0

    def record(self, event: str, **fields: Any) -> Dict[str, Any]:
        self._seq += 1
        entry = {"seq": self._seq, "event": event, "ts": time.time()}
        entry.update(fields)
        self._events.append(entry)
        return entry

    def events(self) -> List[Dict[str, Any]]:
        return [dict(entry) for entry in self._events]
