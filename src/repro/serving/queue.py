"""Request coalescing: many small requests, one packed evaluation.

:class:`BatchingQueue` is the asyncio heart of the serving layer.  Callers
``await submit(rows)`` with any number of samples; the queue holds requests
for at most ``max_wait_us`` microseconds, stacks whatever has accumulated
into a single matrix (:func:`~repro.engine.batching.coalesce_batches`), runs
the model's batch function **once**, and scatters per-request slices of the
result back to each caller's future
(:func:`~repro.engine.batching.split_batches`).  64 one-sample requests thus
cost one packed word of engine work instead of 64 engine invocations.

Flush policy
============

A batch is evaluated when the first of these happens:

* the queued sample count reaches ``max_batch`` (flush immediately — the
  batch is as good as it gets), or
* ``max_wait_us`` elapses since the queue went non-empty (latency bound:
  a lone request never waits longer than the wait budget).

A single request larger than ``max_batch`` is *not* split: it is admitted
whole and triggers an immediate flush, forming its own oversized batch (the
engine handles any batch size; splitting would only add scatter work).  A
timer that fires after a size-triggered flush already drained the queue is
a no-op — the empty-batch timeout never reaches the engine.

Admission control
=================

The queue is bounded at ``max_queue`` *samples*, counting everything
admitted but not yet completed — both requests waiting for a flush and
batches already evaluating on the executor.  (Counting only the pre-flush
backlog would make the bound unreachable: every flush would reset it while
unfinished batches piled up behind the single evaluation thread.)  A
request that would push that backlog past the bound is shed at admission
with :class:`ServerOverloadedError` — a typed, cheap rejection that never
touches the engine — so overload degrades into explicit client-visible
errors and bounded memory rather than unbounded latency (the bounded queue
is the backpressure signal: clients seeing sheds are expected to back
off).  The one exception: a request larger than ``max_queue`` itself is
admitted when the queue is idle, because shedding it could never succeed
on retry.

A multi-model server hosts one queue per model; the per-queue bound alone
would let N models admit ``N * max_queue`` samples against one box.
:class:`AdmissionBudget` is the shared second bound: every queue holding a
reference reserves its admitted samples from the common budget and releases
them at completion, so total in-flight work is capped however traffic is
distributed across models (with the same idle-oversized exception, applied
to the budget as a whole).

Evaluation runs on a dedicated single-thread executor, which serialises
engine calls (the compiled engine's scratch buffers are not thread-safe)
and keeps the event loop free to admit requests while NumPy works.  The
executor persists across batches — together with the (optional)
:class:`~repro.engine.parallel.ShardedEngine` process pool underneath the
batch function, the whole worker stack outlives any one call.

Packed submissions
==================

:meth:`BatchingQueue.submit_packed` is the binary wire protocol's entry:
the request arrives as the engine's own ``(F, n_words(k))`` uint64
bit-plane matrix.  Packed co-travellers coalesce *in the packed domain* —
:func:`~repro.engine.bitpack.concat_packed` merges their words with a few
shifts per request — and the batch evaluates through the model's
``packed_fn`` as words, so nothing on the whole path unpacks, re-packs, or
touches JSON.  Rows and packed requests never share a batch (a
representation change flushes the pending batch, exactly like a width
change); models without a ``packed_fn`` still accept packed submissions
via one ``unpack_bits`` on the coalesced words.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.engine.batching import coalesce_batches, split_batches
from repro.engine.bitpack import (
    concat_packed,
    mask_padding,
    n_words,
    unpack_bits,
)
from repro.serving.stats import ServerStats
from repro.utils.validation import check_binary_matrix

__all__ = [
    "AdmissionBudget",
    "BadRequestError",
    "BatchingQueue",
    "ServerOverloadedError",
    "ServerUnavailableError",
    "ServingError",
]


class ServingError(RuntimeError):
    """Base of the typed serving errors carried over the wire."""

    #: value of ``error.type`` in the protocol's error responses
    error_type = "internal"


class ServerOverloadedError(ServingError):
    """Admission control shed this request; retry later with backoff."""

    error_type = "overloaded"


class BadRequestError(ServingError):
    """The request was malformed (shape, dtype, unknown op)."""

    error_type = "bad_request"


class ServerUnavailableError(ServingError):
    """This server is draining (or stopped) and admits no new work.

    Unlike :class:`ServerOverloadedError`, backing off and retrying the
    *same* endpoint is pointless — a draining server never recovers, so a
    client behind a router should be re-routed to another replica
    immediately.  The router does exactly that.
    """

    error_type = "unavailable"


class AdmissionBudget:
    """A sample budget shared by every queue of a multi-model server.

    Loop-confined by design: all of a server's queues live on one event
    loop, and both :meth:`try_reserve` (at admission) and :meth:`release`
    (at batch completion) run on it, so plain integers suffice — no lock.

    The idle-oversized exception mirrors the per-queue one: a request
    larger than the whole budget is admitted when *nothing* is in flight
    anywhere, because shedding it could never succeed on retry.

    Weighted-fair shares
    ====================

    ``weights`` (settable live through :meth:`set_weights` — this is the
    rebalancer's knob) splits the budget between *keys*, one per hosted
    model.  A keyed reservation is bounded both by the whole budget and by
    its key's share ``max(1, round(max_samples * w / sum(w)))``; keys
    absent from the mapping (and key-less reservations) see only the total
    bound.  Shares are soft in one direction — the idle-oversized
    exception applies per key, so a request bigger than its model's share
    is admitted when that model has nothing in flight — and hard in the
    other: a model at its share sheds even while the box is idle
    elsewhere, which is precisely what lets the rebalancer *reserve*
    headroom for a latency-sensitive tenant.
    """

    def __init__(
        self,
        max_samples: int,
        weights: Optional[Dict[str, float]] = None,
    ) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.max_samples = max_samples
        self._outstanding = 0
        self._per_key: Dict[str, int] = {}
        self._shares: Dict[str, int] = {}
        self._weights: Dict[str, float] = {}
        if weights:
            self.set_weights(weights)

    @property
    def outstanding(self) -> int:
        """Samples currently reserved across every participating queue."""
        return self._outstanding

    def outstanding_for(self, key: str) -> int:
        """Samples currently reserved under ``key``."""
        return self._per_key.get(key, 0)

    @property
    def weights(self) -> Dict[str, float]:
        """The live per-key weight mapping (a copy)."""
        return dict(self._weights)

    def set_weights(self, weights: Dict[str, float]) -> None:
        """Re-partition the budget between keys (the rebalancer's knob).

        Weights are relative; each listed key's share becomes
        ``max(1, round(max_samples * w / sum(w)))``.  Takes effect at the
        next reservation — samples already reserved are never clawed back,
        an over-share key simply sheds until it drains below its new
        share.  An empty mapping removes all per-key bounds.
        """
        cleaned = {}
        for key, weight in weights.items():
            if not isinstance(key, str):
                raise ValueError("weight keys must be model-name strings")
            weight = float(weight)
            if weight < 0 or weight != weight:  # negative or NaN
                raise ValueError(
                    f"weight for {key!r} must be a non-negative number"
                )
            cleaned[key] = weight
        total = sum(cleaned.values())
        self._weights = cleaned
        if total <= 0:
            self._shares = {}
            return
        self._shares = {
            key: max(1, round(self.max_samples * weight / total))
            for key, weight in cleaned.items()
        }

    def share_of(self, key: Optional[str]) -> int:
        """The sample bound ``key`` reserves under (the whole budget for
        key-less reservations and keys without a configured weight)."""
        if key is None:
            return self.max_samples
        return self._shares.get(key, self.max_samples)

    def try_reserve(self, k: int, key: Optional[str] = None) -> bool:
        """Reserve ``k`` samples; False when the shared budget — or, for a
        weighted ``key``, its share — is exhausted."""
        if self._outstanding + k > self.max_samples and self._outstanding > 0:
            return False
        if key is not None and key in self._shares:
            held = self._per_key.get(key, 0)
            # per-key idle-oversized mirror: a request larger than its
            # model's share is admitted while that model holds nothing
            if held + k > self._shares[key] and held > 0:
                return False
        self._outstanding += k
        if key is not None:
            self._per_key[key] = self._per_key.get(key, 0) + k
        return True

    def release(self, k: int, key: Optional[str] = None) -> None:
        self._outstanding -= k
        if key is not None and key in self._per_key:
            held = self._per_key[key] - k
            if held <= 0:
                del self._per_key[key]
            else:
                self._per_key[key] = held


@dataclass
class _Pending:
    payload: np.ndarray  # (k, F) rows, or (F, n_words(k)) packed words
    n_samples: int
    packed: bool
    future: asyncio.Future
    enqueued_at: float

    @property
    def batch_key(self):
        """Entries sharing a coalesced batch must agree on this.

        Rows and packed words can never share one matrix, and neither can
        two feature widths — a mismatch flushes the pending batch first
        (the newcomer starts a fresh one), mirroring the width rule of the
        row path.
        """
        width = self.payload.shape[0] if self.packed else self.payload.shape[1]
        return (self.packed, width)


class BatchingQueue:
    """Coalesce concurrent ``submit`` calls into shared batch evaluations.

    Parameters
    ----------
    batch_fn:
        ``(n, F) -> array with first axis n`` — labels, scores, anything
        sliceable along the sample axis.  Runs on the queue's executor
        thread, never on the event loop.
    max_batch:
        Flush as soon as this many samples are queued.
    max_wait_us:
        Longest time (microseconds) a request waits for co-travellers.
    max_queue:
        Admission bound in admitted-but-uncompleted samples (queued plus
        evaluating); beyond it requests are shed with
        :class:`ServerOverloadedError`.
    stats:
        Optional shared :class:`~repro.serving.stats.ServerStats`; a private
        one is created otherwise.
    budget:
        Optional :class:`AdmissionBudget` shared with other queues; admitted
        samples also reserve from it, so a multi-model server's total
        in-flight work stays bounded whatever the per-model traffic mix.
    budget_key:
        The key this queue's reservations carry into the shared budget —
        the model's name, in a registry — so weighted-fair shares
        (:meth:`AdmissionBudget.set_weights`) can bound each model
        individually.  ``None`` reserves against only the total bound.
    packed_fn:
        Optional ``(packed_words, n_samples) -> array with first axis
        n_samples`` fast path for :meth:`submit_packed`: the coalesced
        ``(F, n_words(n))`` uint64 matrix goes to the model *as words* —
        no unpack, no re-pack.  Its output must mean the same thing as
        ``batch_fn``'s (labels with labels, scores with scores).  Without
        it, packed submissions fall back to one ``unpack_bits`` plus
        ``batch_fn`` — still no JSON anywhere on the path.
    """

    def __init__(
        self,
        batch_fn: Callable[[np.ndarray], np.ndarray],
        *,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        max_queue: int = 1024,
        stats: Optional[ServerStats] = None,
        budget: Optional[AdmissionBudget] = None,
        budget_key: Optional[str] = None,
        packed_fn: Optional[Callable[[np.ndarray, int], np.ndarray]] = None,
    ) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_wait_us < 0:
            raise ValueError("max_wait_us must be non-negative")
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        self._batch_fn = batch_fn
        self._packed_fn = packed_fn
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us
        self.max_queue = max_queue
        self.stats = stats if stats is not None else ServerStats()
        self._budget = budget
        self._budget_key = budget_key
        self._pending: List[_Pending] = []
        self._queued_samples = 0
        self._inflight_samples = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        self._inflight: set = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving"
        )
        self._closed = False

    # ------------------------------------------------------------ admission
    @property
    def packed_path(self) -> bool:
        """Whether packed submissions evaluate as words (a ``packed_fn``
        was given) rather than through the unpack fallback."""
        return self._packed_fn is not None

    @property
    def queued_samples(self) -> int:
        """Samples currently waiting for a flush (not yet evaluating)."""
        return self._queued_samples

    @property
    def backlog_samples(self) -> int:
        """Admitted-but-uncompleted samples — what ``max_queue`` bounds."""
        return self._queued_samples + self._inflight_samples

    def _admit(self, k: int) -> None:
        """Admission control for ``k`` samples (shared by both submit paths)."""
        backlog = self.backlog_samples
        if backlog + k > self.max_queue and backlog > 0:
            self.stats.observe_shed()
            raise ServerOverloadedError(
                f"server backlog holds {backlog} samples; admitting {k} "
                f"more would exceed the bound of {self.max_queue}"
            )
        if self._budget is not None and not self._budget.try_reserve(
            k, self._budget_key
        ):
            self.stats.observe_shed()
            key = self._budget_key
            share = self._budget.share_of(key)
            if key is not None and share < self._budget.max_samples:
                raise ServerOverloadedError(
                    f"model {key!r} holds "
                    f"{self._budget.outstanding_for(key)} of its "
                    f"{share}-sample admission share "
                    f"(box total {self._budget.outstanding}/"
                    f"{self._budget.max_samples}); admitting {k} more "
                    "would exceed it"
                )
            raise ServerOverloadedError(
                f"shared admission budget holds "
                f"{self._budget.outstanding} samples across all models; "
                f"admitting {k} more would exceed the bound of "
                f"{self._budget.max_samples}"
            )

    async def _enqueue(
        self, payload: np.ndarray, k: int, packed: bool
    ) -> np.ndarray:
        loop = asyncio.get_running_loop()
        entry = _Pending(
            payload, k, packed, loop.create_future(), time.perf_counter()
        )
        # Requests that can never share the pending batch's coalesced matrix
        # (different feature width, or rows vs packed words) flush what is
        # queued and start a fresh batch, so a client with the wrong shape
        # fails alone instead of wedging co-travellers.
        if self._pending and entry.batch_key != self._pending[0].batch_key:
            self._flush_now(loop)
        self._pending.append(entry)
        self._queued_samples += k
        # A caller that disappears before the flush (abortive disconnect →
        # the connection handler cancels its request tasks) must not leave
        # its entry behind: the dead entry would hold queue backlog and its
        # shared-budget reservation until a batch happened to evaluate it,
        # and the engine would burn a batch slot computing answers nobody
        # reads.  The done-callback fires on cancellation; entries already
        # flushed to a batch are out of our hands (the batch's finally
        # releases them as always).
        entry.future.add_done_callback(self._discard_if_cancelled(entry))
        self.stats.observe_queue_depth(self.backlog_samples)
        if self._queued_samples >= self.max_batch:
            self._flush_now(loop)
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_wait_us / 1e6, self._on_timer, loop
            )
        return await entry.future

    async def submit(self, rows: np.ndarray) -> np.ndarray:
        """Queue ``rows`` (a ``(k, F)`` 0/1 matrix, ``k >= 1``) and await
        the per-request slice of the coalesced result.

        Raises :class:`BadRequestError` for malformed input and
        :class:`ServerOverloadedError` when admission control sheds the
        request.
        """
        if self._closed:
            raise RuntimeError("this BatchingQueue has been closed")
        try:
            rows = check_binary_matrix(rows, "rows")
        except ValueError as error:
            raise BadRequestError(str(error)) from error
        if rows.shape[0] == 0:
            raise BadRequestError("a request must carry at least one sample")
        self._admit(rows.shape[0])
        return await self._enqueue(rows, rows.shape[0], packed=False)

    async def submit_packed(
        self, packed: np.ndarray, n_samples: int
    ) -> np.ndarray:
        """Queue a *pre-packed* request and await its slice of the result.

        ``packed`` is the ``(F, n_words(n_samples))`` uint64 bit-plane
        matrix of :func:`~repro.engine.bitpack.pack_bits` — what the binary
        wire protocol carries.  Packed co-travellers are concatenated in
        the packed domain (:func:`~repro.engine.bitpack.concat_packed`)
        and fed to ``packed_fn`` as words; without a ``packed_fn`` the
        coalesced words are unpacked once and ``batch_fn`` runs as usual.
        Admission control, coalescing policy and stats are identical to
        :meth:`submit`.
        """
        if self._closed:
            raise RuntimeError("this BatchingQueue has been closed")
        words = np.asarray(packed)
        if words.ndim != 2:
            raise BadRequestError(
                f"packed payload must be 2-D, got shape {words.shape}"
            )
        if words.dtype != np.uint64:
            raise BadRequestError(
                f"packed payload must be uint64 words, got {words.dtype}"
            )
        if n_samples < 1:
            raise BadRequestError("a request must carry at least one sample")
        if words.shape[1] != n_words(n_samples):
            raise BadRequestError(
                f"{n_samples} samples need {n_words(n_samples)} words per "
                f"signal, got {words.shape[1]}"
            )
        self._admit(n_samples)
        return await self._enqueue(words, n_samples, packed=True)

    def _discard_if_cancelled(
        self, entry: _Pending
    ) -> Callable[[asyncio.Future], None]:
        def on_done(future: asyncio.Future) -> None:
            if not future.cancelled():
                return
            try:
                self._pending.remove(entry)
            except ValueError:
                return  # already flushed into a batch; its finally releases
            self._queued_samples -= entry.n_samples
            if self._budget is not None:
                self._budget.release(entry.n_samples, self._budget_key)

        return on_done

    # ------------------------------------------------------------- flushing
    def _on_timer(self, loop: asyncio.AbstractEventLoop) -> None:
        self._timer = None
        # A size-triggered flush may already have drained the queue between
        # scheduling and firing; flushing an empty queue is a no-op.
        self._flush_now(loop)

    def _flush_now(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        entries = self._pending
        self._pending = []
        self._inflight_samples += self._queued_samples
        self._queued_samples = 0
        task = loop.create_task(self._evaluate(entries))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    def _evaluate_packed_batch(
        self, entries: List[_Pending], n_samples: int
    ) -> np.ndarray:
        """Coalesce packed entries word-wise and evaluate (executor thread)."""
        if len(entries) == 1:
            # mask so a model's packed path never sees a client's padding
            # garbage (concat_packed masks internally for the multi case)
            words = mask_padding(entries[0].payload, n_samples)
        else:
            words = concat_packed(
                [entry.payload for entry in entries],
                [entry.n_samples for entry in entries],
            )
        if self._packed_fn is not None:
            return self._packed_fn(words, n_samples)
        return self._batch_fn(unpack_bits(words, n_samples))

    async def _evaluate(self, entries: List[_Pending]) -> None:
        n_samples = sum(entry.n_samples for entry in entries)
        loop = asyncio.get_running_loop()
        # Everything — coalesce, evaluation, scatter — stays inside one
        # try: any failure must resolve every caller's future (a hung
        # future blocks a client until its socket timeout) and must release
        # the admission backlog, or one bad batch wedges the queue forever.
        try:
            if entries[0].packed:
                bounds = []
                lo = 0
                for entry in entries:
                    bounds.append((lo, lo + entry.n_samples))
                    lo += entry.n_samples
                result = await loop.run_in_executor(
                    self._executor, self._evaluate_packed_batch, entries,
                    n_samples,
                )
            else:
                X, bounds = coalesce_batches(
                    [entry.payload for entry in entries]
                )
                result = await loop.run_in_executor(
                    self._executor, self._batch_fn, X
                )
            parts = split_batches(np.asarray(result), bounds)
        except Exception as error:  # noqa: BLE001 - forwarded to callers
            self.stats.observe_error(len(entries))
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_exception(error)
            return
        finally:
            self._inflight_samples -= n_samples
            if self._budget is not None:
                self._budget.release(n_samples, self._budget_key)
        finished = time.perf_counter()
        for entry, part in zip(entries, parts):
            if not entry.future.done():
                entry.future.set_result(part)
            self.stats.observe_latency((finished - entry.enqueued_at) * 1e6)
        self.stats.observe_batch(len(entries), n_samples)

    async def flush(self) -> None:
        """Force-evaluate whatever is queued and wait for it to finish."""
        self._flush_now(asyncio.get_running_loop())
        if self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    # -------------------------------------------------------------- cleanup
    async def close(self) -> None:
        """Drain queued work, reject new submits, release the executor."""
        if self._closed:
            return
        self._closed = True
        await self.flush()
        self._executor.shutdown(wait=True)
