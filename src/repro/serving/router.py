"""The cluster router: one front door over N replicated backend boxes.

:class:`RouterServer` is a :class:`~repro.serving.transport.FrameServer`
like the backends it fronts — it speaks both wire protocols *unchanged*, so
any existing :class:`~repro.serving.client.ServingClient` (JSON or binary)
points at the router instead of a backend and notices nothing.  What it
adds is the cluster layer the ROADMAP's many-boxes story needs:

Placement
    A static map ``model name → [(host, port), ...]`` of which backend
    replicas host which model.  The same endpoint may appear under many
    models (a multi-model box); the router keeps exactly one link (one
    multiplexed connection, one health state) per distinct endpoint.

Balancing
    Least-outstanding-requests: each predict goes to the healthy replica
    with the fewest requests currently in flight *through this router* —
    the cheapest load signal that still tracks real occupancy (a slow or
    draining box accumulates outstanding work and stops attracting more).

Health
    Active checks — a JSON ``ping`` per link every ``health_interval``
    seconds — eject a dead replica and reinstate it after
    ``reinstate_after`` consecutive successful probes; a probe answering
    with a non-``serving`` lifecycle state parks the link as *draining*
    (no new work, no ejection).  Failures observed on the request path
    eject immediately (passive), so the first lost request after a crash
    is also the last one that ever waits on that box.

Failover
    A predict that fails on one replica — connection refused, connection
    dropped mid-request, request timeout — is transparently resubmitted to
    the next-best replica (safe: predicts are pure evaluations).  A
    ``draining`` (typed ``unavailable``) rejection re-routes immediately
    with **no backoff** — the box told us it will never take the request,
    waiting is pure loss.  A shed (typed ``overloaded``) tries the other
    replicas first and only then backs off under the
    :class:`~repro.serving.retry.RetryPolicy`, because every replica
    shedding means the *cluster* is saturated and retrying instantly would
    only feed the overload.  Other typed errors (``bad_request``,
    ``model_not_found``, ``internal``) forward to the client untouched —
    they would fail identically on every replica.

Forwarding cost
    Binary replies are *not* decoded: the backend's raw reply frame is
    forwarded after an 8-byte request-id splice
    (:func:`~repro.serving.transport.replace_request_id`), so the packed
    protocol's zero-copy property survives the extra hop.

:class:`Rebalancer` closes the loop that the dynamically-partitioned
sharing paper (PAPERS.md) argues for: it periodically scrapes each
backend's per-model queue depth and latency, turns them into per-model
demand estimates (EWMA-smoothed), and pushes the resulting weights to
every backend's ``set_admission_weights`` op — re-partitioning each box's
shared :class:`~repro.serving.queue.AdmissionBudget` so admission capacity
follows the live traffic mix instead of a static split.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.serving.metrics_http import HttpMetricsListener
from repro.serving.queue import (
    ServerOverloadedError,
    ServerUnavailableError,
    ServingError,
)
from repro.serving.registry import ModelRegistry
from repro.serving.retry import RetryPolicy
from repro.serving.stats import _escape_label, _format_value
from repro.serving.transport import (
    BinaryRequest,
    FrameServer,
    RawBinaryReply,
    encode_error,
    encode_message,
    encode_predict_request,
    error_response,
    read_reply_frame,
    replace_request_id,
)

__all__ = ["BackendFailedError", "Rebalancer", "RouterServer"]

Endpoint = Tuple[str, int]


class BackendFailedError(ConnectionError):
    """A backend connection failed mid-request (router-internal signal).

    Never crosses the wire: the routing loop catches it, ejects the link,
    and fails the request over to the next replica.
    """


class _BackendConnection:
    """One multiplexed connection to a backend, demuxing replies by id.

    Many router-side requests share this socket (the backends pipeline);
    each request registers a future under its request id, the single read
    loop resolves them as replies arrive — JSON replies by their ``id``
    field, binary replies by the frame's request id, interleaved freely.
    Any read failure aborts every pending future with
    :class:`BackendFailedError`: a broken stream's remaining replies are
    undeliverable, and the fast collective failure is what lets the router
    re-route them before the client notices.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, asyncio.Future] = {}
        self._closed = False
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def open(
        cls, endpoint: Endpoint, connect_timeout: float
    ) -> "_BackendConnection":
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*endpoint), connect_timeout
            )
        except (OSError, asyncio.TimeoutError) as error:
            raise BackendFailedError(
                f"connect to {endpoint[0]}:{endpoint[1]} failed: "
                f"{type(error).__name__}: {error}"
            ) from error
        return cls(reader, writer)

    @property
    def alive(self) -> bool:
        return not self._closed

    async def request(
        self, request_id: int, frame: bytes
    ) -> Union[Dict[str, Any], RawBinaryReply]:
        """Send an already-framed request and await its demuxed reply."""
        if self._closed:
            raise BackendFailedError("backend connection already closed")
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(frame)
            await self._writer.drain()
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def _read_loop(self) -> None:
        try:
            while True:
                reply = await read_reply_frame(self._reader)
                if reply is None:  # backend hung up cleanly
                    break
                if isinstance(reply, RawBinaryReply):
                    rid = reply.request_id
                else:
                    rid = reply.get("id")
                future = self._pending.get(rid)
                if future is not None and not future.done():
                    future.set_result(reply)
        except Exception:  # noqa: BLE001 - any stream failure kills the link
            pass
        finally:
            self.abort("backend connection lost")

    def abort(self, reason: str = "backend connection aborted") -> None:
        """Close the socket and fail every pending request immediately."""
        if self._closed:
            return
        self._closed = True
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(BackendFailedError(reason))
        self._pending.clear()
        if not self._read_task.done():
            self._read_task.cancel()
        try:
            self._writer.close()
        except Exception:  # noqa: BLE001 - teardown best-effort
            pass


class _BackendLink:
    """One backend endpoint's routing state: connection, health, counters."""

    HEALTHY = "healthy"
    EJECTED = "ejected"
    DRAINING = "draining"

    def __init__(self, endpoint: Endpoint) -> None:
        self.endpoint = endpoint
        self.state = self.HEALTHY
        self.outstanding = 0  # requests in flight through this router
        self.forwarded = 0
        self.failures = 0
        self.ejections = 0
        self.probe_successes = 0
        self._conn: Optional[_BackendConnection] = None
        self._conn_lock = asyncio.Lock()

    @property
    def name(self) -> str:
        return f"{self.endpoint[0]}:{self.endpoint[1]}"

    async def connection(self, connect_timeout: float) -> _BackendConnection:
        """The live multiplexed connection, opened lazily (one opener at a
        time — concurrent requests wait on the lock and share the result)."""
        if self._conn is not None and self._conn.alive:
            return self._conn
        async with self._conn_lock:
            if self._conn is None or not self._conn.alive:
                self._conn = await _BackendConnection.open(
                    self.endpoint, connect_timeout
                )
        return self._conn

    def eject(self, reason: str) -> None:
        """Passively or actively mark this replica dead; kill its socket so
        every request still waiting on it fails over *now*."""
        if self.state != self.EJECTED:
            self.state = self.EJECTED
            self.ejections += 1
        self.probe_successes = 0
        if self._conn is not None:
            self._conn.abort(reason)
            self._conn = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.abort("router shutting down")
            self._conn = None


class RouterServer(FrameServer):
    """Route both wire protocols across replicated backend servers.

    Parameters
    ----------
    placement:
        ``{model name: [(host, port), ...]}`` — which replicas host which
        model.  The first listed model is the router's default (requests
        that name no model go there).
    retry:
        :class:`~repro.serving.retry.RetryPolicy` applied when *every*
        replica of a model sheds (``overloaded``); ``None`` forwards the
        shed to the client after one pass over the replicas.
    connect_timeout, request_timeout:
        Per-attempt bounds; a request that outlives ``request_timeout`` on
        one replica is failed over like a connection loss.
    health_interval, health_timeout, reinstate_after:
        Active health checking: probe every link each ``health_interval``
        seconds (0 disables the loop), treat a probe slower than
        ``health_timeout`` as failed, and put an ejected replica back after
        this many consecutive probe successes.
    rebalance_interval:
        When set, run a :class:`Rebalancer` pass every this many seconds.
    http_port:
        Optional ``/metrics`` + ``/healthz`` HTTP listener, exactly like
        the backend server's.
    """

    def __init__(
        self,
        placement: Mapping[str, Sequence[Endpoint]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        connect_timeout: float = 2.0,
        request_timeout: float = 30.0,
        health_interval: float = 0.5,
        health_timeout: float = 2.0,
        reinstate_after: int = 2,
        rebalance_interval: Optional[float] = None,
        backlog: int = 512,
    ) -> None:
        super().__init__(host=host, port=port, backlog=backlog)
        if not placement:
            raise ValueError("placement must map at least one model")
        self._links: Dict[Endpoint, _BackendLink] = {}
        self._placement: Dict[str, List[_BackendLink]] = {}
        for model, endpoints in placement.items():
            if not endpoints:
                raise ValueError(f"model {model!r} lists no replicas")
            replicas = []
            for endpoint in endpoints:
                endpoint = (str(endpoint[0]), int(endpoint[1]))
                link = self._links.get(endpoint)
                if link is None:
                    link = self._links[endpoint] = _BackendLink(endpoint)
                replicas.append(link)
            self._placement[model] = replicas
        self._default_model = next(iter(self._placement))
        self._retry = retry
        self._connect_timeout = connect_timeout
        self._request_timeout = request_timeout
        self._health_interval = health_interval
        self._health_timeout = health_timeout
        self._reinstate_after = max(1, int(reinstate_after))
        self._rebalance_interval = rebalance_interval
        self._rebalancer = Rebalancer(self)
        self.http_port = http_port
        self._http: Optional[HttpMetricsListener] = None
        self._health_task: Optional[asyncio.Task] = None
        self._rebalance_task: Optional[asyncio.Task] = None
        self._ids = itertools.count(1)
        # router-level counters (per-link ones live on the links)
        self.routed = 0
        self.failovers = 0
        self.rejected = 0

    # ------------------------------------------------------------ lifecycle
    async def _post_bind(self) -> None:
        if self._health_interval > 0:
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop()
            )
        if self._rebalance_interval is not None:
            self._rebalance_task = asyncio.get_running_loop().create_task(
                self._rebalance_loop()
            )
        if self.http_port is not None:
            self._http = HttpMetricsListener(
                self.render_metrics,
                host=self.host,
                port=self.http_port,
                state=lambda: self.state,
            )
            try:
                _, self.http_port = await self._http.start()
            except BaseException:
                self._http = None
                raise  # FrameServer.start runs full stop() and re-raises

    async def _pre_stop(self) -> None:
        for task in (self._health_task, self._rebalance_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
        self._health_task = None
        self._rebalance_task = None
        if self._http is not None:
            await self._http.stop()
            self._http = None

    async def _on_stop(self) -> None:
        for link in self._links.values():
            link.close()

    # ------------------------------------------------------------ inventory
    @property
    def models(self) -> List[str]:
        return list(self._placement)

    @property
    def default_model(self) -> str:
        return self._default_model

    def links(self) -> List[_BackendLink]:
        return list(self._links.values())

    def healthy_replicas(self, model: str) -> List[_BackendLink]:
        """The model's routable replicas, best (fewest outstanding) first."""
        return sorted(
            (
                link
                for link in self._placement.get(model, ())
                if link.state == _BackendLink.HEALTHY
            ),
            key=lambda link: link.outstanding,
        )

    def _resolve_model(self, name: Optional[str]) -> str:
        """The placement key ``name`` routes to.

        A version-pinned request (``"mnist@2"``) routes by its family name
        when the pin itself has no placement entry — the backend hosting
        the family resolves (or rejects) the specific version, so clients
        can pin versions through the router without the operator placing
        every version separately.  The forwarded request keeps the
        client's original (pinned) model name.
        """
        if name is None:
            return self._default_model
        if name not in self._placement:
            base, version = ModelRegistry.split_versioned(name)
            if version is not None and base in self._placement:
                return base
            raise ServingError(  # becomes model_not_found on the wire
                f"unknown model {name!r} "
                f"(routed: {sorted(self._placement)})"
            )
        return name

    def snapshot(self) -> Dict[str, Any]:
        """Router-level state for the ``stats`` op and the tests."""
        return {
            "state": self.state,
            "models": {
                model: [link.name for link in replicas]
                for model, replicas in self._placement.items()
            },
            "routed": self.routed,
            "failovers": self.failovers,
            "rejected": self.rejected,
            "backends": [
                {
                    "backend": link.name,
                    "state": link.state,
                    "outstanding": link.outstanding,
                    "forwarded": link.forwarded,
                    "failures": link.failures,
                    "ejections": link.ejections,
                }
                for link in self._links.values()
            ],
        }

    def render_metrics(self) -> str:
        """Router counters in Prometheus exposition format."""
        lines: List[str] = []

        def section(name: str, kind: str, rows) -> None:
            lines.append(f"# TYPE repro_router_{name} {kind}")
            for labels, value in rows:
                lines.append(
                    f"repro_router_{name}{{{labels}}} {_format_value(value)}"
                )

        by_link = [
            (f'backend="{_escape_label(link.name)}"', link)
            for link in self._links.values()
        ]
        section(
            "forwarded_total", "counter",
            ((labels, link.forwarded) for labels, link in by_link),
        )
        section(
            "failures_total", "counter",
            ((labels, link.failures) for labels, link in by_link),
        )
        section(
            "ejections_total", "counter",
            ((labels, link.ejections) for labels, link in by_link),
        )
        section(
            "outstanding", "gauge",
            ((labels, link.outstanding) for labels, link in by_link),
        )
        section(
            "healthy", "gauge",
            (
                (labels, 1 if link.state == _BackendLink.HEALTHY else 0)
                for labels, link in by_link
            ),
        )
        return "\n".join(lines) + "\n"

    # -------------------------------------------------------------- routing
    def _next_id(self) -> int:
        return next(self._ids) & 0xFFFFFFFF

    @staticmethod
    def _reply_error_type(
        reply: Union[Dict[str, Any], RawBinaryReply],
    ) -> Optional[str]:
        if isinstance(reply, RawBinaryReply):
            return reply.error_type
        if reply.get("ok"):
            return None
        return (reply.get("error") or {}).get("type", "internal")

    async def _attempt(
        self, link: _BackendLink, frame_for: Any
    ) -> Union[Dict[str, Any], RawBinaryReply]:
        """One try on one replica; raises :class:`BackendFailedError`,
        :class:`ServerUnavailableError` (backend draining) or
        :class:`ServerOverloadedError` (backend shed) for the routing loop
        to act on.  Everything else — success or a typed error that would
        fail identically elsewhere — is returned for forwarding."""
        # outstanding covers the *whole* attempt, connection dial included:
        # concurrent first requests must not all see a zero count and pile
        # onto one replica while its connection is still being opened
        link.outstanding += 1
        try:
            conn = await link.connection(self._connect_timeout)
            rid = self._next_id()
            try:
                reply = await asyncio.wait_for(
                    conn.request(rid, frame_for(rid)), self._request_timeout
                )
            except asyncio.TimeoutError:
                # the reply may still arrive someday, but this stream has an
                # unknown number of stragglers now — treat like a lost link
                conn.abort("request timed out through the router")
                raise BackendFailedError(
                    f"request to {link.name} timed out "
                    f"after {self._request_timeout}s"
                ) from None
        finally:
            link.outstanding -= 1
        error_type = self._reply_error_type(reply)
        if error_type == ServerUnavailableError.error_type:
            raise ServerUnavailableError(f"{link.name} is draining")
        if error_type == ServerOverloadedError.error_type:
            raise ServerOverloadedError(f"{link.name} shed the request")
        link.forwarded += 1
        return reply

    async def _route(
        self, model: str, frame_for: Any
    ) -> Union[Dict[str, Any], RawBinaryReply]:
        """Least-outstanding routing with failover, the router's heart.

        ``frame_for(rid)`` builds the wire frame carrying the router-side
        request id; it is called per attempt, so each replica sees a fresh
        id.  Loop structure: one pass tries every currently-healthy replica
        (best first); replicas that *fail* are ejected on the spot, ones
        that *shed* are remembered; after a pass where every answer was a
        shed, back off under the retry policy and re-pass — the cluster is
        saturated, and the bounded backoff is the router shedding load for
        it.  No routable replica at all is the typed ``unavailable`` error.
        """
        self.routed += 1
        attempts = 0
        delays = self._retry.delays() if self._retry is not None else iter(())
        while True:
            shed: Optional[ServerOverloadedError] = None
            candidates = self.healthy_replicas(model)
            for link in candidates:
                if link.state != _BackendLink.HEALTHY:
                    continue  # ejected by a concurrent request mid-pass
                attempts += 1
                try:
                    return await self._attempt(link, frame_for)
                except BackendFailedError:
                    link.failures += 1
                    link.eject("request-path failure")
                    self.failovers += 1
                    continue  # immediate failover, no backoff
                except ServerUnavailableError:
                    # the backend said "draining": it will answer control
                    # ops but never this predict — park it for the health
                    # loop and re-route with no backoff
                    link.state = _BackendLink.DRAINING
                    link.probe_successes = 0
                    self.failovers += 1
                    continue
                except ServerOverloadedError as error:
                    shed = error
                    continue
            if shed is not None:
                delay = next(delays, None)
                if delay is None:  # retry budget spent: forward the shed
                    raise shed
                await asyncio.sleep(delay)
                continue
            self.rejected += 1
            raise ServerUnavailableError(
                f"no routable replica for model {model!r} after "
                f"{attempts} attempt(s)"
            )

    # ------------------------------------------------------------- dispatch
    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op", "predict")
        if op == "predict":
            return await self._route_json(request)
        if op == "ping":
            return {"ok": True, "state": self.state, "role": "router"}
        if op == "stats":
            return {"ok": True, "router": self.snapshot()}
        if op == "stats_text":
            return {"ok": True, "text": self.render_metrics()}
        if op == "list_models":
            models = []
            for model, replicas in self._placement.items():
                entry: Dict[str, Any] = {
                    "name": model,
                    "replicas": [link.name for link in replicas],
                }
                base, version = ModelRegistry.split_versioned(model)
                if version is not None:
                    entry["family"] = base
                    entry["version"] = version
                models.append(entry)
            return {
                "ok": True,
                "default": self._default_model,
                "models": models,
            }
        if op == "drain":
            await self.drain()
            return {"ok": True, "state": self.state}
        return error_response("bad_request", f"unknown op {op!r}")

    async def _route_json(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.state != self.SERVING:
            return error_response(
                ServerUnavailableError.error_type,
                f"this router is {self.state} and admits no new work",
            )
        model = request.get("model")
        if model is not None and not isinstance(model, str):
            return error_response(
                "bad_request", "the model field must be a string"
            )
        try:
            resolved = self._resolve_model(model)
        except ServingError as error:
            return error_response("model_not_found", str(error))

        def frame_for(rid: int) -> bytes:
            forwarded = dict(request)
            forwarded["id"] = rid  # the router's id, not the client's
            # preserve a client's version pin ("m@2"); only fill in the
            # resolved name when the client named no model at all
            forwarded["model"] = resolved if model is None else model
            return encode_message(forwarded)

        try:
            reply = await self._route(resolved, frame_for)
        except ServingError as error:
            return error_response(error.error_type, str(error))
        response = dict(reply)
        # the base FrameServer echoes the *client's* id; the router-side id
        # must not leak through (nor appear when the client sent none)
        response.pop("id", None)
        return response

    async def _dispatch_binary(self, request: BinaryRequest) -> bytes:
        client_rid = request.request_id
        if self.state != self.SERVING:
            return encode_error(
                ServerUnavailableError.error_type,
                f"this router is {self.state} and admits no new work",
                request_id=client_rid,
            )
        try:
            resolved = self._resolve_model(request.model)
        except ServingError as error:
            return encode_error(
                "model_not_found", str(error), request_id=client_rid
            )

        def frame_for(rid: int) -> bytes:
            return encode_predict_request(
                request.packed,
                request.n_samples,
                model=resolved if request.model is None else request.model,
                return_scores=request.return_scores,
                request_id=rid,
            )

        try:
            reply = await self._route(resolved, frame_for)
        except ServingError as error:
            return encode_error(
                error.error_type, str(error), request_id=client_rid
            )
        # zero-copy forward: splice the client's id into the raw frame
        return replace_request_id(reply.frame, client_rid)

    # --------------------------------------------------------------- health
    async def _probe(self, link: _BackendLink) -> Optional[str]:
        """One active health probe; the backend's lifecycle state, or
        ``None`` when the probe failed."""
        try:
            conn = await link.connection(self._health_timeout)
            rid = self._next_id()
            reply = await asyncio.wait_for(
                conn.request(rid, encode_message({"op": "ping", "id": rid})),
                self._health_timeout,
            )
        except (BackendFailedError, asyncio.TimeoutError):
            return None
        if not isinstance(reply, dict) or not reply.get("ok"):
            return None
        return reply.get("state", "serving")

    async def check_health_once(self) -> None:
        """Probe every link once and apply ejection/reinstatement."""
        for link in self.links():
            state = await self._probe(link)
            if state is None:
                link.failures += 1
                link.eject("health probe failed")
                continue
            if state != "serving":
                link.state = _BackendLink.DRAINING
                link.probe_successes = 0
                continue
            if link.state == _BackendLink.HEALTHY:
                continue
            link.probe_successes += 1
            if link.probe_successes >= self._reinstate_after:
                link.state = _BackendLink.HEALTHY
                link.probe_successes = 0

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self._health_interval)
            try:
                await self.check_health_once()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - the loop must survive
                pass

    async def _rebalance_loop(self) -> None:
        while True:
            await asyncio.sleep(self._rebalance_interval)
            try:
                await self.rebalance_once()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - the loop must survive
                pass

    async def rebalance_once(self) -> Dict[str, float]:
        """Run one :class:`Rebalancer` pass (also used by the demo/tests)."""
        return await self._rebalancer.rebalance_once()


class Rebalancer:
    """Re-weight per-model admission shares from scraped backend stats.

    Each pass scrapes every healthy link's per-model ``stats`` op and folds
    the signals into a per-model *demand* estimate::

        demand_m = (backlog_samples + completed since last pass)
                   * (1 + p95 latency share)

    — queued-plus-served traffic measures volume, the latency factor leans
    extra capacity toward the model whose requests currently wait longest
    (the dynamically-partitioned sharing argument: give the squeezed
    tenant headroom *before* its queue melts down).  Demands are smoothed
    with an EWMA (``smoothing`` is the weight of the new observation),
    floored at ``min_share`` of the total so a quiet model is never
    starved to zero, normalised, and pushed to every healthy backend's
    ``set_admission_weights`` op — turning each box's shared
    :class:`~repro.serving.queue.AdmissionBudget` into a live, traffic-
    tracking partition.
    """

    def __init__(
        self,
        router: RouterServer,
        *,
        smoothing: float = 0.5,
        min_share: float = 0.05,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if not 0.0 <= min_share < 1.0:
            raise ValueError("min_share must be in [0, 1)")
        self._router = router
        self._smoothing = smoothing
        self._min_share = min_share
        self._demand: Dict[str, float] = {}
        self._completed: Dict[Tuple[str, str], float] = {}

    async def _scrape(
        self, link: _BackendLink, model: str
    ) -> Optional[Dict[str, Any]]:
        try:
            conn = await link.connection(self._router._connect_timeout)
            rid = self._router._next_id()
            reply = await asyncio.wait_for(
                conn.request(
                    rid,
                    encode_message({"op": "stats", "model": model, "id": rid}),
                ),
                self._router._health_timeout,
            )
        except (BackendFailedError, asyncio.TimeoutError):
            return None
        if not isinstance(reply, dict) or not reply.get("ok"):
            return None
        return reply

    async def rebalance_once(self) -> Dict[str, float]:
        """One scrape → demand → push cycle; returns the pushed weights."""
        router = self._router
        observed: Dict[str, float] = {}
        max_p95 = 0.0
        p95: Dict[str, float] = {}
        for model in router.models:
            volume = 0.0
            worst_p95 = 0.0
            for link in router.healthy_replicas(model):
                reply = await self._scrape(link, model)
                if reply is None:
                    continue
                stats = reply.get("stats") or {}
                completed = float(stats.get("samples_completed", 0))
                key = (model, link.name)
                delta = max(0.0, completed - self._completed.get(key, 0.0))
                self._completed[key] = completed
                volume += float(reply.get("backlog_samples", 0)) + delta
                latency = stats.get("latency_us") or {}
                worst_p95 = max(worst_p95, float(latency.get("p95", 0.0)))
            observed[model] = volume
            p95[model] = worst_p95
            max_p95 = max(max_p95, worst_p95)
        if not observed:
            return {}
        for model, volume in observed.items():
            latency_share = p95[model] / max_p95 if max_p95 > 0 else 0.0
            demand = volume * (1.0 + latency_share)
            previous = self._demand.get(model)
            if previous is None:
                self._demand[model] = demand
            else:
                self._demand[model] = (
                    self._smoothing * demand
                    + (1.0 - self._smoothing) * previous
                )
        total = sum(self._demand.values())
        if total <= 0:  # no traffic anywhere: even split
            weights = {model: 1.0 for model in self._demand}
        else:
            floor = self._min_share * total
            weights = {
                model: max(floor, demand)
                for model, demand in self._demand.items()
            }
        norm = sum(weights.values())
        weights = {model: w / norm for model, w in weights.items()}
        await self._push(weights)
        return weights

    async def _push(self, weights: Dict[str, float]) -> None:
        router = self._router
        frame_payload = {"op": "set_admission_weights", "weights": weights}
        for link in router.links():
            if link.state != _BackendLink.HEALTHY:
                continue
            try:
                conn = await link.connection(router._connect_timeout)
                rid = router._next_id()
                payload = dict(frame_payload)
                payload["id"] = rid
                await asyncio.wait_for(
                    conn.request(rid, encode_message(payload)),
                    router._health_timeout,
                )
            except (BackendFailedError, asyncio.TimeoutError):
                continue  # a lost push self-heals on the next pass
