"""Client-side retry: bounded exponential backoff with jitter.

Overload in this stack is a *typed, cheap* signal — admission control sheds
with :class:`~repro.serving.queue.ServerOverloadedError` before the request
touches the engine — so the correct client reaction is to back off and
retry, not to hammer.  :class:`RetryPolicy` packages that reaction:
exponentially growing delays, capped, with multiplicative jitter so a
thousand clients shed by the same burst do not retry in lockstep.

The policy is deliberately opt-in (``ServingClient(..., retry=...)``):
retrying is a *traffic* decision — a latency-sensitive caller may prefer
the immediate typed error — and silently resubmitting would hide overload
from load generators and tests that measure shed behaviour.

The policy object is immutable and reusable across clients; the injectable
``sleep`` and ``rng`` hooks exist so tests can drive it deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple, Type

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with multiplicative jitter.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (so ``1`` disables retrying).
    base_delay:
        Seconds before the first retry.
    multiplier:
        Growth factor per retry.
    max_delay:
        Cap on any single delay, applied before jitter.
    jitter:
        Fraction of each delay randomised: the actual sleep is drawn
        uniformly from ``[delay * (1 - jitter), delay * (1 + jitter)]``.
        ``0`` makes the schedule deterministic.
    sleep, seed:
        Injection points for tests — a fake clock and a fixed jitter seed.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    sleep: Callable[[float], None] = field(repr=False, default=time.sleep)
    seed: Optional[int] = field(repr=False, default=None)

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def delays(self) -> Iterator[float]:
        """The jittered backoff schedule: ``max_attempts - 1`` sleeps."""
        rng = as_rng(self.seed) if self.seed is not None else np.random.default_rng()
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            jittered = delay
            if self.jitter:
                jittered *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
            yield max(0.0, jittered)
            delay = min(delay * self.multiplier, self.max_delay)

    def call(
        self,
        fn: Callable,
        *,
        retry_on: Tuple[Type[BaseException], ...],
    ):
        """Run ``fn()``, retrying on ``retry_on`` with backoff between tries.

        The final attempt's exception propagates unchanged, so callers see
        the same typed error they would without a policy — just later.
        """
        schedule = self.delays()
        while True:
            try:
                return fn()
            except retry_on:
                delay = next(schedule, None)
                if delay is None:  # attempts exhausted: the typed error
                    raise  # propagates unchanged
                self.sleep(delay)
