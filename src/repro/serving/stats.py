"""Serving metrics: latency percentiles, batch occupancy, shed counts.

:class:`ServerStats` is the single collector threaded through the batching
queue and the socket server.  It is deliberately boring — plain counters, a
bounded latency reservoir and an occupancy histogram — because it is read
from the serving hot path: one :meth:`ServerStats.observe_batch` call per
*batch* (not per request) plus one latency append per request.

What the numbers mean
=====================

``p50/p95/p99`` (microseconds)
    Request latency measured from admission into the queue to the moment the
    result future resolves — i.e. queueing delay + batch wait + evaluation,
    but *not* socket/JSON time (the client measures that end to end).  The
    reservoir keeps the most recent :attr:`ServerStats.max_samples`
    latencies, so percentiles reflect recent traffic, not the whole process
    lifetime.

``batch occupancy``
    Histogram of samples-per-evaluated-batch.  A healthy coalescing server
    under load shows mass near ``max_batch``; mass stuck at 1 means requests
    are not overlapping and the server is paying per-request engine cost.

``shed``
    Requests rejected by admission control (queue full).  Sheds are cheap by
    design — the request never touches the engine — so a non-zero shed count
    with stable percentiles is the intended overload behaviour.

``queue depth``
    Sampled at every admission; ``max_queue_depth`` is the high-water mark
    of the *backlog* — samples admitted but not yet completed, queued and
    evaluating alike (the same quantity the queue's ``max_queue`` bounds,
    so the ratio of the two is how close the server came to shedding).
"""

from __future__ import annotations

import math
import threading
from collections import Counter, deque
from typing import Dict, Mapping, Optional

import numpy as np

__all__ = ["ServerStats", "render_stats_text"]


class ServerStats:
    """Thread-safe collector for the batching server's operational metrics.

    Parameters
    ----------
    max_samples:
        Size of the latency reservoir; once full, the oldest latencies are
        dropped so percentiles track recent traffic.
    """

    def __init__(self, max_samples: int = 65536) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._latencies_us: deque = deque(maxlen=max_samples)
        self._occupancy: Counter = Counter()
        self._requests_completed = 0
        self._samples_completed = 0
        self._batches = 0
        self._shed = 0
        self._errors = 0
        self._max_queue_depth = 0

    # ------------------------------------------------------------- recording
    def observe_queue_depth(self, backlog_samples: int) -> None:
        """Record the backlog (admitted-but-uncompleted samples) at an
        admission; the snapshot keeps the high-water mark."""
        with self._lock:
            if backlog_samples > self._max_queue_depth:
                self._max_queue_depth = backlog_samples

    def observe_batch(self, n_requests: int, n_samples: int) -> None:
        """Record one evaluated batch and its occupancy."""
        with self._lock:
            self._batches += 1
            self._occupancy[n_samples] += 1
            self._requests_completed += n_requests
            self._samples_completed += n_samples

    def observe_latency(self, latency_us: float) -> None:
        """Record one request's admission-to-result latency."""
        with self._lock:
            self._latencies_us.append(float(latency_us))

    def observe_shed(self, n_requests: int = 1) -> None:
        """Record requests rejected by admission control."""
        with self._lock:
            self._shed += n_requests

    def observe_error(self, n_requests: int = 1) -> None:
        """Record requests that failed inside evaluation."""
        with self._lock:
            self._errors += n_requests

    # --------------------------------------------------------------- reading
    @property
    def requests_completed(self) -> int:
        with self._lock:
            return self._requests_completed

    @property
    def shed(self) -> int:
        with self._lock:
            return self._shed

    @property
    def errors(self) -> int:
        with self._lock:
            return self._errors

    @staticmethod
    def _percentiles_of(samples: np.ndarray, quantiles) -> Dict[str, float]:
        if samples.size == 0:
            return {f"p{q:g}": 0.0 for q in quantiles}
        values = np.percentile(samples, quantiles)
        return {f"p{q:g}": float(v) for q, v in zip(quantiles, values)}

    def percentiles(self, quantiles=(50.0, 95.0, 99.0)) -> Dict[str, float]:
        """Latency percentiles in microseconds over the current reservoir.

        Returns ``{"p50": ..., "p95": ..., "p99": ...}`` (NaN-free: an empty
        reservoir yields ``0.0`` so snapshots stay JSON-clean).
        """
        with self._lock:
            samples = np.fromiter(self._latencies_us, dtype=np.float64)
        return self._percentiles_of(samples, quantiles)

    def _mean_occupancy_locked(self) -> float:
        return self._samples_completed / self._batches if self._batches else 0.0

    def mean_occupancy(self) -> float:
        """Average samples per evaluated batch (0.0 before the first batch)."""
        with self._lock:
            return self._mean_occupancy_locked()

    def snapshot(self) -> Dict[str, object]:
        """One JSON-serialisable dict with every metric (for the stats op).

        Atomic: every field — counters *and* latency percentiles — is read
        under one lock acquisition, so a scrape racing a batch completion
        sees one consistent moment (percentiles computed outside the lock
        used to tear against the counters, e.g. ``latency_samples`` ahead
        of the reservoir the percentiles were taken from).  The percentile
        math itself runs on a copy, after the lock is released.
        """
        with self._lock:
            samples = np.fromiter(self._latencies_us, dtype=np.float64)
            occupancy = {str(k): v for k, v in sorted(self._occupancy.items())}
            state = {
                "requests_completed": self._requests_completed,
                "samples_completed": self._samples_completed,
                "batches": self._batches,
                "shed": self._shed,
                "errors": self._errors,
                "max_queue_depth": self._max_queue_depth,
                "latency_samples": samples.size,
                "batch_occupancy": occupancy,
                "mean_batch_occupancy": self._mean_occupancy_locked(),
            }
        state["latency_us"] = self._percentiles_of(samples, (50.0, 95.0, 99.0))
        return state


#: snapshot keys rendered as Prometheus counters (monotonic over a process
#: lifetime) vs gauges; latency percentiles get the quantile-label treatment
_COUNTER_KEYS = (
    "requests_completed",
    "samples_completed",
    "batches",
    "shed",
    "errors",
)
_GAUGE_KEYS = ("max_queue_depth", "latency_samples", "mean_batch_occupancy")


def _escape_label(value: str) -> str:
    # the Prometheus exposition format requires \\, \" and \n escaped in
    # label values — a raw line feed would split the sample line in two
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    """Exact for integer-valued metrics: ``%g``'s 6 significant digits
    would silently round counters past 999,999, corrupting scraped
    ``rate()``/``increase()`` math on a long-lived server.

    Non-finite values use the Prometheus exposition spellings ``+Inf`` /
    ``-Inf`` / ``NaN`` — ``int(value)`` would raise ``OverflowError`` /
    ``ValueError`` on them, turning one poisoned gauge into a failed
    scrape of *every* metric.
    """
    if not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value):
        return str(int(value))
    return f"{value:.10g}"


def render_stats_text(
    snapshots: Mapping[str, Mapping[str, object]],
    *,
    prefix: str = "repro_serving",
    backends: Optional[Mapping[str, str]] = None,
    threads: Optional[Mapping[str, int]] = None,
    versions: Optional[Mapping[str, int]] = None,
    shadows: Optional[Mapping[str, Mapping[str, int]]] = None,
) -> str:
    """Prometheus-style plain-text rendering of per-model stats snapshots.

    ``snapshots`` maps model name → :meth:`ServerStats.snapshot` dict; the
    output is one exposition-format block per metric with the model name as
    a label, e.g.::

        # TYPE repro_serving_requests_completed counter
        repro_serving_requests_completed{model="default"} 1024
        # TYPE repro_serving_latency_us gauge
        repro_serving_latency_us{model="default",quantile="0.5"} 2481.0

    ``backends`` optionally maps model name → active evaluation backend
    (``"numpy"`` / ``"native"`` / ``"native-mt"``); each mapped model gets
    an info-style gauge
    ``{prefix}_model_backend{{model="x",backend="native"}} 1`` so a
    scrape can tell which engine is serving which tenant.  ``threads``
    optionally maps model name → the engine's in-process thread count
    (the native-mt word-shard fan-out), exported as the
    ``{prefix}_model_threads`` gauge.

    ``versions`` optionally maps model name → the family's *serving*
    version, exported as the ``{prefix}_model_version`` gauge — a scrape
    sees exactly when a hot-swap flipped the pointer.  ``shadows``
    optionally maps model name → the cumulative shadow counters
    (``{"requests": ..., "divergences": ...}``), exported as the
    monotonic ``{prefix}_shadow_requests`` / ``{prefix}_shadow_divergences``
    counters (cumulative across shadow re-targets, so ``rate()`` math
    survives a candidate change).

    This is the payload behind the wire protocol's ``stats_text`` op — a
    scrape endpoint for operational tooling without adding an HTTP server
    to the serving process (point a sidecar/agent at a one-shot client
    call; see docs/serving.md).
    """
    lines = []
    models = sorted(snapshots)

    def section(metric: str, kind: str, rows) -> None:
        emitted_header = False
        for labels, value in rows:
            if not emitted_header:
                lines.append(f"# TYPE {prefix}_{metric} {kind}")
                emitted_header = True
            label_text = ",".join(
                f'{k}="{_escape_label(str(v))}"' for k, v in labels
            )
            lines.append(
                f"{prefix}_{metric}{{{label_text}}} {_format_value(value)}"
            )

    for key in _COUNTER_KEYS:
        section(
            key,
            "counter",
            (
                ((("model", name),), float(snapshots[name].get(key, 0)))
                for name in models
            ),
        )
    for key in _GAUGE_KEYS:
        section(
            key,
            "gauge",
            (
                ((("model", name),), float(snapshots[name].get(key, 0)))
                for name in models
            ),
        )
    section(
        "latency_us",
        "gauge",
        (
            (
                (("model", name), ("quantile", f"{float(q[1:]) / 100:g}")),
                float(value),
            )
            for name in models
            for q, value in sorted(
                snapshots[name].get("latency_us", {}).items()
            )
        ),
    )
    if backends:
        section(
            "model_backend",
            "gauge",
            (
                ((("model", name), ("backend", str(backends[name]))), 1.0)
                for name in sorted(backends)
            ),
        )
    if threads:
        section(
            "model_threads",
            "gauge",
            (
                ((("model", name),), float(threads[name]))
                for name in sorted(threads)
            ),
        )
    if versions:
        section(
            "model_version",
            "gauge",
            (
                ((("model", name),), float(versions[name]))
                for name in sorted(versions)
            ),
        )
    if shadows:
        for metric, key in (
            ("shadow_requests", "requests"),
            ("shadow_divergences", "divergences"),
        ):
            section(
                metric,
                "counter",
                (
                    ((("model", name),), float(shadows[name].get(key, 0)))
                    for name in sorted(shadows)
                ),
            )
    return "\n".join(lines) + ("\n" if lines else "")
