"""The model registry: many named models behind one server.

:class:`ModelRegistry` is the multi-tenant heart of the serving layer.  It
maps model names to :class:`RegisteredModel` records — each owning a
:class:`~repro.serving.queue.BatchingQueue` with its *own* coalescing policy
(``max_batch`` / ``max_wait_us`` / ``max_queue``) and its own
:class:`~repro.serving.stats.ServerStats` — while a single optional
:class:`~repro.serving.queue.AdmissionBudget` bounds total in-flight samples
across every model, so one hot tenant cannot starve the box.

The registry is deliberately transport-agnostic: the socket server resolves
the wire protocol's optional ``model`` field through :meth:`resolve` (absent
→ the default model, unknown → the typed :class:`ModelNotFoundError` that
crosses the wire as ``error.type == "model_not_found"``), and everything
else it needs — the queue to submit to, whether the model has a scores
path, which stats to snapshot — hangs off the returned record.

Model *evaluation* sharing happens one layer down: every model's batch
function typically closes over a :class:`~repro.engine.parallel.ShardedEngine`
view attached to one shared :class:`~repro.engine.parallel.WorkerPool`, so
N models share one set of worker processes while keeping N independent
queues up here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.serving.queue import (
    AdmissionBudget,
    BatchingQueue,
    ServingError,
)
from repro.serving.stats import ServerStats

__all__ = ["ModelNotFoundError", "ModelRegistry", "RegisteredModel"]


class ModelNotFoundError(ServingError):
    """The request named a model this server does not host."""

    error_type = "model_not_found"


@dataclass
class RegisteredModel:
    """One hosted model: its queue, its stats, its wire-visible description."""

    name: str
    queue: BatchingQueue
    scores_mode: bool
    stats: ServerStats
    backend: str = "numpy"

    def describe(self) -> Dict[str, Any]:
        """The ``list_models`` wire entry for this model."""
        return {
            "name": self.name,
            "scores": self.scores_mode,
            "packed": self.queue.packed_path,
            "backend": self.backend,
            "max_batch": self.queue.max_batch,
            "max_wait_us": self.queue.max_wait_us,
            "max_queue": self.queue.max_queue,
        }


class ModelRegistry:
    """Name → model mapping with a default model and a shared budget.

    Parameters
    ----------
    budget:
        Optional shared :class:`~repro.serving.queue.AdmissionBudget`; every
        registered model's queue reserves from it.
    max_batch, max_wait_us, max_queue:
        Registry-level defaults applied when :meth:`register` is not given
        per-model values.

    The first registered model becomes the default; ``default=True`` on a
    later :meth:`register` re-points it.
    """

    def __init__(
        self,
        *,
        budget: Optional[AdmissionBudget] = None,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        max_queue: int = 1024,
    ) -> None:
        self.budget = budget
        self._defaults = {
            "max_batch": max_batch,
            "max_wait_us": max_wait_us,
            "max_queue": max_queue,
        }
        self._models: Dict[str, RegisteredModel] = {}
        self._default_name: Optional[str] = None

    # ------------------------------------------------------------ population
    def register(
        self,
        name: str,
        batch_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        *,
        scores_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        packed_fn: Optional[Callable[[np.ndarray, int], np.ndarray]] = None,
        max_batch: Optional[int] = None,
        max_wait_us: Optional[float] = None,
        max_queue: Optional[int] = None,
        stats: Optional[ServerStats] = None,
        default: bool = False,
        backend: str = "numpy",
    ) -> RegisteredModel:
        """Host ``name`` behind its own queue; returns the record.

        Exactly one of ``batch_fn`` (labels) and ``scores_fn`` (per-class
        decision scores, labels by argmax) must be given.  ``packed_fn``
        optionally adds the binary protocol's zero-copy path — a
        ``(packed_words, n_samples)`` function whose output means the same
        thing as the given evaluation function's (scores with
        ``scores_fn``, labels with ``batch_fn``).  ``backend`` is purely
        descriptive — which evaluation engine the functions run on
        (``"numpy"`` or ``"native"``) — surfaced in :meth:`describe` and
        the ``stats_text`` exposition.  Per-model knobs fall back to the
        registry defaults.
        """
        if not isinstance(name, str) or not name:
            raise ValueError("model name must be a non-empty string")
        if name in self._models:
            raise ValueError(f"model {name!r} is already registered")
        if (batch_fn is None) == (scores_fn is None):
            raise ValueError("provide exactly one of batch_fn and scores_fn")
        scores_mode = scores_fn is not None
        entry = RegisteredModel(
            name=name,
            queue=BatchingQueue(
                scores_fn if scores_mode else batch_fn,
                max_batch=(
                    self._defaults["max_batch"] if max_batch is None else max_batch
                ),
                max_wait_us=(
                    self._defaults["max_wait_us"]
                    if max_wait_us is None
                    else max_wait_us
                ),
                max_queue=(
                    self._defaults["max_queue"] if max_queue is None else max_queue
                ),
                stats=stats,
                budget=self.budget,
                budget_key=name,
                packed_fn=packed_fn,
            ),
            scores_mode=scores_mode,
            stats=stats,
            backend=backend,
        )
        entry.stats = entry.queue.stats  # the queue created one if None
        self._models[name] = entry
        if default or self._default_name is None:
            self._default_name = name
        return entry

    def unregister(self, name: str) -> Optional[RegisteredModel]:
        """Drop a model; returns its record (caller closes the queue).

        Unregistering the *default* model clears the default rather than
        silently re-pointing it: model-less requests would otherwise start
        hitting an arbitrary surviving model — wrong answers, not errors.
        Explicitly re-point with ``register(..., default=True)`` (the next
        registration also becomes the default while none is set).
        """
        entry = self._models.pop(name, None)
        if name == self._default_name:
            self._default_name = None
        return entry

    # ------------------------------------------------------------ resolution
    @property
    def default_name(self) -> Optional[str]:
        return self._default_name

    @property
    def names(self) -> List[str]:
        return list(self._models)

    def __len__(self) -> int:
        return len(self._models)

    def resolve(self, name: Optional[str]) -> RegisteredModel:
        """The model a request addressed: ``None`` → default, unknown → typed.

        Raises :class:`ModelNotFoundError` — which crosses the wire as the
        ``model_not_found`` error type — for unknown names and for the
        no-models-registered case.
        """
        if name is None:
            name = self._default_name
            if name is None:
                if self._models:
                    raise ModelNotFoundError(
                        "this server has no default model (hosted: "
                        f"{sorted(self._models)}); name one in the request "
                        "or register with default=True"
                    )
                raise ModelNotFoundError("this server hosts no models")
        entry = self._models.get(name)
        if entry is None:
            raise ModelNotFoundError(
                f"unknown model {name!r} (hosted: {sorted(self._models)})"
            )
        return entry

    def entries(self) -> List[RegisteredModel]:
        return list(self._models.values())

    # --------------------------------------------------------------- cleanup
    async def flush_all(self) -> None:
        """Force-evaluate every model's queued work and wait for it — the
        drain step: everything admitted completes, nothing new is taken
        (the server stops admissions before calling this)."""
        for entry in self.entries():
            await entry.queue.flush()

    async def close(self) -> None:
        """Drain and close every model's queue."""
        for entry in self.entries():
            await entry.queue.close()
        self._models = {}
        self._default_name = None
