"""The model registry: versioned model families behind one server.

:class:`ModelRegistry` is the multi-tenant heart of the serving layer.  It
maps model names to *version families*: each family keeps a chain of
:class:`RegisteredModel` records — every version owning its own
:class:`~repro.serving.queue.BatchingQueue` — plus a single **serving
pointer** that decides which version answers unpinned requests.  A single
optional :class:`~repro.serving.queue.AdmissionBudget` bounds total
in-flight samples across every family (all versions of a family share the
family name as their budget key), so one hot tenant cannot starve the box.

Live lifecycle
==============

``register(name, version=...)`` adds a *standby* version to an existing
family (the first registration of a name creates the family with that
version serving).  :meth:`promote` flips the serving pointer **atomically
between batches**: the flip is a synchronous pointer swap on the event
loop, and the server's predict paths have no await point between resolving
the serving record and entering the queue's admission — so every request
either fully admitted to the old version (and completes there) or resolves
the new one.  The displaced version drains (its queue closes, completing
everything admitted) and then *retires*: its ``on_retire`` callback runs —
the hook that detaches its sharded engine from the shared
:class:`~repro.engine.parallel.WorkerPool` — and the version leaves the
chain.

:meth:`set_shadow` mirrors a sampled fraction of a family's traffic to a
standby candidate *after* the primary reply is on the wire (no client
latency added); outcomes land in the family's
:class:`~repro.serving.lifecycle.DivergenceStore`.  :meth:`promote_canary`
turns that evidence into an automatic verdict under a
:class:`~repro.serving.lifecycle.CanaryPolicy` — promote on a clean
candidate, roll back (shadow cleared, candidate retired, primary
untouched) on a divergent one.  Every transition is recorded in the
family's :class:`~repro.serving.lifecycle.LifecycleLog`.

Resolution
==========

The registry stays transport-agnostic: the socket server resolves the wire
protocol's optional ``model`` field through :meth:`resolve` (absent → the
default family's serving version, unknown → the typed
:class:`ModelNotFoundError`).  A ``"name@version"`` string pins a specific
*live* version — the debugging door for comparing a standby against the
primary by hand; draining/retired versions resolve as not-found.

Model *evaluation* sharing happens one layer down: every version's batch
function typically closes over a
:class:`~repro.engine.parallel.ShardedEngine` view attached to one shared
:class:`~repro.engine.parallel.WorkerPool`, so N families × V versions
share one set of worker processes while keeping independent queues up
here.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.serving.lifecycle import (
    CanaryPolicy,
    DivergenceStore,
    LifecycleLog,
    compare_outputs,
)
from repro.serving.queue import (
    AdmissionBudget,
    BatchingQueue,
    ServingError,
)
from repro.serving.stats import ServerStats

__all__ = [
    "ModelNotFoundError",
    "ModelRegistry",
    "RegisteredModel",
    "SERVING",
    "STANDBY",
    "DRAINING",
    "RETIRED",
]


class ModelNotFoundError(ServingError):
    """The request named a model this server does not host."""

    error_type = "model_not_found"


#: version states: exactly one SERVING version per family; STANDBY versions
#: are live (pinnable, shadowable, promotable); DRAINING versions are
#: completing already-admitted work on the way out; RETIRED is terminal.
SERVING = "serving"
STANDBY = "standby"
DRAINING = "draining"
RETIRED = "retired"


@dataclass
class RegisteredModel:
    """One hosted model version: its queue, stats, wire-visible description."""

    name: str
    queue: BatchingQueue
    scores_mode: bool
    stats: ServerStats
    backend: str = "numpy"
    #: in-process thread count of the evaluation engine (the native-mt
    #: word-shard fan-out; 1 for single-threaded backends)
    threads: int = 1
    #: vector lane count of the generated code (words per statement;
    #: 1 for scalar backends)
    unroll: int = 1
    version: int = 1
    state: str = SERVING
    #: runs exactly once when this version retires (drained and removed) —
    #: the worker-pool detach hook; exceptions are logged, never raised.
    on_retire: Optional[Callable[[], Any]] = None

    def describe(self) -> Dict[str, Any]:
        """The ``list_models`` wire entry for this model version."""
        return {
            "name": self.name,
            "version": self.version,
            "state": self.state,
            "scores": self.scores_mode,
            "packed": self.queue.packed_path,
            "backend": self.backend,
            "threads": self.threads,
            "unroll": self.unroll,
            "max_batch": self.queue.max_batch,
            "max_wait_us": self.queue.max_wait_us,
            "max_queue": self.queue.max_queue,
        }


class _ModelFamily:
    """One model name's version chain plus its lifecycle state."""

    def __init__(self, name: str, scores_mode: bool) -> None:
        self.name = name
        self.scores_mode = scores_mode
        self.versions: Dict[int, RegisteredModel] = {}
        self.serving_version: int = 0
        self.stats: Optional[ServerStats] = None
        self.shadow_version: Optional[int] = None
        self.shadow_fraction: float = 1.0
        self.divergences = DivergenceStore()
        self.log = LifecycleLog()
        self.canary_task: Optional[asyncio.Task] = None
        #: pinged after every recorded shadow observation — what a pending
        #: canary watcher sleeps on (event-driven, not polled)
        self.shadow_seen = asyncio.Event()

    def serving_entry(self) -> RegisteredModel:
        return self.versions[self.serving_version]


class ModelRegistry:
    """Name → version family mapping with a default family and shared budget.

    Parameters
    ----------
    budget:
        Optional shared :class:`~repro.serving.queue.AdmissionBudget`; every
        registered version's queue reserves from it under the *family name*
        (versions of one family share one admission share).
    max_batch, max_wait_us, max_queue:
        Registry-level defaults applied when :meth:`register` is not given
        per-model values.

    The first registered family becomes the default; ``default=True`` on a
    later :meth:`register` re-points it.  All lifecycle mutators are meant
    to run on the server's event loop (they are synchronous pointer flips
    plus scheduled drain tasks); off-loop callers — registration before
    ``start()``, direct test drivers — work too, with drain work deferred
    to the next ``flush_all``/``close``.
    """

    def __init__(
        self,
        *,
        budget: Optional[AdmissionBudget] = None,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        max_queue: int = 1024,
    ) -> None:
        self.budget = budget
        self._defaults = {
            "max_batch": max_batch,
            "max_wait_us": max_wait_us,
            "max_queue": max_queue,
        }
        self._families: Dict[str, _ModelFamily] = {}
        self._default_name: Optional[str] = None
        self._tasks: set = set()
        self._deferred: List = []
        #: shadow sampling RNG — swap in a seeded one for deterministic tests
        self._rng = random.Random()

    # ------------------------------------------------------------ population
    def register(
        self,
        name: str,
        batch_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        *,
        scores_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        packed_fn: Optional[Callable[[np.ndarray, int], np.ndarray]] = None,
        max_batch: Optional[int] = None,
        max_wait_us: Optional[float] = None,
        max_queue: Optional[int] = None,
        stats: Optional[ServerStats] = None,
        default: bool = False,
        backend: str = "numpy",
        threads: int = 1,
        unroll: int = 1,
        version: Optional[int] = None,
        on_retire: Optional[Callable[[], Any]] = None,
    ) -> RegisteredModel:
        """Host a model version behind its own queue; returns the record.

        Exactly one of ``batch_fn`` (labels) and ``scores_fn`` (per-class
        decision scores, labels by argmax) must be given.  ``packed_fn``
        optionally adds the binary protocol's zero-copy path.  The first
        registration of ``name`` creates the family with this version
        (default 1) serving; registering an existing name **requires an
        explicit new** ``version=`` and adds it as a *standby* — traffic
        only moves on :meth:`promote` / :meth:`promote_canary`.  Standby
        versions must match the family's scores mode (shadow comparison
        would be meaningless otherwise) and share the family's
        :class:`~repro.serving.stats.ServerStats` unless given their own —
        shared stats keep the family's counters monotonic across flips.
        ``on_retire`` runs once when the version drains out (the
        worker-pool detach hook).  Per-model knobs fall back to the
        registry defaults.
        """
        if not isinstance(name, str) or not name:
            raise ValueError("model name must be a non-empty string")
        if "@" in name:
            raise ValueError(
                "model names must not contain '@' (reserved for "
                "name@version pinning); pass version= instead"
            )
        family = self._families.get(name)
        if family is not None and version is None:
            raise ValueError(
                f"model {name!r} is already registered; pass version= to "
                "add a candidate version"
            )
        if (batch_fn is None) == (scores_fn is None):
            raise ValueError("provide exactly one of batch_fn and scores_fn")
        scores_mode = scores_fn is not None
        version = 1 if version is None else int(version)
        if version < 1:
            raise ValueError("version must be a positive integer")
        if family is not None:
            if version in family.versions:
                raise ValueError(
                    f"model {name!r} already has a version {version}"
                )
            if scores_mode != family.scores_mode:
                raise ValueError(
                    f"model {name!r} versions must share one output mode "
                    f"({'scores' if family.scores_mode else 'labels'})"
                )
            if stats is None:
                stats = family.stats
        entry = RegisteredModel(
            name=name,
            queue=BatchingQueue(
                scores_fn if scores_mode else batch_fn,
                max_batch=(
                    self._defaults["max_batch"] if max_batch is None else max_batch
                ),
                max_wait_us=(
                    self._defaults["max_wait_us"]
                    if max_wait_us is None
                    else max_wait_us
                ),
                max_queue=(
                    self._defaults["max_queue"] if max_queue is None else max_queue
                ),
                stats=stats,
                budget=self.budget,
                budget_key=name,
                packed_fn=packed_fn,
            ),
            scores_mode=scores_mode,
            stats=stats,
            backend=backend,
            threads=threads,
            unroll=unroll,
            version=version,
            state=SERVING if family is None else STANDBY,
            on_retire=on_retire,
        )
        entry.stats = entry.queue.stats  # the queue created one if None
        if family is None:
            family = _ModelFamily(name, scores_mode)
            family.serving_version = version
            family.stats = entry.stats
            self._families[name] = family
        family.versions[version] = entry
        family.log.record(
            "registered", version=version, state=entry.state, backend=backend
        )
        if default or self._default_name is None:
            self._default_name = name
        return entry

    def unregister(self, name: str) -> List[RegisteredModel]:
        """Drop a whole family — every version; returns the records (the
        caller closes their queues and fires their retire hooks).

        Unregistering the *default* family clears the default rather than
        silently re-pointing it: model-less requests would otherwise start
        hitting an arbitrary surviving model — wrong answers, not errors.
        Explicitly re-point with ``register(..., default=True)`` (the next
        registration also becomes the default while none is set).
        """
        family = self._families.pop(name, None)
        if name == self._default_name:
            self._default_name = None
        if family is None:
            return []
        if family.canary_task is not None and not family.canary_task.done():
            family.canary_task.cancel()
        records = list(family.versions.values())
        family.versions = {}
        return records

    def unregister_version(self, name: str, version: int) -> Dict[str, Any]:
        """Retire one *non-serving* version: it drains and leaves the chain.

        The serving version cannot be unregistered — promote another first
        (or :meth:`unregister` the whole family).  A version that is the
        current shadow target loses that role first.
        """
        family = self._require_family(name)
        name = family.name
        entry = family.versions.get(int(version))
        if entry is None or entry.state in (DRAINING, RETIRED):
            raise ModelNotFoundError(
                f"model {name!r} has no live version {version} "
                f"(live: {sorted(family.versions)})"
            )
        if entry.version == family.serving_version:
            raise ValueError(
                f"version {version} is serving {name!r}; promote another "
                "version first or unregister the whole model"
            )
        if family.shadow_version == entry.version:
            self.clear_shadow(name)
        entry.state = DRAINING
        family.log.record("unregistered", version=entry.version)
        self._schedule(self._retire(family, entry))
        return {"model": name, "version": entry.version}

    # -------------------------------------------------------------- lifecycle
    def _require_family(self, name: Optional[str]) -> _ModelFamily:
        if name is None:
            name = self._default_name
        family = self._families.get(name) if name is not None else None
        if family is None:
            raise ModelNotFoundError(
                f"unknown model {name!r} (hosted: {sorted(self._families)})"
            )
        return family

    def promote(self, name: str, version: int) -> Dict[str, Any]:
        """Atomically point ``name``'s serving pointer at ``version``.

        The flip itself is synchronous — on the event loop no request can
        interleave between resolving the old record and admitting to its
        queue (the server's predict paths have no await there), so every
        in-flight request completes on the version that admitted it and
        every later request resolves the new one: no torn batches.  The
        displaced version drains in the background and then retires
        (queue closed, ``on_retire`` fired, version removed).  Promoting
        the already-serving version is a no-op.
        """
        family = self._require_family(name)
        name = family.name
        version = int(version)
        entry = family.versions.get(version)
        if entry is None or entry.state in (DRAINING, RETIRED):
            raise ModelNotFoundError(
                f"model {name!r} has no live version {version} "
                f"(live: {sorted(family.versions)})"
            )
        if version == family.serving_version:
            return {
                "model": name,
                "version": version,
                "previous": version,
                "changed": False,
            }
        old = family.serving_entry()
        # --- the atomic flip: two assignments, no awaits -----------------
        family.serving_version = version
        entry.state = SERVING
        old.state = DRAINING
        # -----------------------------------------------------------------
        if family.shadow_version == version:
            # the candidate just became primary; mirroring it to itself
            # would be noise
            self.clear_shadow(name)
        family.log.record("promoted", version=version, previous=old.version)
        family.log.record("draining", version=old.version)
        self._schedule(self._retire(family, old))
        return {
            "model": name,
            "version": version,
            "previous": old.version,
            "changed": True,
        }

    async def _retire(
        self, family: _ModelFamily, entry: RegisteredModel
    ) -> None:
        """Drain one displaced version and remove it from the chain."""
        await entry.queue.close()  # completes everything already admitted
        self.retire_record(entry)
        family.versions.pop(entry.version, None)
        family.log.record("retired", version=entry.version)

    def retire_record(self, entry: RegisteredModel) -> None:
        """Mark a record retired and fire its ``on_retire`` hook once."""
        if entry.state == RETIRED:
            return
        entry.state = RETIRED
        hook, entry.on_retire = entry.on_retire, None
        if hook is not None:
            try:
                hook()
            except Exception as error:  # noqa: BLE001 - never break serving
                family = self._families.get(entry.name)
                if family is not None:
                    family.log.record(
                        "retire_error",
                        version=entry.version,
                        error=f"{type(error).__name__}: {error}",
                    )

    # ----------------------------------------------------------- shadow mode
    def set_shadow(
        self, name: str, version: int, fraction: float = 1.0
    ) -> Dict[str, Any]:
        """Mirror ``fraction`` of ``name``'s primary traffic to standby
        ``version`` (after each primary reply; divergences are recorded).

        Re-targeting a *different* version resets the candidate-scoped
        divergence evidence; re-setting the same one keeps it (only the
        fraction changes).  Mirrored work draws admission from the same
        family budget share — a shed shadow counts as a shadow error, not
        a client-visible failure.
        """
        family = self._require_family(name)
        name = family.name
        version = int(version)
        entry = family.versions.get(version)
        if entry is None or entry.state in (DRAINING, RETIRED):
            raise ModelNotFoundError(
                f"model {name!r} has no live version {version} "
                f"(live: {sorted(family.versions)})"
            )
        if version == family.serving_version:
            raise ValueError(
                f"version {version} is already serving {name!r}; a shadow "
                "must be a standby version"
            )
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        family.shadow_version = version
        family.shadow_fraction = float(fraction)
        family.divergences.retarget(version)
        family.log.record("shadow_set", version=version, fraction=fraction)
        return {"model": name, "version": version, "fraction": fraction}

    def clear_shadow(self, name: str) -> Dict[str, Any]:
        """Stop mirroring ``name``'s traffic (idempotent)."""
        family = self._require_family(name)
        cleared = family.shadow_version
        if cleared is not None:
            family.shadow_version = None
            family.log.record("shadow_cleared", version=cleared)
        return {"model": family.name, "version": cleared}

    def spawn_shadow(
        self,
        entry: RegisteredModel,
        payload: np.ndarray,
        n_samples: int,
        packed: bool,
        primary_result: Any,
        primary_latency_us: float,
    ) -> Optional[asyncio.Task]:
        """Mirror one answered request to the shadow candidate, maybe.

        Called by the server *after* the primary result exists — the
        mirrored evaluation runs as a fire-and-forget task, so the client
        reply is never delayed.  Returns the task (tests await it) or
        ``None`` when not sampled / no shadow / not primary traffic
        (version-pinned requests are not mirrored).
        """
        if entry.state != SERVING:
            return None
        family = self._families.get(entry.name)
        if family is None or family.shadow_version is None:
            return None
        candidate = family.versions.get(family.shadow_version)
        if candidate is None or candidate.state != STANDBY:
            return None
        if (
            family.shadow_fraction < 1.0
            and self._rng.random() >= family.shadow_fraction
        ):
            return None
        return self._schedule(
            self._mirror(
                family,
                candidate,
                payload,
                n_samples,
                packed,
                primary_result,
                primary_latency_us,
            )
        )

    async def _mirror(
        self,
        family: _ModelFamily,
        candidate: RegisteredModel,
        payload: np.ndarray,
        n_samples: int,
        packed: bool,
        primary_result: Any,
        primary_latency_us: float,
    ) -> None:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        try:
            if packed:
                out = await candidate.queue.submit_packed(payload, n_samples)
            else:
                out = await candidate.queue.submit(payload)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - sheds, model failures
            family.divergences.observe_error(
                f"{type(error).__name__}: {error}"
            )
        else:
            latency_us = (loop.time() - t0) * 1e6
            mismatched, delta = compare_outputs(
                family.scores_mode, primary_result, out
            )
            family.divergences.observe(
                n_samples,
                mismatched,
                delta,
                latency_us / max(primary_latency_us, 1e-9),
            )
        family.shadow_seen.set()

    def shadow_report(self, name: Optional[str] = None) -> Dict[str, Any]:
        """The family's divergence evidence: store summary + recent records."""
        family = self._require_family(name)
        report = {
            "model": family.name,
            "serving_version": family.serving_version,
            "shadow_version": family.shadow_version,
            "fraction": family.shadow_fraction,
        }
        report.update(family.divergences.summary())
        report["records"] = family.divergences.records()
        return report

    def lifecycle_events(
        self, name: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """The family's bounded lifecycle event history, oldest first."""
        return self._require_family(name).log.events()

    # ------------------------------------------------------------ canary flow
    def promote_canary(
        self,
        name: str,
        version: int,
        policy: Optional[CanaryPolicy] = None,
    ) -> Dict[str, Any]:
        """Auto-promote or auto-roll-back ``version`` on divergence evidence.

        Ensures ``version`` is the family's shadow target (setting it —
        and resetting stale evidence — when it is not already), then:

        * with ``policy.min_requests`` of evidence already recorded, the
          verdict is immediate: **promoted** (shadow cleared, serving
          pointer flipped, old version drains) or **rolled_back** (shadow
          cleared, candidate retired, primary untouched);
        * otherwise a watcher task waits, event-driven, for the evidence
          to accumulate and then applies the same verdict — returned
          status is ``watching`` and the eventual decision lands in the
          lifecycle log (and shows in :meth:`shadow_report`).
        """
        policy = CanaryPolicy() if policy is None else policy
        family = self._require_family(name)
        name = family.name
        version = int(version)
        entry = family.versions.get(version)
        if entry is None or entry.state in (DRAINING, RETIRED):
            raise ModelNotFoundError(
                f"model {name!r} has no live version {version} "
                f"(live: {sorted(family.versions)})"
            )
        if version == family.serving_version:
            raise ValueError(
                f"version {version} is already serving {name!r}"
            )
        if family.shadow_version != version:
            self.set_shadow(name, version)
        family.log.record(
            "canary_started", version=version, policy=policy.describe()
        )
        if family.divergences.requests >= policy.min_requests:
            return self._decide_canary(family, version, policy)
        if family.canary_task is not None and not family.canary_task.done():
            family.canary_task.cancel()
        family.canary_task = self._schedule(
            self._watch_canary(family, version, policy)
        )
        return {
            "model": name,
            "version": version,
            "status": "watching",
            "observed": family.divergences.requests,
            "required": policy.min_requests,
        }

    async def _watch_canary(
        self, family: _ModelFamily, version: int, policy: CanaryPolicy
    ) -> None:
        while True:
            await family.shadow_seen.wait()
            family.shadow_seen.clear()
            if (
                family.shadow_version != version
                or self._families.get(family.name) is not family
            ):
                family.log.record("canary_aborted", version=version)
                return
            if family.divergences.requests >= policy.min_requests:
                self._decide_canary(family, version, policy)
                return

    def _decide_canary(
        self, family: _ModelFamily, version: int, policy: CanaryPolicy
    ) -> Dict[str, Any]:
        store = family.divergences
        rate = store.divergence_rate()
        p99 = store.p99_latency_ratio()
        reasons = []
        if rate > policy.max_divergence_rate:
            reasons.append(
                f"divergence rate {rate:.4f} > {policy.max_divergence_rate}"
            )
        if (
            policy.max_p99_ratio is not None
            and p99 > policy.max_p99_ratio
        ):
            reasons.append(
                f"p99 latency ratio {p99:.3f} > {policy.max_p99_ratio}"
            )
        verdict = {
            "model": family.name,
            "version": version,
            "observed": store.requests,
            "divergence_rate": rate,
            "p99_latency_ratio": p99,
        }
        self.clear_shadow(family.name)
        if not reasons:
            self.promote(family.name, version)
            family.log.record(
                "canary_promoted",
                version=version,
                divergence_rate=rate,
                p99_latency_ratio=p99,
            )
            verdict["status"] = "promoted"
            return verdict
        candidate = family.versions.get(version)
        if candidate is not None and candidate.state == STANDBY:
            candidate.state = DRAINING
            self._schedule(self._retire(family, candidate))
        family.log.record(
            "canary_rolled_back",
            version=version,
            reason="; ".join(reasons),
            divergence_rate=rate,
            p99_latency_ratio=p99,
        )
        verdict["status"] = "rolled_back"
        verdict["reason"] = "; ".join(reasons)
        return verdict

    # ------------------------------------------------------- task scheduling
    def _schedule(self, coro) -> Optional[asyncio.Task]:
        """Run ``coro`` as a tracked background task; off-loop callers get
        it deferred to the next ``flush_all``/``close``."""
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            self._deferred.append(coro)
            return None
        task = loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def _run_deferred(self) -> None:
        while self._deferred:
            coro = self._deferred.pop(0)
            try:
                await coro
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - best-effort deferred drains
                pass

    async def wait_idle(self) -> None:
        """Await every in-flight lifecycle task (drains, shadows, canary
        decisions) — the tests' quiesce point.  Loops because a finishing
        task can schedule another (a canary verdict schedules a drain);
        canary *watchers* waiting for future traffic are excluded so this
        never deadlocks on a quiet shadow."""
        await self._run_deferred()
        while True:
            current = asyncio.current_task()
            watchers = {
                f.canary_task for f in self._families.values()
            }
            pending = [
                t
                for t in self._tasks
                if not t.done() and t is not current and t not in watchers
            ]
            if not pending:
                return
            await asyncio.gather(*pending, return_exceptions=True)

    # ------------------------------------------------------------ resolution
    @property
    def default_name(self) -> Optional[str]:
        return self._default_name

    @property
    def names(self) -> List[str]:
        return list(self._families)

    def __len__(self) -> int:
        return len(self._families)

    @staticmethod
    def split_versioned(name: str) -> Tuple[str, Optional[int]]:
        """``"mnist@2"`` → ``("mnist", 2)``; no suffix → ``(name, None)``."""
        if "@" not in name:
            return name, None
        base, _, suffix = name.partition("@")
        try:
            return base, int(suffix)
        except ValueError:
            return name, None  # not a version pin; fails family lookup

    def resolve(self, name: Optional[str]) -> RegisteredModel:
        """The record a request addressed: ``None`` → the default family's
        serving version, ``"name"`` → that family's serving version,
        ``"name@V"`` → that family's live version ``V``.

        Raises :class:`ModelNotFoundError` — which crosses the wire as the
        ``model_not_found`` error type — for unknown names, unknown or
        draining/retired versions, and the no-models-registered case.
        """
        if name is None:
            name = self._default_name
            if name is None:
                if self._families:
                    raise ModelNotFoundError(
                        "this server has no default model (hosted: "
                        f"{sorted(self._families)}); name one in the request "
                        "or register with default=True"
                    )
                raise ModelNotFoundError("this server hosts no models")
        base, version = self.split_versioned(name)
        family = self._families.get(base)
        if family is None:
            raise ModelNotFoundError(
                f"unknown model {base!r} (hosted: {sorted(self._families)})"
            )
        if version is None:
            return family.serving_entry()
        entry = family.versions.get(version)
        if entry is None or entry.state in (DRAINING, RETIRED):
            raise ModelNotFoundError(
                f"model {base!r} has no live version {version} "
                f"(live: {sorted(family.versions)})"
            )
        return entry

    def entries(self) -> List[RegisteredModel]:
        """One record per family — the *serving* version (the back-compat
        single-version view ``list_models`` and metrics build on)."""
        return [f.serving_entry() for f in self._families.values()]

    def all_records(self) -> List[RegisteredModel]:
        """Every live record of every family, all versions."""
        return [
            entry
            for family in self._families.values()
            for entry in family.versions.values()
        ]

    def describe_family(self, name: str) -> Dict[str, Any]:
        """The serving version's wire entry plus the version-chain view."""
        family = self._require_family(name)
        info = family.serving_entry().describe()
        info["versions"] = [
            {"version": v, "state": family.versions[v].state}
            for v in sorted(family.versions)
        ]
        info["shadow"] = (
            None
            if family.shadow_version is None
            else {
                "version": family.shadow_version,
                "fraction": family.shadow_fraction,
            }
        )
        return info

    def serving_versions(self) -> Dict[str, int]:
        """Family name → serving version (the ``model_version`` gauge)."""
        return {
            name: family.serving_version
            for name, family in self._families.items()
        }

    def shadow_totals(self) -> Dict[str, Dict[str, int]]:
        """Family name → cumulative mirror counters (Prometheus counters;
        monotonic across shadow re-targets)."""
        return {
            name: {
                "requests": family.divergences.total_requests,
                "divergences": family.divergences.total_divergences,
            }
            for name, family in self._families.items()
        }

    # --------------------------------------------------------------- cleanup
    async def flush_all(self) -> None:
        """Force-evaluate every version's queued work and wait for it — the
        drain step: everything admitted completes, nothing new is taken
        (the server stops admissions before calling this).  Pending
        retirement drains complete here too."""
        await self._run_deferred()
        for entry in self.all_records():
            await entry.queue.flush()
        await self.wait_idle()

    async def close(self) -> None:
        """Drain and close every version's queue; cancel lifecycle tasks."""
        await self._run_deferred()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        for entry in self.all_records():
            await entry.queue.close()
            self.retire_record(entry)
        self._families = {}
        self._default_name = None
