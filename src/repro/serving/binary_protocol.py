"""Zero-copy binary wire protocol: the packed bit-plane layout *is* the payload.

The JSON protocol (:mod:`repro.serving.protocol`) un-does the paper's packed
representation on every request: the client unpacks its bits into a Python
list, JSON-encodes ~256 numbers per sample, and the server parses them back
and re-packs before the engine runs.  Measured at the 256-concurrent
benchmark, that encode/decode dominates wire cost.  This protocol ships the
``uint64`` bit-plane words of :func:`~repro.engine.bitpack.pack_bits`
directly: a client packs once, the server hands the words to the batching
queue (which concatenates them in the packed domain —
:func:`~repro.engine.bitpack.concat_packed`) and the engine never sees
bytes, lists or JSON.

Frame layout (all integers little-endian)::

    +-------+---------+--------+-------+---------------+
    | magic | version | opcode | flags | request id    |
    | 0xBF  | 1 byte  | 1 byte | 1 byte| uint32        |
    +-------+---------+--------+-------+---------------+
    | ... opcode-specific header and payload ...       |
    +--------------------------------------------------+

``magic`` (0xBF) is what lets binary and JSON frames coexist on one
listener: a JSON frame starts with the high byte of a 4-byte big-endian
length capped at 64 MiB, so its first byte is always <= 0x04 and can never
collide.  ``request id`` is echoed verbatim in the reply — pipelining
clients re-associate out-of-order completions with it, exactly like the
JSON protocol's ``id`` field (the cluster router re-stamps it with
:func:`~repro.serving.transport.replace_request_id` when forwarding).

Opcodes:

``OP_PREDICT`` (0x01), client -> server::

    u16 model-name length | u32 n_samples | u32 n_features
    | name bytes (UTF-8)  | n_features * n_words(n_samples) uint64 words

    An empty name routes to the server's default model.  ``flags`` bit 0
    requests per-class scores in the reply.  The words are the packed
    bit-plane layout of ``pack_bits(rows)`` — signals along the rows, 64
    samples per word; padding bits past ``n_samples`` may hold garbage
    (the server masks them).

``OP_REPLY`` (0x02), server -> client::

    u32 n_samples | u32 n_classes | n_samples int64 labels
    | n_samples * n_classes float64 scores   (only when flags bit 0 is set)

    Scores are raw IEEE doubles, so non-finite values survive the wire
    losslessly (the JSON protocol must reject them instead).

``OP_ERROR`` (0x03), server -> client::

    u8 error code | u16 message length | message bytes (UTF-8)

    Codes map one-to-one onto the JSON protocol's typed error strings
    (:data:`ERROR_CODES`), so both protocols raise the same exceptions
    client-side.

Every size field is validated against :data:`MAX_PAYLOAD_BYTES` (shared
with the JSON cap) *before* allocation, so a corrupt or hostile header
cannot make either side allocate gigabytes; truncation mid-frame raises
:class:`BinaryProtocolError`, a :class:`~repro.serving.protocol.ProtocolError`
subclass, so existing handlers keep working.

.. note::
   This module is a re-export shim: the codec itself lives in
   :mod:`repro.serving.transport` — the single framing implementation the
   client, the server and the cluster router all share — and nothing here
   adds behaviour.  Import from either name.
"""

from __future__ import annotations

from repro.serving.transport import (  # noqa: F401
    BINARY_MAGIC,
    BINARY_VERSION,
    BinaryProtocolError,
    BinaryReply,
    BinaryRequest,
    ERROR_CODES,
    FLAG_SCORES,
    MAX_MODEL_NAME_BYTES,
    MAX_PAYLOAD_BYTES,
    OP_ERROR,
    OP_PREDICT,
    OP_REPLY,
    _check_version,
    _COMMON,
    _ERROR_HEAD,
    _parse_predict,
    _parse_reply,
    _PREDICT_HEAD,
    _predict_sizes,
    _REPLY_HEAD,
    _reply_sizes,
    decode_reply,
    encode_error,
    encode_predict_request,
    encode_reply,
    read_frame,
    recv_reply,
)

__all__ = [
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "BinaryProtocolError",
    "BinaryReply",
    "BinaryRequest",
    "ERROR_CODES",
    "MAX_MODEL_NAME_BYTES",
    "MAX_PAYLOAD_BYTES",
    "OP_ERROR",
    "OP_PREDICT",
    "OP_REPLY",
    "decode_reply",
    "encode_error",
    "encode_predict_request",
    "encode_reply",
    "read_frame",
    "recv_reply",
]
