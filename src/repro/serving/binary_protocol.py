"""Zero-copy binary wire protocol: the packed bit-plane layout *is* the payload.

The JSON protocol (:mod:`repro.serving.protocol`) un-does the paper's packed
representation on every request: the client unpacks its bits into a Python
list, JSON-encodes ~256 numbers per sample, and the server parses them back
and re-packs before the engine runs.  Measured at the 256-concurrent
benchmark, that encode/decode dominates wire cost.  This module ships the
``uint64`` bit-plane words of :func:`~repro.engine.bitpack.pack_bits`
directly: a client packs once, the server hands the words to the batching
queue (which concatenates them in the packed domain —
:func:`~repro.engine.bitpack.concat_packed`) and the engine never sees
bytes, lists or JSON.

Frame layout (all integers little-endian)::

    +-------+---------+--------+-------+---------------+
    | magic | version | opcode | flags | request id    |
    | 0xBF  | 1 byte  | 1 byte | 1 byte| uint32        |
    +-------+---------+--------+-------+---------------+
    | ... opcode-specific header and payload ...       |
    +--------------------------------------------------+

``magic`` (0xBF) is what lets binary and JSON frames coexist on one
listener: a JSON frame starts with the high byte of a 4-byte big-endian
length capped at 64 MiB, so its first byte is always <= 0x04 and can never
collide.  ``request id`` is echoed verbatim in the reply — pipelining
clients re-associate out-of-order completions with it, exactly like the
JSON protocol's ``id`` field.

Opcodes:

``OP_PREDICT`` (0x01), client -> server::

    u16 model-name length | u32 n_samples | u32 n_features
    | name bytes (UTF-8)  | n_features * n_words(n_samples) uint64 words

    An empty name routes to the server's default model.  ``flags`` bit 0
    requests per-class scores in the reply.  The words are the packed
    bit-plane layout of ``pack_bits(rows)`` — signals along the rows, 64
    samples per word; padding bits past ``n_samples`` may hold garbage
    (the server masks them).

``OP_REPLY`` (0x02), server -> client::

    u32 n_samples | u32 n_classes | n_samples int64 labels
    | n_samples * n_classes float64 scores   (only when flags bit 0 is set)

    Scores are raw IEEE doubles, so non-finite values survive the wire
    losslessly (the JSON protocol must reject them instead).

``OP_ERROR`` (0x03), server -> client::

    u8 error code | u16 message length | message bytes (UTF-8)

    Codes map one-to-one onto the JSON protocol's typed error strings
    (:data:`ERROR_CODES`), so both protocols raise the same exceptions
    client-side.

Every size field is validated against :data:`MAX_PAYLOAD_BYTES` (shared
with the JSON cap) *before* allocation, so a corrupt or hostile header
cannot make either side allocate gigabytes; truncation mid-frame raises
:class:`BinaryProtocolError`, a :class:`~repro.serving.protocol.ProtocolError`
subclass, so existing handlers keep working.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.engine.bitpack import n_words
from repro.serving.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    _decode_body,
    _recv_exactly,
)

__all__ = [
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "BinaryProtocolError",
    "BinaryReply",
    "BinaryRequest",
    "ERROR_CODES",
    "MAX_MODEL_NAME_BYTES",
    "MAX_PAYLOAD_BYTES",
    "OP_ERROR",
    "OP_PREDICT",
    "OP_REPLY",
    "encode_error",
    "encode_predict_request",
    "encode_reply",
    "read_frame",
    "recv_reply",
]

#: First byte of every binary frame.  JSON frames lead with the high byte
#: of a big-endian length capped at 64 MiB (<= 0x04), so 0xBF is
#: unambiguous on a shared listener.
BINARY_MAGIC = 0xBF

BINARY_VERSION = 1

OP_PREDICT = 0x01
OP_REPLY = 0x02
OP_ERROR = 0x03

#: flags bit 0 on OP_PREDICT: "return scores"; on OP_REPLY: "scores follow"
FLAG_SCORES = 0x01

#: Cap on one frame's variable-size payload — shared with the JSON cap so
#: neither protocol admits larger requests than the other.
MAX_PAYLOAD_BYTES = MAX_MESSAGE_BYTES

MAX_MODEL_NAME_BYTES = 4096

#: wire error codes <-> the JSON protocol's typed error strings
ERROR_CODES = {
    1: "overloaded",
    2: "bad_request",
    3: "model_not_found",
    4: "internal",
}
_ERROR_CODE_OF = {name: code for code, name in ERROR_CODES.items()}

_COMMON = struct.Struct("<BBBBI")  # magic, version, opcode, flags, request id
_PREDICT_HEAD = struct.Struct("<HII")  # name length, n_samples, n_features
_REPLY_HEAD = struct.Struct("<II")  # n_samples, n_classes
_ERROR_HEAD = struct.Struct("<BH")  # error code, message length

_WORD = np.dtype("<u8")
_LABEL = np.dtype("<i8")
_SCORE = np.dtype("<f8")


class BinaryProtocolError(ProtocolError):
    """Malformed binary frame: bad version, bad sizes, or truncation."""


@dataclass
class BinaryRequest:
    """One decoded OP_PREDICT frame."""

    request_id: int
    model: Optional[str]  # None = the server's default model
    packed: np.ndarray  # (n_features, n_words(n_samples)) uint64
    n_samples: int
    return_scores: bool


@dataclass
class BinaryReply:
    """One decoded OP_REPLY frame."""

    request_id: int
    labels: np.ndarray  # (n_samples,) int64
    scores: Optional[np.ndarray]  # (n_samples, n_classes) float64 or None


# ------------------------------------------------------------------ encoding
def encode_predict_request(
    packed: np.ndarray,
    n_samples: int,
    *,
    model: Optional[str] = None,
    return_scores: bool = False,
    request_id: int = 0,
) -> bytes:
    """Frame one packed predict request.

    ``packed`` is the ``(n_features, n_words(n_samples))`` uint64 matrix
    from :func:`~repro.engine.bitpack.pack_bits` — it is shipped as raw
    little-endian words, no transformation.
    """
    words = np.ascontiguousarray(np.asarray(packed, dtype=np.uint64))
    if words.ndim != 2:
        raise BinaryProtocolError(
            f"packed must be 2-D, got shape {words.shape}"
        )
    if words.shape[1] != n_words(n_samples):
        raise BinaryProtocolError(
            f"{n_samples} samples need {n_words(n_samples)} words per "
            f"signal, got {words.shape[1]}"
        )
    name = (model or "").encode("utf-8")
    if len(name) > MAX_MODEL_NAME_BYTES:
        raise BinaryProtocolError(
            f"model name of {len(name)} bytes exceeds the "
            f"{MAX_MODEL_NAME_BYTES}-byte cap"
        )
    payload = words.astype(_WORD, copy=False).tobytes()
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise BinaryProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte cap"
        )
    flags = FLAG_SCORES if return_scores else 0
    return b"".join(
        (
            _COMMON.pack(
                BINARY_MAGIC, BINARY_VERSION, OP_PREDICT, flags, request_id
            ),
            _PREDICT_HEAD.pack(len(name), n_samples, words.shape[0]),
            name,
            payload,
        )
    )


def encode_reply(
    labels: np.ndarray,
    scores: Optional[np.ndarray] = None,
    *,
    request_id: int = 0,
) -> bytes:
    """Frame one predict reply (labels, optionally per-class scores)."""
    labels = np.ascontiguousarray(np.asarray(labels, dtype=np.int64))
    if labels.ndim != 1:
        raise BinaryProtocolError(
            f"labels must be 1-D, got shape {labels.shape}"
        )
    flags = 0
    n_classes = 0
    parts = [labels.astype(_LABEL, copy=False).tobytes()]
    if scores is not None:
        scores = np.ascontiguousarray(np.asarray(scores, dtype=np.float64))
        if scores.ndim != 2 or scores.shape[0] != labels.shape[0]:
            raise BinaryProtocolError(
                f"scores must be ({labels.shape[0]}, n_classes), "
                f"got shape {scores.shape}"
            )
        flags = FLAG_SCORES
        n_classes = scores.shape[1]
        parts.append(scores.astype(_SCORE, copy=False).tobytes())
    return b"".join(
        (
            _COMMON.pack(
                BINARY_MAGIC, BINARY_VERSION, OP_REPLY, flags, request_id
            ),
            _REPLY_HEAD.pack(labels.shape[0], n_classes),
            *parts,
        )
    )


def encode_error(
    error_type: str, message: str, *, request_id: int = 0
) -> bytes:
    """Frame one typed error (unknown types degrade to ``internal``)."""
    code = _ERROR_CODE_OF.get(error_type, _ERROR_CODE_OF["internal"])
    body = message.encode("utf-8")[:65535]
    return b"".join(
        (
            _COMMON.pack(BINARY_MAGIC, BINARY_VERSION, OP_ERROR, 0, request_id),
            _ERROR_HEAD.pack(code, len(body)),
            body,
        )
    )


# ------------------------------------------------------------------ decoding
def _check_version(version: int) -> None:
    if version != BINARY_VERSION:
        raise BinaryProtocolError(
            f"unsupported binary protocol version {version} "
            f"(this side speaks {BINARY_VERSION})"
        )


def _predict_sizes(
    name_len: int, samples: int, features: int
) -> int:
    """Validate an OP_PREDICT header, returning the payload byte count."""
    if name_len > MAX_MODEL_NAME_BYTES:
        raise BinaryProtocolError(
            f"model name of {name_len} bytes exceeds the "
            f"{MAX_MODEL_NAME_BYTES}-byte cap"
        )
    payload = features * n_words(samples) * 8
    if payload > MAX_PAYLOAD_BYTES:
        raise BinaryProtocolError(
            f"frame announces {payload} payload bytes, "
            f"cap is {MAX_PAYLOAD_BYTES}"
        )
    return payload


def _reply_sizes(samples: int, n_classes: int, flags: int) -> Tuple[int, int]:
    labels_bytes = samples * 8
    scores_bytes = samples * n_classes * 8 if flags & FLAG_SCORES else 0
    if labels_bytes + scores_bytes > MAX_PAYLOAD_BYTES:
        raise BinaryProtocolError(
            f"frame announces {labels_bytes + scores_bytes} payload bytes, "
            f"cap is {MAX_PAYLOAD_BYTES}"
        )
    return labels_bytes, scores_bytes


def _parse_predict(
    flags: int, request_id: int, head: bytes, name: bytes, payload: bytes
) -> BinaryRequest:
    _, samples, features = _PREDICT_HEAD.unpack(head)
    packed = np.frombuffer(payload, dtype=_WORD).reshape(
        features, n_words(samples)
    )
    return BinaryRequest(
        request_id=request_id,
        model=name.decode("utf-8") if name else None,
        packed=packed,
        n_samples=samples,
        return_scores=bool(flags & FLAG_SCORES),
    )


def _parse_reply(
    flags: int, request_id: int, head: bytes, body: bytes
) -> BinaryReply:
    samples, n_classes = _REPLY_HEAD.unpack(head)
    labels_bytes, _ = _reply_sizes(samples, n_classes, flags)
    labels = np.frombuffer(body[:labels_bytes], dtype=_LABEL).astype(
        np.int64, copy=False
    )
    scores = None
    if flags & FLAG_SCORES:
        scores = np.frombuffer(body[labels_bytes:], dtype=_SCORE).reshape(
            samples, n_classes
        )
    return BinaryReply(request_id=request_id, labels=labels, scores=scores)


# ------------------------------------------------------------------- asyncio
async def read_frame(
    reader: asyncio.StreamReader,
) -> Union[None, Dict[str, Any], BinaryRequest]:
    """Read one frame of *either* protocol from a shared listener.

    Returns ``None`` on clean EOF before a frame, a ``dict`` for a JSON
    frame, or a :class:`BinaryRequest` for a binary predict frame.  The
    first byte discriminates: :data:`BINARY_MAGIC` can never open a JSON
    length header (the 64 MiB cap keeps that byte <= 0x04).
    """
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError:
        return None  # clean EOF between frames
    if first[0] != BINARY_MAGIC:
        # JSON frame: `first` is the length header's high byte
        try:
            rest = await reader.readexactly(3)
        except asyncio.IncompleteReadError as error:
            raise ProtocolError("connection closed mid-header") from error
        (length,) = struct.unpack(">I", first + rest)
        if length > MAX_MESSAGE_BYTES:
            raise ProtocolError(
                f"frame announces {length} bytes, cap is {MAX_MESSAGE_BYTES}"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise ProtocolError("connection closed mid-message") from error
        return _decode_body(body)
    try:
        version, opcode, flags, request_id = struct.unpack(
            "<BBBI", await reader.readexactly(_COMMON.size - 1)
        )
        _check_version(version)
        if opcode != OP_PREDICT:
            raise BinaryProtocolError(
                f"unexpected opcode 0x{opcode:02x} from a client "
                "(only OP_PREDICT crosses this direction)"
            )
        head = await reader.readexactly(_PREDICT_HEAD.size)
        name_len, samples, features = _PREDICT_HEAD.unpack(head)
        payload_len = _predict_sizes(name_len, samples, features)
        name = await reader.readexactly(name_len) if name_len else b""
        payload = await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as error:
        raise BinaryProtocolError(
            "connection closed mid-binary-frame"
        ) from error
    return _parse_predict(flags, request_id, head, name, payload)


# ------------------------------------------------------------------ blocking
def _recv_or_raise(sock: socket.socket, n_bytes: int, what: str) -> bytes:
    data = _recv_exactly(sock, n_bytes)
    if len(data) < n_bytes:
        raise BinaryProtocolError(f"connection closed mid-{what}")
    return data


def recv_reply(sock: socket.socket) -> BinaryReply:
    """Blocking read of one binary reply; typed errors raise client-side.

    An OP_ERROR frame raises the exception class registered for its code in
    ``repro.serving.client`` — the same mapping the JSON client uses — so
    callers cannot tell which transport carried the error.
    """
    header = _recv_or_raise(sock, _COMMON.size, "header")
    magic, version, opcode, flags, request_id = _COMMON.unpack(header)
    if magic != BINARY_MAGIC:
        raise BinaryProtocolError(
            f"expected a binary reply, got leading byte 0x{magic:02x}"
        )
    _check_version(version)
    if opcode == OP_ERROR:
        head = _recv_or_raise(sock, _ERROR_HEAD.size, "error header")
        code, msg_len = _ERROR_HEAD.unpack(head)
        message = _recv_or_raise(sock, msg_len, "error message").decode(
            "utf-8", errors="replace"
        )
        from repro.serving.client import _ERROR_TYPES  # cycle-free at runtime
        from repro.serving.queue import ServingError

        error_type = ERROR_CODES.get(code, "internal")
        raise _ERROR_TYPES.get(error_type, ServingError)(message)
    if opcode != OP_REPLY:
        raise BinaryProtocolError(
            f"unexpected opcode 0x{opcode:02x} in a reply"
        )
    head = _recv_or_raise(sock, _REPLY_HEAD.size, "reply header")
    samples, n_classes = _REPLY_HEAD.unpack(head)
    labels_bytes, scores_bytes = _reply_sizes(samples, n_classes, flags)
    body = _recv_or_raise(sock, labels_bytes + scores_bytes, "reply body")
    return _parse_reply(flags, request_id, head, body)
