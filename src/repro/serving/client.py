"""Blocking client for the inference server (tests, examples, load drivers).

:class:`ServingClient` wraps one TCP connection speaking the length-prefixed
JSON protocol.  It is intentionally synchronous — the server is where the
concurrency lives; a client thread (or 256 of them in the latency benchmark)
just sends a request and blocks on the response.  Server-side typed errors
are re-raised as the matching exception:
:class:`~repro.serving.queue.ServerOverloadedError` for sheds,
:class:`~repro.serving.queue.BadRequestError` for malformed requests and
:class:`~repro.serving.queue.ServingError` for internal model failures, so
callers can implement backoff with an ``except ServerOverloadedError``.
"""

from __future__ import annotations

import socket
from typing import Any, Dict

import numpy as np

from repro.serving.protocol import recv_message, send_message
from repro.serving.queue import (
    BadRequestError,
    ServerOverloadedError,
    ServingError,
)

__all__ = ["ServingClient"]

_ERROR_TYPES = {
    ServerOverloadedError.error_type: ServerOverloadedError,
    BadRequestError.error_type: BadRequestError,
}


class ServingClient:
    """One blocking connection to an :class:`~repro.serving.server.InferenceServer`.

    Usage::

        with ServingClient(host, port) as client:
            labels = client.predict(rows)                 # (k,) int64
            labels, scores = client.predict(rows, return_scores=True)
            print(client.stats()["latency_us"])
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)

    # -------------------------------------------------------------- request
    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        send_message(self._sock, payload)
        response = recv_message(self._sock)
        if response is None:
            raise ConnectionError("server closed the connection")
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        exc_type = _ERROR_TYPES.get(error.get("type"), ServingError)
        raise exc_type(error.get("message", "unknown server error"))

    @staticmethod
    def _as_rows(features: np.ndarray) -> np.ndarray:
        rows = np.asarray(features)
        if rows.ndim == 1:
            rows = rows[np.newaxis, :]
        if rows.ndim != 2:
            raise BadRequestError(
                f"features must be 1-D or 2-D, got shape {rows.shape}"
            )
        return rows

    # ------------------------------------------------------------------ ops
    def predict(self, features: np.ndarray, return_scores: bool = False):
        """Labels for a ``(k, F)`` (or single ``(F,)``) 0/1 feature matrix.

        Returns ``labels`` of shape ``(k,)``, or ``(labels, scores)`` with
        ``scores`` of shape ``(k, n_classes)`` when ``return_scores`` is
        set (requires a server with a scores path).
        """
        rows = self._as_rows(features)
        # no dtype coercion: the server validates the raw values, so a 0.5
        # is rejected with BadRequestError instead of truncating to 0
        response = self._request(
            {
                "op": "predict",
                "features": rows.tolist(),
                "return_scores": bool(return_scores),
            }
        )
        labels = np.asarray(response["labels"], dtype=np.int64)
        if return_scores:
            return labels, np.asarray(response["scores"], dtype=np.float64)
        return labels

    def stats(self) -> Dict[str, Any]:
        """The server's :meth:`~repro.serving.stats.ServerStats.snapshot`."""
        return self._request({"op": "stats"})["stats"]

    def ping(self) -> bool:
        """Liveness probe; True when the server answers."""
        return bool(self._request({"op": "ping"})["ok"])

    # -------------------------------------------------------------- cleanup
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
