"""Blocking client for the inference server (tests, examples, load drivers).

:class:`ServingClient` wraps one TCP connection speaking the length-prefixed
JSON protocol.  It is intentionally synchronous — the server is where the
concurrency lives; a client thread (or 256 of them in the latency benchmark)
just sends a request and blocks on the response.  Server-side typed errors
are re-raised as the matching exception:
:class:`~repro.serving.queue.ServerOverloadedError` for sheds,
:class:`~repro.serving.queue.BadRequestError` for malformed requests,
:class:`~repro.serving.registry.ModelNotFoundError` for requests naming a
model the server does not host, and
:class:`~repro.serving.queue.ServingError` for internal model failures, so
callers can implement backoff with an ``except ServerOverloadedError``.

Against a multi-model server, every request-level method takes ``model=``
(``None`` routes to the server's default model), and :meth:`list_models` /
:meth:`stats` / :meth:`stats_text` cover discovery and scraping.

Retrying is opt-in: pass a :class:`~repro.serving.retry.RetryPolicy` and
the client retries *connect failures* (at construction) and *shed
requests* (``ServerOverloadedError`` from ``predict``) with bounded
exponential backoff and jitter.  Nothing else is retried — a typed
``bad_request`` will fail identically forever, and silently resubmitting
after an ``internal`` error could double-evaluate a request the server
half-processed.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

import numpy as np

from repro.serving.protocol import recv_message, send_message
from repro.serving.queue import (
    BadRequestError,
    ServerOverloadedError,
    ServingError,
)
from repro.serving.registry import ModelNotFoundError
from repro.serving.retry import RetryPolicy

__all__ = ["ServingClient"]

_ERROR_TYPES = {
    ServerOverloadedError.error_type: ServerOverloadedError,
    BadRequestError.error_type: BadRequestError,
    ModelNotFoundError.error_type: ModelNotFoundError,
}


class ServingClient:
    """One blocking connection to an :class:`~repro.serving.server.InferenceServer`.

    Usage::

        with ServingClient(host, port) as client:
            labels = client.predict(rows)                 # (k,) int64
            labels, scores = client.predict(rows, return_scores=True)
            labels_b = client.predict(rows_b, model="variant-b")
            print(client.list_models()["models"])
            print(client.stats(model="variant-b")["latency_us"])

    ``retry=RetryPolicy(...)`` opts in to backoff on connect failures and
    on shed (``overloaded``) predictions; the default is no retrying.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._retry = retry
        if retry is None:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        else:
            self._sock = retry.call(
                lambda: socket.create_connection((host, port), timeout=timeout),
                retry_on=(OSError,),
            )

    # -------------------------------------------------------------- request
    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        send_message(self._sock, payload)
        response = recv_message(self._sock)
        if response is None:
            raise ConnectionError("server closed the connection")
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        exc_type = _ERROR_TYPES.get(error.get("type"), ServingError)
        raise exc_type(error.get("message", "unknown server error"))

    @staticmethod
    def _as_rows(features: np.ndarray) -> np.ndarray:
        rows = np.asarray(features)
        if rows.ndim == 1:
            rows = rows[np.newaxis, :]
        if rows.ndim != 2:
            raise BadRequestError(
                f"features must be 1-D or 2-D, got shape {rows.shape}"
            )
        return rows

    # ------------------------------------------------------------------ ops
    def predict(
        self,
        features: np.ndarray,
        return_scores: bool = False,
        model: Optional[str] = None,
    ):
        """Labels for a ``(k, F)`` (or single ``(F,)``) 0/1 feature matrix.

        ``model`` routes to a named model on a multi-model server (``None``
        → the server's default).  Returns ``labels`` of shape ``(k,)``, or
        ``(labels, scores)`` with ``scores`` of shape ``(k, n_classes)``
        when ``return_scores`` is set (requires a model with a scores
        path).  With a retry policy, shed requests are resubmitted under
        backoff before the ``ServerOverloadedError`` is allowed through.
        """
        rows = self._as_rows(features)
        # no dtype coercion: the server validates the raw values, so a 0.5
        # is rejected with BadRequestError instead of truncating to 0
        payload = {
            "op": "predict",
            "features": rows.tolist(),
            "return_scores": bool(return_scores),
        }
        if model is not None:
            payload["model"] = model
        if self._retry is None:
            response = self._request(payload)
        else:
            response = self._retry.call(
                lambda: self._request(payload),
                retry_on=(ServerOverloadedError,),
            )
        labels = np.asarray(response["labels"], dtype=np.int64)
        if return_scores:
            return labels, np.asarray(response["scores"], dtype=np.float64)
        return labels

    def stats(self, model: Optional[str] = None) -> Dict[str, Any]:
        """One model's :meth:`~repro.serving.stats.ServerStats.snapshot`
        (``None`` → the default model)."""
        payload: Dict[str, Any] = {"op": "stats"}
        if model is not None:
            payload["model"] = model
        return self._request(payload)["stats"]

    def stats_text(self) -> str:
        """Prometheus-style plain-text stats for every hosted model (see
        :func:`~repro.serving.stats.render_stats_text`)."""
        return self._request({"op": "stats_text"})["text"]

    def list_models(self) -> Dict[str, Any]:
        """``{"default": name, "models": [{name, scores, knobs...}, ...]}``."""
        response = self._request({"op": "list_models"})
        return {"default": response["default"], "models": response["models"]}

    def ping(self) -> bool:
        """Liveness probe; True when the server answers."""
        return bool(self._request({"op": "ping"})["ok"])

    # -------------------------------------------------------------- cleanup
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
