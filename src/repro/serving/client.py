"""Blocking client for the inference server (tests, examples, load drivers).

:class:`ServingClient` wraps one TCP connection speaking the length-prefixed
JSON protocol — or, with ``binary=True``, the zero-copy binary protocol for
``predict`` (control ops stay JSON; both coexist on the one socket).  It is
intentionally synchronous — the server is where the concurrency lives; a
client thread (or 256 of them in the latency benchmark) just sends a
request and blocks on the response.  Server-side typed errors are re-raised
as the matching exception:
:class:`~repro.serving.queue.ServerOverloadedError` for sheds,
:class:`~repro.serving.queue.BadRequestError` for malformed requests,
:class:`~repro.serving.registry.ModelNotFoundError` for requests naming a
model the server does not host, and
:class:`~repro.serving.queue.ServingError` for internal model failures, so
callers can implement backoff with an ``except ServerOverloadedError``.

Against a multi-model server, every request-level method takes ``model=``
(``None`` routes to the server's default model), and :meth:`list_models` /
:meth:`stats` / :meth:`stats_text` cover discovery and scraping.

Retrying is opt-in: pass a :class:`~repro.serving.retry.RetryPolicy` and
the client retries *connect failures* (at construction) and *shed
requests* (``ServerOverloadedError`` from ``predict``) with bounded
exponential backoff and jitter.  Nothing else is retried — a typed
``bad_request`` will fail identically forever, and silently resubmitting
after an ``internal`` error could double-evaluate a request the server
half-processed.

Stream discipline
=================

The protocols are strictly request/response over one byte stream, so any
failure that can leave a *half-consumed frame* on the socket — a timeout
mid-read, a :class:`~repro.serving.protocol.ProtocolError`, a connection
error mid-frame — poisons every later exchange: the next read would parse
the stale frame's remaining bytes as a fresh header and return garbage.
The client therefore marks the connection **dead** at the first such
failure; any further request raises :class:`StaleConnectionError`
immediately instead of desyncing.  Typed server errors (shed, bad request,
unknown model, internal) arrive as complete frames and do *not* kill the
connection.

A dead client cannot be resurrected — there is no "reconnect" method on
purpose, because the failed request's fate is unknown (the server may have
half-processed it) and only the caller can decide whether resubmitting is
safe.  Replace the client: ``close()`` it (idempotent, also what the
``with`` block does) and construct a new one.  A closed client likewise
refuses further requests with :class:`StaleConnectionError`.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

import numpy as np

from repro.engine.bitpack import pack_bits
from repro.serving.queue import (
    BadRequestError,
    ServerOverloadedError,
    ServingError,
)
from repro.serving.retry import RetryPolicy
from repro.serving.transport import (
    ProtocolError,
    WIRE_ERROR_TYPES,
    encode_control_request,
    encode_predict_request,
    recv_control_reply,
    recv_message,
    recv_reply,
    send_message,
)

__all__ = ["ServingClient", "StaleConnectionError"]

#: kept as a module name for back-compat; the table itself lives in
#: :mod:`repro.serving.transport`, shared by both protocols and the router
_ERROR_TYPES = WIRE_ERROR_TYPES


class StaleConnectionError(ConnectionError):
    """This client's stream may hold a half-consumed frame; reuse refused.

    Raised by every request method after an earlier ``socket.timeout``,
    :class:`~repro.serving.protocol.ProtocolError` or mid-frame connection
    failure.  The fix is always the same: close this client and open a new
    one (with a :class:`~repro.serving.retry.RetryPolicy` for the
    reconnect, if you want backoff).
    """


class ServingClient:
    """One blocking connection to an :class:`~repro.serving.server.InferenceServer`.

    Usage::

        with ServingClient(host, port) as client:
            labels = client.predict(rows)                 # (k,) int64
            labels, scores = client.predict(rows, return_scores=True)
            labels_b = client.predict(rows_b, model="variant-b")
            print(client.list_models()["models"])
            print(client.stats(model="variant-b")["latency_us"])

    ``binary=True`` sends ``predict`` over the zero-copy binary protocol:
    the client packs the rows once (:func:`~repro.engine.bitpack.pack_bits`)
    and ships the uint64 bit-planes; the server feeds them straight to the
    engine — no JSON encode/decode on either side, no re-pack.  Control
    ops (``stats``, ``list_models``, ``ping``) stay on the JSON protocol
    over the same socket.

    ``retry=RetryPolicy(...)`` opts in to backoff on connect failures and
    on shed (``overloaded``) predictions; the default is no retrying.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        *,
        binary: bool = False,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._retry = retry
        self._binary = binary
        self._dead: Optional[str] = None
        self._closed = False
        if retry is None:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        else:
            self._sock = retry.call(
                lambda: socket.create_connection((host, port), timeout=timeout),
                retry_on=(OSError,),
            )

    # -------------------------------------------------------------- request
    def _check_usable(self) -> None:
        if self._closed:
            raise StaleConnectionError(
                "this client has been closed; open a new one"
            )
        if self._dead is not None:
            raise StaleConnectionError(
                "refusing to reuse this connection: its stream may hold a "
                f"half-consumed frame after {self._dead}; open a new client"
            )

    def _mark_dead(self, error: BaseException) -> None:
        self._dead = f"{type(error).__name__}: {error}"

    @staticmethod
    def _ok_or_raise(response: Dict[str, Any]) -> Dict[str, Any]:
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        exc_type = _ERROR_TYPES.get(error.get("type"), ServingError)
        raise exc_type(error.get("message", "unknown server error"))

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._check_usable()
        try:
            send_message(self._sock, payload)
            response = recv_message(self._sock)
        except (ProtocolError, OSError) as error:
            # timeout (a mid-read one leaves a partial frame), framing
            # error, or transport failure: the stream position is unknown
            self._mark_dead(error)
            raise
        if response is None:
            error = ConnectionError("server closed the connection")
            self._mark_dead(error)
            raise error
        return self._ok_or_raise(response)

    def _control(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One lifecycle/control op over this client's native protocol.

        A ``binary=True`` client ships the op inside an OP_CONTROL binary
        frame (so its pipelined stream stays single-codec); a JSON client
        sends the plain JSON frame.  Typed server errors raise the same
        exceptions either way.
        """
        if not self._binary:
            return self._request(payload)
        self._check_usable()
        try:
            self._sock.sendall(encode_control_request(payload))
            response = recv_control_reply(self._sock)
        except (ProtocolError, OSError) as error:
            self._mark_dead(error)
            raise
        return self._ok_or_raise(response)

    def _request_binary(
        self,
        rows: np.ndarray,
        return_scores: bool,
        model: Optional[str],
    ):
        self._check_usable()
        try:
            packed = pack_bits(rows)
        except ValueError as error:
            raise BadRequestError(str(error)) from error
        frame = encode_predict_request(
            packed,
            rows.shape[0],
            model=model,
            return_scores=return_scores,
        )
        try:
            self._sock.sendall(frame)
            reply = recv_reply(self._sock)
        except (ProtocolError, OSError) as error:
            self._mark_dead(error)
            raise
        # typed ServingErrors from recv_reply propagate without killing the
        # connection: an OP_ERROR frame was consumed whole
        if return_scores:
            return reply.labels, np.asarray(reply.scores, dtype=np.float64)
        return reply.labels

    @staticmethod
    def _as_rows(features: np.ndarray) -> np.ndarray:
        rows = np.asarray(features)
        if rows.ndim == 1:
            rows = rows[np.newaxis, :]
        if rows.ndim != 2:
            raise BadRequestError(
                f"features must be 1-D or 2-D, got shape {rows.shape}"
            )
        return rows

    # ------------------------------------------------------------------ ops
    def predict(
        self,
        features: np.ndarray,
        return_scores: bool = False,
        model: Optional[str] = None,
    ):
        """Labels for a ``(k, F)`` (or single ``(F,)``) 0/1 feature matrix.

        ``model`` routes to a named model on a multi-model server (``None``
        → the server's default).  Returns ``labels`` of shape ``(k,)``, or
        ``(labels, scores)`` with ``scores`` of shape ``(k, n_classes)``
        when ``return_scores`` is set (requires a model with a scores
        path).  With a retry policy, shed requests are resubmitted under
        backoff before the ``ServerOverloadedError`` is allowed through.
        On a ``binary=True`` client the request crosses the wire as packed
        uint64 bit-planes instead of JSON.
        """
        rows = self._as_rows(features)
        if self._binary:
            if self._retry is None:
                return self._request_binary(rows, return_scores, model)
            return self._retry.call(
                lambda: self._request_binary(rows, return_scores, model),
                retry_on=(ServerOverloadedError,),
            )
        # no dtype coercion: the server validates the raw values, so a 0.5
        # is rejected with BadRequestError instead of truncating to 0
        payload = {
            "op": "predict",
            "features": rows.tolist(),
            "return_scores": bool(return_scores),
        }
        if model is not None:
            payload["model"] = model
        if self._retry is None:
            response = self._request(payload)
        else:
            response = self._retry.call(
                lambda: self._request(payload),
                retry_on=(ServerOverloadedError,),
            )
        labels = np.asarray(response["labels"], dtype=np.int64)
        if return_scores:
            return labels, np.asarray(response["scores"], dtype=np.float64)
        return labels

    def stats(self, model: Optional[str] = None) -> Dict[str, Any]:
        """One model's :meth:`~repro.serving.stats.ServerStats.snapshot`
        (``None`` → the default model)."""
        payload: Dict[str, Any] = {"op": "stats"}
        if model is not None:
            payload["model"] = model
        return self._request(payload)["stats"]

    def stats_text(self) -> str:
        """Prometheus-style plain-text stats for every hosted model (see
        :func:`~repro.serving.stats.render_stats_text`)."""
        return self._request({"op": "stats_text"})["text"]

    def list_models(self) -> Dict[str, Any]:
        """``{"default": name, "models": [{name, scores, knobs...}, ...]}``."""
        response = self._request({"op": "list_models"})
        return {"default": response["default"], "models": response["models"]}

    def ping(self) -> bool:
        """Liveness probe; True when the server answers."""
        return bool(self._request({"op": "ping"})["ok"])

    # ------------------------------------------------------------- lifecycle
    def promote(self, model: str, version: int) -> Dict[str, Any]:
        """Atomically flip ``model``'s serving pointer to ``version``; the
        displaced version drains and retires.  Returns the flip record
        (``{"model", "version", "previous", "changed"}``)."""
        return self._control(
            {"op": "promote", "model": model, "version": int(version)}
        )

    def set_shadow(
        self, model: str, version: int, fraction: float = 1.0
    ) -> Dict[str, Any]:
        """Mirror ``fraction`` of ``model``'s traffic to standby
        ``version``; divergences land in the server's shadow report."""
        return self._control(
            {
                "op": "set_shadow",
                "model": model,
                "version": int(version),
                "fraction": float(fraction),
            }
        )

    def clear_shadow(self, model: str) -> Dict[str, Any]:
        """Stop mirroring ``model``'s traffic (idempotent)."""
        return self._control({"op": "clear_shadow", "model": model})

    def promote_canary(
        self,
        model: str,
        version: int,
        *,
        min_requests: int = 32,
        max_divergence_rate: float = 0.0,
        max_p99_ratio: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Auto-promote or auto-roll-back ``version`` on shadow evidence.

        Returns the verdict dict: ``status`` is ``"promoted"``,
        ``"rolled_back"`` (with a ``reason``) or ``"watching"`` when the
        policy's ``min_requests`` of mirrored traffic has not accumulated
        yet — the eventual decision then lands in :meth:`lifecycle` and
        :meth:`shadow_report`.
        """
        payload: Dict[str, Any] = {
            "op": "promote_canary",
            "model": model,
            "version": int(version),
            "min_requests": int(min_requests),
            "max_divergence_rate": float(max_divergence_rate),
        }
        if max_p99_ratio is not None:
            payload["max_p99_ratio"] = float(max_p99_ratio)
        return self._control(payload)

    def shadow_report(self, model: Optional[str] = None) -> Dict[str, Any]:
        """The model family's divergence evidence: counters, divergence
        rate, latency-ratio p99 and the recent divergent records."""
        payload: Dict[str, Any] = {"op": "shadow_report"}
        if model is not None:
            payload["model"] = model
        return self._control(payload)["report"]

    def lifecycle(self, model: Optional[str] = None) -> list:
        """The model family's lifecycle event history, oldest first."""
        payload: Dict[str, Any] = {"op": "lifecycle"}
        if model is not None:
            payload["model"] = model
        return self._control(payload)["events"]

    # -------------------------------------------------------------- cleanup
    def close(self) -> None:
        """Close the connection.  Idempotent: a second (third, ...) call is
        a no-op, so ``close()`` is safe from both an explicit call *and* the
        context-manager exit.  After closing, every request method raises
        :class:`StaleConnectionError` — a closed client, like a dead one,
        must be replaced, never reused."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
