"""The unified transport layer: every wire frame is parsed by exactly one codec.

Before this module existed, the length-prefixed JSON codec, the ``0xBF``
binary codec, the first-byte protocol discrimination and the typed error
mapping were spread (and partly duplicated) across ``protocol.py``,
``binary_protocol.py``, ``client.py`` and ``server.py`` — the asyncio
listener re-implemented the JSON header read inside its discrimination
path, and the client owned the error-type table the binary decoder had to
import at runtime.  This module is the single implementation all of them —
and the cluster router — consume; :mod:`repro.serving.protocol` and
:mod:`repro.serving.binary_protocol` remain as documented re-export shims
so existing imports keep working, but no codec logic lives there.

Layout:

* **JSON codec** — :func:`encode_message`, async :func:`read_message` /
  :func:`write_message`, blocking :func:`recv_message` /
  :func:`send_message`.  Frames are a 4-byte big-endian length followed by
  one UTF-8 JSON object, capped at :data:`MAX_MESSAGE_BYTES`.
* **Binary codec** — :func:`encode_predict_request`, :func:`encode_reply`,
  :func:`encode_error`, :func:`decode_reply`, blocking :func:`recv_reply`.
  Frames lead with :data:`BINARY_MAGIC` (0xBF), which a JSON length header
  under the 64 MiB cap (first byte <= 0x04) can never produce.
* **Discrimination** — :func:`read_frame` (server side: requests of either
  protocol) and :func:`read_reply_frame` (client side: replies of either
  protocol, returned *raw* so a router can forward the bytes untouched
  after :func:`replace_request_id`).
* **Error mapping** — :data:`WIRE_ERROR_TYPES` (wire ``error.type`` string
  → typed exception) and :data:`ERROR_CODES` (binary error code → string),
  the one table both protocols and both directions share.
* **Listener machinery** — :class:`CorkedWriter` and :class:`FrameServer`,
  the dual-protocol asyncio front end with the explicit
  ``starting → serving → draining → stopped`` lifecycle that
  :class:`~repro.serving.server.InferenceServer` and
  :class:`~repro.serving.router.RouterServer` both subclass.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.engine.bitpack import n_words
from repro.serving.queue import (
    BadRequestError,
    ServerOverloadedError,
    ServerUnavailableError,
    ServingError,
)
from repro.serving.registry import ModelNotFoundError

__all__ = [
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "BinaryControlRequest",
    "BinaryProtocolError",
    "BinaryReply",
    "BinaryRequest",
    "CorkedWriter",
    "ERROR_CODES",
    "FrameServer",
    "MAX_MESSAGE_BYTES",
    "MAX_MODEL_NAME_BYTES",
    "MAX_PAYLOAD_BYTES",
    "OP_CONTROL",
    "OP_CONTROL_REPLY",
    "OP_ERROR",
    "OP_PREDICT",
    "OP_REPLY",
    "ProtocolError",
    "RawBinaryReply",
    "WIRE_ERROR_TYPES",
    "decode_control_reply",
    "decode_reply",
    "encode_control_reply",
    "encode_control_request",
    "encode_error",
    "encode_message",
    "encode_predict_request",
    "encode_reply",
    "error_response",
    "read_frame",
    "read_message",
    "read_reply_frame",
    "recv_control_reply",
    "recv_message",
    "recv_reply",
    "replace_request_id",
    "send_message",
    "wire_exception",
    "write_message",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one message's JSON payload (64 MiB ≈ a 250k-sample
#: request of 256 features — far beyond anything the batcher admits).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Malformed frame: bad header, oversized payload, or invalid JSON."""


class BinaryProtocolError(ProtocolError):
    """Malformed binary frame: bad version, bad sizes, or truncation."""


# --------------------------------------------------------------------- errors
#: wire ``error.type`` string → the typed exception a client raises.
#: :class:`~repro.serving.queue.ServingError` itself is the fallback for
#: ``internal`` and unknown types, so both protocols and both transports
#: raise identical exceptions from one table.
WIRE_ERROR_TYPES: Dict[str, type] = {
    ServerOverloadedError.error_type: ServerOverloadedError,
    BadRequestError.error_type: BadRequestError,
    ModelNotFoundError.error_type: ModelNotFoundError,
    ServerUnavailableError.error_type: ServerUnavailableError,
}

#: binary wire error codes <-> the JSON protocol's typed error strings
ERROR_CODES = {
    1: "overloaded",
    2: "bad_request",
    3: "model_not_found",
    4: "internal",
    5: "unavailable",
}
_ERROR_CODE_OF = {name: code for code, name in ERROR_CODES.items()}


def wire_exception(error_type: Optional[str], message: str) -> ServingError:
    """The typed exception instance for a wire error (never raises)."""
    return WIRE_ERROR_TYPES.get(error_type or "", ServingError)(message)


def error_response(error_type: str, message: str) -> Dict[str, Any]:
    """The JSON protocol's error payload for a typed failure."""
    return {"ok": False, "error": {"type": error_type, "message": message}}


# ----------------------------------------------------------------- JSON codec
def encode_message(payload: Dict[str, Any]) -> bytes:
    """Serialise one message to its framed wire form.

    Non-finite floats raise :class:`ProtocolError`: ``json.dumps`` would
    otherwise emit the bare ``NaN``/``Infinity`` tokens, which are not JSON
    — a strict peer rejects the whole frame.  The server converts this
    failure into the typed ``internal`` wire error; the binary protocol
    carries non-finite scores losslessly instead.
    """
    try:
        body = json.dumps(
            payload, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except ValueError as error:
        raise ProtocolError(
            f"payload is not JSON-serialisable: {error}"
        ) from error
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte cap"
        )
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"invalid JSON payload: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_length(length: int) -> None:
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame announces {length} bytes, cap is {MAX_MESSAGE_BYTES}"
        )


async def _read_json_after_first(
    reader: asyncio.StreamReader, first: bytes
) -> Dict[str, Any]:
    """Finish reading a JSON frame whose header's first byte was consumed
    by protocol discrimination — the one shared tail both unified readers
    use, so the JSON framing has no second implementation."""
    try:
        rest = await reader.readexactly(_HEADER.size - 1)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-header") from error
    (length,) = _HEADER.unpack(first + rest)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-message") from error
    return _decode_body(body)


async def read_message(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read one framed JSON message; ``None`` on clean EOF before a header."""
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError:
        return None  # connection closed between messages
    return await _read_json_after_first(reader, first)


async def write_message(
    writer: asyncio.StreamWriter, payload: Dict[str, Any]
) -> None:
    """Frame and send one message, draining the transport buffer."""
    writer.write(encode_message(payload))
    await writer.drain()


def _recv_exactly(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Blocking counterpart of :func:`read_message` (``None`` on clean EOF)."""
    header = _recv_exactly(sock, _HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ProtocolError("connection closed mid-header")
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if len(body) < length:
        raise ProtocolError("connection closed mid-message")
    return _decode_body(body)


def send_message(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Blocking counterpart of :func:`write_message`."""
    sock.sendall(encode_message(payload))


# --------------------------------------------------------------- binary codec
#: First byte of every binary frame.  JSON frames lead with the high byte
#: of a big-endian length capped at 64 MiB (<= 0x04), so 0xBF is
#: unambiguous on a shared listener.
BINARY_MAGIC = 0xBF

BINARY_VERSION = 1

OP_PREDICT = 0x01
OP_REPLY = 0x02
OP_ERROR = 0x03
#: control-plane ops: a JSON payload inside a binary frame.  Lifecycle
#: commands (promote, set_shadow, shadow_report, ...) are rare and
#: structured, so they do not earn bespoke binary layouts — but a binary
#: client must not interleave JSON frames into its pipelined stream just
#: to run them, so the JSON body rides the binary framing instead.
OP_CONTROL = 0x04
OP_CONTROL_REPLY = 0x05

#: flags bit 0 on OP_PREDICT: "return scores"; on OP_REPLY: "scores follow"
FLAG_SCORES = 0x01

#: Cap on one frame's variable-size payload — shared with the JSON cap so
#: neither protocol admits larger requests than the other.
MAX_PAYLOAD_BYTES = MAX_MESSAGE_BYTES

MAX_MODEL_NAME_BYTES = 4096

_COMMON = struct.Struct("<BBBBI")  # magic, version, opcode, flags, request id
_PREDICT_HEAD = struct.Struct("<HII")  # name length, n_samples, n_features
_REPLY_HEAD = struct.Struct("<II")  # n_samples, n_classes
_ERROR_HEAD = struct.Struct("<BH")  # error code, message length
_CONTROL_HEAD = struct.Struct("<I")  # JSON payload length

_WORD = np.dtype("<u8")
_LABEL = np.dtype("<i8")
_SCORE = np.dtype("<f8")

#: byte offset of the u32 request id inside the common frame header —
#: what :func:`replace_request_id` splices, so a router can re-stamp a
#: forwarded reply without decoding its payload.
_REQUEST_ID_OFFSET = 4
_REQUEST_ID = struct.Struct("<I")


@dataclass
class BinaryRequest:
    """One decoded OP_PREDICT frame."""

    request_id: int
    model: Optional[str]  # None = the server's default model
    packed: np.ndarray  # (n_features, n_words(n_samples)) uint64
    n_samples: int
    return_scores: bool


@dataclass
class BinaryReply:
    """One decoded OP_REPLY frame."""

    request_id: int
    labels: np.ndarray  # (n_samples,) int64
    scores: Optional[np.ndarray]  # (n_samples, n_classes) float64 or None


@dataclass
class BinaryControlRequest:
    """One decoded OP_CONTROL frame: a JSON control op on the binary wire.

    The payload is the same dict the JSON protocol would carry (``op``,
    ``model``, ...); the server dispatches it through the normal JSON op
    table and answers with an OP_CONTROL_REPLY frame echoing the request
    id — so a pipelined binary client runs lifecycle commands without
    switching codecs mid-stream.
    """

    request_id: int
    payload: Dict[str, Any]


@dataclass
class RawBinaryReply:
    """One server→client binary frame kept as raw bytes.

    This is the router's currency: :func:`read_reply_frame` validates the
    frame and extracts only what routing needs — the request id for
    re-association and, for OP_ERROR, the typed error string for failover
    decisions — while the payload stays unparsed, ready to forward to the
    client after :func:`replace_request_id`.  :func:`decode_reply` fully
    parses the frame when a caller does want the labels.
    """

    request_id: int
    opcode: int
    error_type: Optional[str]  # set only for OP_ERROR frames
    frame: bytes


def encode_predict_request(
    packed: np.ndarray,
    n_samples: int,
    *,
    model: Optional[str] = None,
    return_scores: bool = False,
    request_id: int = 0,
) -> bytes:
    """Frame one packed predict request.

    ``packed`` is the ``(n_features, n_words(n_samples))`` uint64 matrix
    from :func:`~repro.engine.bitpack.pack_bits` — it is shipped as raw
    little-endian words, no transformation.
    """
    words = np.ascontiguousarray(np.asarray(packed, dtype=np.uint64))
    if words.ndim != 2:
        raise BinaryProtocolError(
            f"packed must be 2-D, got shape {words.shape}"
        )
    if words.shape[1] != n_words(n_samples):
        raise BinaryProtocolError(
            f"{n_samples} samples need {n_words(n_samples)} words per "
            f"signal, got {words.shape[1]}"
        )
    name = (model or "").encode("utf-8")
    if len(name) > MAX_MODEL_NAME_BYTES:
        raise BinaryProtocolError(
            f"model name of {len(name)} bytes exceeds the "
            f"{MAX_MODEL_NAME_BYTES}-byte cap"
        )
    payload = words.astype(_WORD, copy=False).tobytes()
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise BinaryProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte cap"
        )
    flags = FLAG_SCORES if return_scores else 0
    return b"".join(
        (
            _COMMON.pack(
                BINARY_MAGIC, BINARY_VERSION, OP_PREDICT, flags, request_id
            ),
            _PREDICT_HEAD.pack(len(name), n_samples, words.shape[0]),
            name,
            payload,
        )
    )


def encode_reply(
    labels: np.ndarray,
    scores: Optional[np.ndarray] = None,
    *,
    request_id: int = 0,
) -> bytes:
    """Frame one predict reply (labels, optionally per-class scores)."""
    labels = np.ascontiguousarray(np.asarray(labels, dtype=np.int64))
    if labels.ndim != 1:
        raise BinaryProtocolError(
            f"labels must be 1-D, got shape {labels.shape}"
        )
    flags = 0
    n_classes = 0
    parts = [labels.astype(_LABEL, copy=False).tobytes()]
    if scores is not None:
        scores = np.ascontiguousarray(np.asarray(scores, dtype=np.float64))
        if scores.ndim != 2 or scores.shape[0] != labels.shape[0]:
            raise BinaryProtocolError(
                f"scores must be ({labels.shape[0]}, n_classes), "
                f"got shape {scores.shape}"
            )
        flags = FLAG_SCORES
        n_classes = scores.shape[1]
        parts.append(scores.astype(_SCORE, copy=False).tobytes())
    return b"".join(
        (
            _COMMON.pack(
                BINARY_MAGIC, BINARY_VERSION, OP_REPLY, flags, request_id
            ),
            _REPLY_HEAD.pack(labels.shape[0], n_classes),
            *parts,
        )
    )


def encode_error(
    error_type: str, message: str, *, request_id: int = 0
) -> bytes:
    """Frame one typed error (unknown types degrade to ``internal``)."""
    code = _ERROR_CODE_OF.get(error_type, _ERROR_CODE_OF["internal"])
    body = message.encode("utf-8")[:65535]
    return b"".join(
        (
            _COMMON.pack(BINARY_MAGIC, BINARY_VERSION, OP_ERROR, 0, request_id),
            _ERROR_HEAD.pack(code, len(body)),
            body,
        )
    )


def _encode_control_body(payload: Dict[str, Any]) -> bytes:
    try:
        body = json.dumps(
            payload, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ProtocolError(
            f"payload is not JSON-serialisable: {error}"
        ) from error
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"control payload of {len(body)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte cap"
        )
    return body


def encode_control_request(
    payload: Dict[str, Any], *, request_id: int = 0
) -> bytes:
    """Frame one JSON control op for the binary wire (OP_CONTROL)."""
    body = _encode_control_body(payload)
    return b"".join(
        (
            _COMMON.pack(
                BINARY_MAGIC, BINARY_VERSION, OP_CONTROL, 0, request_id
            ),
            _CONTROL_HEAD.pack(len(body)),
            body,
        )
    )


def encode_control_reply(
    payload: Dict[str, Any], *, request_id: int = 0
) -> bytes:
    """Frame one JSON control response (OP_CONTROL_REPLY)."""
    body = _encode_control_body(payload)
    return b"".join(
        (
            _COMMON.pack(
                BINARY_MAGIC, BINARY_VERSION, OP_CONTROL_REPLY, 0, request_id
            ),
            _CONTROL_HEAD.pack(len(body)),
            body,
        )
    )


def replace_request_id(frame: bytes, request_id: int) -> bytes:
    """Re-stamp a binary frame's request id without touching the payload.

    The router forwards backend replies verbatim except for this one field:
    the backend answered with the router's internal id, the client must see
    its own.
    """
    return (
        frame[:_REQUEST_ID_OFFSET]
        + _REQUEST_ID.pack(request_id)
        + frame[_REQUEST_ID_OFFSET + _REQUEST_ID.size:]
    )


# ------------------------------------------------------------ binary decoding
def _check_version(version: int) -> None:
    if version != BINARY_VERSION:
        raise BinaryProtocolError(
            f"unsupported binary protocol version {version} "
            f"(this side speaks {BINARY_VERSION})"
        )


def _predict_sizes(name_len: int, samples: int, features: int) -> int:
    """Validate an OP_PREDICT header, returning the payload byte count."""
    if name_len > MAX_MODEL_NAME_BYTES:
        raise BinaryProtocolError(
            f"model name of {name_len} bytes exceeds the "
            f"{MAX_MODEL_NAME_BYTES}-byte cap"
        )
    payload = features * n_words(samples) * 8
    if payload > MAX_PAYLOAD_BYTES:
        raise BinaryProtocolError(
            f"frame announces {payload} payload bytes, "
            f"cap is {MAX_PAYLOAD_BYTES}"
        )
    return payload


def _reply_sizes(samples: int, n_classes: int, flags: int) -> Tuple[int, int]:
    labels_bytes = samples * 8
    scores_bytes = samples * n_classes * 8 if flags & FLAG_SCORES else 0
    if labels_bytes + scores_bytes > MAX_PAYLOAD_BYTES:
        raise BinaryProtocolError(
            f"frame announces {labels_bytes + scores_bytes} payload bytes, "
            f"cap is {MAX_PAYLOAD_BYTES}"
        )
    return labels_bytes, scores_bytes


def _parse_predict(
    flags: int, request_id: int, head: bytes, name: bytes, payload: bytes
) -> BinaryRequest:
    _, samples, features = _PREDICT_HEAD.unpack(head)
    packed = np.frombuffer(payload, dtype=_WORD).reshape(
        features, n_words(samples)
    )
    return BinaryRequest(
        request_id=request_id,
        model=name.decode("utf-8") if name else None,
        packed=packed,
        n_samples=samples,
        return_scores=bool(flags & FLAG_SCORES),
    )


def _parse_reply(
    flags: int, request_id: int, head: bytes, body: bytes
) -> BinaryReply:
    samples, n_classes = _REPLY_HEAD.unpack(head)
    labels_bytes, _ = _reply_sizes(samples, n_classes, flags)
    labels = np.frombuffer(body[:labels_bytes], dtype=_LABEL).astype(
        np.int64, copy=False
    )
    scores = None
    if flags & FLAG_SCORES:
        scores = np.frombuffer(body[labels_bytes:], dtype=_SCORE).reshape(
            samples, n_classes
        )
    return BinaryReply(request_id=request_id, labels=labels, scores=scores)


def decode_reply(frame: bytes) -> BinaryReply:
    """Fully parse one OP_REPLY frame held in memory (raises typed errors
    for OP_ERROR frames, exactly like :func:`recv_reply`)."""
    magic, version, opcode, flags, request_id = _COMMON.unpack(
        frame[: _COMMON.size]
    )
    if magic != BINARY_MAGIC:
        raise BinaryProtocolError(
            f"expected a binary reply, got leading byte 0x{magic:02x}"
        )
    _check_version(version)
    rest = frame[_COMMON.size:]
    if opcode == OP_ERROR:
        code, msg_len = _ERROR_HEAD.unpack(rest[: _ERROR_HEAD.size])
        message = rest[
            _ERROR_HEAD.size: _ERROR_HEAD.size + msg_len
        ].decode("utf-8", errors="replace")
        raise wire_exception(ERROR_CODES.get(code, "internal"), message)
    if opcode != OP_REPLY:
        raise BinaryProtocolError(
            f"unexpected opcode 0x{opcode:02x} in a reply"
        )
    head = rest[: _REPLY_HEAD.size]
    return _parse_reply(flags, request_id, head, rest[_REPLY_HEAD.size:])


# ----------------------------------------------- unified readers (both sides)
async def read_frame(
    reader: asyncio.StreamReader,
) -> Union[None, Dict[str, Any], BinaryRequest, BinaryControlRequest]:
    """Read one *request* frame of either protocol from a shared listener.

    Returns ``None`` on clean EOF before a frame, a ``dict`` for a JSON
    frame, a :class:`BinaryRequest` for a binary predict frame, or a
    :class:`BinaryControlRequest` for a binary-framed control op.  The
    first byte discriminates: :data:`BINARY_MAGIC` can never open a JSON
    length header (the 64 MiB cap keeps that byte <= 0x04).
    """
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError:
        return None  # clean EOF between frames
    if first[0] != BINARY_MAGIC:
        return await _read_json_after_first(reader, first)
    try:
        version, opcode, flags, request_id = struct.unpack(
            "<BBBI", await reader.readexactly(_COMMON.size - 1)
        )
        _check_version(version)
        if opcode == OP_CONTROL:
            head = await reader.readexactly(_CONTROL_HEAD.size)
            (length,) = _CONTROL_HEAD.unpack(head)
            try:
                _check_length(length)
            except ProtocolError as error:
                raise BinaryProtocolError(str(error)) from error
            body = await reader.readexactly(length) if length else b""
            try:
                payload = _decode_body(body)
            except ProtocolError as error:
                raise BinaryProtocolError(str(error)) from error
            return BinaryControlRequest(
                request_id=request_id, payload=payload
            )
        if opcode != OP_PREDICT:
            raise BinaryProtocolError(
                f"unexpected opcode 0x{opcode:02x} from a client "
                "(only OP_PREDICT and OP_CONTROL cross this direction)"
            )
        head = await reader.readexactly(_PREDICT_HEAD.size)
        name_len, samples, features = _PREDICT_HEAD.unpack(head)
        payload_len = _predict_sizes(name_len, samples, features)
        name = await reader.readexactly(name_len) if name_len else b""
        payload = await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as error:
        raise BinaryProtocolError(
            "connection closed mid-binary-frame"
        ) from error
    return _parse_predict(flags, request_id, head, name, payload)


async def read_reply_frame(
    reader: asyncio.StreamReader,
) -> Union[None, Dict[str, Any], RawBinaryReply]:
    """Read one *reply* frame of either protocol (the client direction).

    The router's backend connections use this: JSON replies come back as
    dicts (re-associated by their ``id``), binary replies come back as
    :class:`RawBinaryReply` — validated and sized, payload untouched — so
    forwarding to the client is an id splice, not a decode/re-encode.
    ``None`` means clean EOF.
    """
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError:
        return None
    if first[0] != BINARY_MAGIC:
        return await _read_json_after_first(reader, first)
    try:
        rest_common = await reader.readexactly(_COMMON.size - 1)
        version, opcode, flags, request_id = struct.unpack(
            "<BBBI", rest_common
        )
        _check_version(version)
        if opcode == OP_ERROR:
            head = await reader.readexactly(_ERROR_HEAD.size)
            code, msg_len = _ERROR_HEAD.unpack(head)
            body = await reader.readexactly(msg_len) if msg_len else b""
            return RawBinaryReply(
                request_id=request_id,
                opcode=OP_ERROR,
                error_type=ERROR_CODES.get(code, "internal"),
                frame=first + rest_common + head + body,
            )
        if opcode == OP_CONTROL_REPLY:
            head = await reader.readexactly(_CONTROL_HEAD.size)
            (length,) = _CONTROL_HEAD.unpack(head)
            try:
                _check_length(length)
            except ProtocolError as error:
                raise BinaryProtocolError(str(error)) from error
            body = await reader.readexactly(length) if length else b""
            return RawBinaryReply(
                request_id=request_id,
                opcode=OP_CONTROL_REPLY,
                error_type=None,
                frame=first + rest_common + head + body,
            )
        if opcode != OP_REPLY:
            raise BinaryProtocolError(
                f"unexpected opcode 0x{opcode:02x} in a reply"
            )
        head = await reader.readexactly(_REPLY_HEAD.size)
        samples, n_classes = _REPLY_HEAD.unpack(head)
        labels_bytes, scores_bytes = _reply_sizes(samples, n_classes, flags)
        body = await reader.readexactly(labels_bytes + scores_bytes)
    except asyncio.IncompleteReadError as error:
        raise BinaryProtocolError(
            "connection closed mid-binary-frame"
        ) from error
    return RawBinaryReply(
        request_id=request_id,
        opcode=OP_REPLY,
        error_type=None,
        frame=first + rest_common + head + body,
    )


# ------------------------------------------------------------------- blocking
def _recv_or_raise(sock: socket.socket, n_bytes: int, what: str) -> bytes:
    data = _recv_exactly(sock, n_bytes)
    if len(data) < n_bytes:
        raise BinaryProtocolError(f"connection closed mid-{what}")
    return data


def recv_reply(sock: socket.socket) -> BinaryReply:
    """Blocking read of one binary reply; typed errors raise client-side.

    An OP_ERROR frame raises the exception class registered for its code in
    :data:`WIRE_ERROR_TYPES` — the same mapping the JSON client uses — so
    callers cannot tell which transport carried the error.
    """
    header = _recv_or_raise(sock, _COMMON.size, "header")
    magic, version, opcode, flags, request_id = _COMMON.unpack(header)
    if magic != BINARY_MAGIC:
        raise BinaryProtocolError(
            f"expected a binary reply, got leading byte 0x{magic:02x}"
        )
    _check_version(version)
    if opcode == OP_ERROR:
        head = _recv_or_raise(sock, _ERROR_HEAD.size, "error header")
        code, msg_len = _ERROR_HEAD.unpack(head)
        message = _recv_or_raise(sock, msg_len, "error message").decode(
            "utf-8", errors="replace"
        )
        raise wire_exception(ERROR_CODES.get(code, "internal"), message)
    if opcode != OP_REPLY:
        raise BinaryProtocolError(
            f"unexpected opcode 0x{opcode:02x} in a reply"
        )
    head = _recv_or_raise(sock, _REPLY_HEAD.size, "reply header")
    samples, n_classes = _REPLY_HEAD.unpack(head)
    labels_bytes, scores_bytes = _reply_sizes(samples, n_classes, flags)
    body = _recv_or_raise(sock, labels_bytes + scores_bytes, "reply body")
    return _parse_reply(flags, request_id, head, body)


def decode_control_reply(frame: bytes) -> Tuple[int, Dict[str, Any]]:
    """Parse one OP_CONTROL_REPLY frame held in memory → ``(id, payload)``."""
    magic, version, opcode, _flags, request_id = _COMMON.unpack(
        frame[: _COMMON.size]
    )
    if magic != BINARY_MAGIC:
        raise BinaryProtocolError(
            f"expected a binary control reply, got leading byte 0x{magic:02x}"
        )
    _check_version(version)
    if opcode != OP_CONTROL_REPLY:
        raise BinaryProtocolError(
            f"unexpected opcode 0x{opcode:02x} in a control reply"
        )
    rest = frame[_COMMON.size:]
    (length,) = _CONTROL_HEAD.unpack(rest[: _CONTROL_HEAD.size])
    body = rest[_CONTROL_HEAD.size: _CONTROL_HEAD.size + length]
    return request_id, _decode_body(body)


def recv_control_reply(sock: socket.socket) -> Dict[str, Any]:
    """Blocking read of one OP_CONTROL_REPLY frame's JSON payload.

    Error semantics match the JSON protocol: the payload itself carries
    ``ok``/``error``, so this only raises on transport/framing failures —
    the caller maps typed wire errors exactly like a JSON response.
    """
    header = _recv_or_raise(sock, _COMMON.size, "header")
    magic, version, opcode, _flags, _request_id = _COMMON.unpack(header)
    if magic != BINARY_MAGIC:
        raise BinaryProtocolError(
            f"expected a binary control reply, got leading byte 0x{magic:02x}"
        )
    _check_version(version)
    if opcode != OP_CONTROL_REPLY:
        raise BinaryProtocolError(
            f"unexpected opcode 0x{opcode:02x} in a control reply"
        )
    head = _recv_or_raise(sock, _CONTROL_HEAD.size, "control header")
    (length,) = _CONTROL_HEAD.unpack(head)
    _check_length(length)
    body = _recv_or_raise(sock, length, "control body") if length else b""
    return _decode_body(body)


# --------------------------------------------------------- listener machinery
class CorkedWriter:
    """Per-connection response writer that coalesces same-tick writes.

    When a batch completes, every request of that batch resolves in the same
    event-loop pass — so their responses can share one ``send`` syscall
    instead of paying one each (under load, each small send costs a GIL
    round trip on top of the syscall).  ``send`` appends the encoded frame
    and schedules a single flush with ``call_soon``; the flush runs after
    all same-tick completions and writes the concatenation.  Loop-confined,
    so no lock is needed.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._frames: list = []
        self._flush_scheduled = False

    def send(self, payload: Dict[str, Any]) -> None:
        self.send_raw(encode_message(payload))

    def send_raw(self, frame: bytes) -> None:
        """Queue an already-encoded frame (either protocol) for the next
        corked flush — binary and JSON responses share one send."""
        self._frames.append(frame)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._frames or self._writer.is_closing():
            self._frames.clear()
            return
        data = b"".join(self._frames)
        self._frames.clear()
        self._writer.write(data)

    async def drain(self) -> None:
        await self._writer.drain()


class FrameServer:
    """The dual-protocol asyncio listener with an explicit lifecycle.

    Subclasses (:class:`~repro.serving.server.InferenceServer`, the cluster
    :class:`~repro.serving.router.RouterServer`) implement request
    semantics through two hooks — :meth:`_dispatch` for JSON requests and
    :meth:`_dispatch_binary` for binary predicts — while this base owns
    everything transport-shaped: the listener, per-connection pipelined
    dispatch with id echo, corked writes, protocol discrimination, and the
    connection teardown rules (an abortive disconnect *cancels* that
    connection's in-flight requests, so their queued work is discarded and
    their admission reservations released; a clean EOF lets them finish).

    Lifecycle states::

        starting --start()--> serving --drain()--> draining --stop()--> stopped
                                 \\________________stop()_______________/

    ``drain()`` is the graceful half of shutdown: the listener stays up and
    control ops keep answering (so orchestration can watch the drain), but
    admissions stop — subclasses reject new predicts with the typed
    ``unavailable`` error — and :meth:`_on_drain` flushes whatever is
    already admitted.  ``/healthz`` (when a subclass serves HTTP) flips to
    503 the moment the state leaves ``serving``, which is what load
    balancers and the cluster router key off.
    """

    STARTING = "starting"
    SERVING = "serving"
    DRAINING = "draining"
    STOPPED = "stopped"

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 512,
    ) -> None:
        self.host = host
        self.port = port
        self._backlog = backlog
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._state = self.STARTING

    # ------------------------------------------------------------- lifecycle
    @property
    def state(self) -> str:
        """One of ``starting`` / ``serving`` / ``draining`` / ``stopped``."""
        return self._state

    async def start(self) -> Tuple[str, int]:
        """Bind the listener (running :meth:`_on_start` first); returns the
        bound address and flips the state to ``serving``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        await self._on_start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            backlog=self._backlog,
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._state = self.SERVING
        try:
            await self._post_bind()
        except BaseException:
            await self.stop()
            raise
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Run until cancelled (convenience for ``asyncio.run`` scripts)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        """Stop admitting new work; flush what is already admitted.

        Idempotent.  The listener keeps answering control ops (``ping``
        reports the ``draining`` state, ``stats`` still renders) so an
        orchestrator can poll the drain's progress; subclasses reject new
        predict admissions while draining and :meth:`_on_drain` completes
        once everything admitted before the flip has been evaluated.
        """
        if self._state in (self.DRAINING, self.STOPPED):
            return
        self._state = self.DRAINING
        await self._on_drain()

    async def stop(self) -> None:
        """Stop accepting, hang up open connections, release resources."""
        await self._pre_stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # wait_closed() does not wait for in-flight connection handlers
        # (pre-3.12 asyncio); cancel them so shutdown never leaks a task
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self._on_stop()
        self._state = self.STOPPED

    # ------------------------------------------------------- subclass hooks
    async def _on_start(self) -> None:
        """Runs before the listener binds (warm-up work)."""

    async def _post_bind(self) -> None:
        """Runs after the listener binds (e.g. start an HTTP sidecar
        listener); raising here triggers a full :meth:`stop`."""

    async def _on_drain(self) -> None:
        """Flush everything admitted before the state flipped."""

    async def _pre_stop(self) -> None:
        """Runs first in :meth:`stop` (e.g. stop sidecar listeners)."""

    async def _on_stop(self) -> None:
        """Runs last in :meth:`stop` (e.g. close queues and registries)."""

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    async def _dispatch_binary(self, request: BinaryRequest) -> bytes:
        raise NotImplementedError

    # ----------------------------------------------------------- connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        # Pipelined dispatch: every request on this connection is handled in
        # its own task, so a stream of requests from one client coalesces
        # into shared batches exactly like requests from many clients —
        # including requests for *different models* interleaved on one
        # socket, each routed to its own queue.  A request carrying an
        # ``"id"`` gets it echoed in the response, which is how pipelining
        # clients re-associate out-of-order completions; the corked writer
        # turns all completions of one batch into a single frame-atomic
        # send.
        corked = CorkedWriter(writer)
        in_flight: set = set()

        async def respond(request: Dict[str, Any]) -> None:
            response = await self._dispatch(request)
            if "id" in request:
                response["id"] = request["id"]
            try:
                corked.send(response)
            except ProtocolError as error:
                # e.g. a model emitted NaN/Inf scores: JSON cannot carry
                # them (encode_message enforces allow_nan=False), so the
                # client gets the typed internal error instead of a frame
                # its parser rejects — the connection stays usable
                fallback = error_response(
                    "internal", f"response not representable in JSON: {error}"
                )
                if "id" in request:
                    fallback["id"] = request["id"]
                corked.send(fallback)
            await corked.drain()

        async def respond_binary(request: BinaryRequest) -> None:
            corked.send_raw(await self._dispatch_binary(request))
            await corked.drain()

        async def respond_control(request: BinaryControlRequest) -> None:
            # a binary-framed control op dispatches through the JSON op
            # table; the response rides back inside the binary framing so
            # the client's pipelined stream stays single-codec
            response = await self._dispatch(request.payload)
            try:
                frame = encode_control_reply(
                    response, request_id=request.request_id
                )
            except ProtocolError as error:
                frame = encode_control_reply(
                    error_response(
                        "internal",
                        f"response not representable in JSON: {error}",
                    ),
                    request_id=request.request_id,
                )
            corked.send_raw(frame)
            await corked.drain()

        try:
            while True:
                try:
                    request = await read_frame(reader)
                except BinaryProtocolError as error:
                    corked.send_raw(encode_error("bad_request", str(error)))
                    break
                except ProtocolError as error:
                    corked.send(error_response("bad_request", str(error)))
                    break
                if request is None:  # client closed cleanly
                    break
                if isinstance(request, BinaryRequest):
                    request_task = asyncio.create_task(respond_binary(request))
                elif isinstance(request, BinaryControlRequest):
                    request_task = asyncio.create_task(
                        respond_control(request)
                    )
                else:
                    request_task = asyncio.create_task(respond(request))
                in_flight.add(request_task)
                request_task.add_done_callback(in_flight.discard)
            # clean close: let in-flight requests finish (their replies may
            # still be deliverable on a half-open socket)
            if in_flight:
                await asyncio.gather(*list(in_flight))
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            # abortive disconnect: nobody is listening for these responses,
            # so the finally below *cancels* the in-flight requests — the
            # batching queue discards their still-queued entries and
            # releases their admission reservations (see BatchingQueue)
            pass
        except asyncio.CancelledError:
            pass  # server shutting down with the connection open
        finally:
            for request_task in list(in_flight):
                request_task.cancel()
            corked._flush()  # anything still corked goes out before the FIN
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover
                pass
            # deregister only once fully torn down, so stop() still awaits
            # a handler that is draining its transport
            self._connections.discard(task)
