"""``repro.serving`` — a multi-model async batching server for packed PoET-BiN inference.

The engine (:mod:`repro.engine`) answers "how fast can one big batch go";
this package answers the serving question: *many small concurrent requests,
for many hosted models*, sharing one worker pool.  The pieces, bottom-up:

``protocol``
    Length-prefixed JSON framing with async and blocking transports; every
    request may carry a ``model`` field.

``binary_protocol``
    The zero-copy binary wire format: clients ship
    :func:`~repro.engine.bitpack.pack_bits` uint64 bit-planes in a
    versioned frame (magic ``0xBF``) and the server feeds the words
    straight to the engine — no JSON decode, no re-pack.  Both protocols
    coexist on one listener; the first byte discriminates.

``metrics_http``
    :class:`~repro.serving.metrics_http.HttpMetricsListener` — a native
    HTTP listener for ``GET /metrics`` (Prometheus exposition) and
    ``GET /healthz``, enabled with ``InferenceServer(http_port=...)``.

``stats``
    :class:`~repro.serving.stats.ServerStats` — p50/p95/p99 latency,
    batch-occupancy histogram, queue depth high-water mark, shed counts —
    one per model, plus :func:`~repro.serving.stats.render_stats_text`,
    the Prometheus-style scrape rendering behind the ``stats_text`` op.

``queue``
    :class:`~repro.serving.queue.BatchingQueue` — the coalescing core.
    Concurrent ``submit`` calls are held up to ``max_wait_us``, stacked into
    one matrix, evaluated once, and scattered back; admission control sheds
    past ``max_queue`` with the typed
    :class:`~repro.serving.queue.ServerOverloadedError`.
    :class:`~repro.serving.queue.AdmissionBudget` adds the *shared* bound a
    multi-model server needs: total in-flight samples across every queue.

``registry``
    :class:`~repro.serving.registry.ModelRegistry` — model name → (queue,
    stats, scores-mode), with a default model and the typed
    :class:`~repro.serving.registry.ModelNotFoundError` for unknown names.

``server``
    :class:`~repro.serving.server.InferenceServer` — the TCP front end; each
    connection's requests route to their model's queue, so socket
    concurrency becomes per-model batch occupancy while one shared
    :class:`~repro.engine.parallel.WorkerPool` (pass ``pool=``) carries
    every model's sharded evaluation.
    :class:`~repro.serving.server.BackgroundServer` hosts it on a dedicated
    event-loop thread for blocking callers.

``client``
    :class:`~repro.serving.client.ServingClient` — a blocking connection
    with typed error mapping, per-request model routing and opt-in
    :class:`~repro.serving.retry.RetryPolicy` backoff; ``binary=True``
    switches ``predict`` onto the binary protocol.  A connection whose
    stream may hold a half-consumed frame (timeout, protocol or transport
    error) refuses reuse with
    :class:`~repro.serving.client.StaleConnectionError`.

Quickstart (blocking side, two models on one pool)::

    from repro.engine import WorkerPool
    from repro.serving import BackgroundServer, InferenceServer, ServingClient

    pool = WorkerPool(n_workers=4)
    server = InferenceServer(max_batch=64, max_total_queue=4096,
                             warm_up=pool.warm_up)
    server.register_model("digits", model=digits_clf, pool=pool)
    server.register_model("svhn", model=svhn_clf, pool=pool, max_batch=128)
    with BackgroundServer(server) as handle:
        with ServingClient(*handle.address) as client:
            labels = client.predict(rows)                    # default model
            labels = client.predict(svhn_rows, model="svhn")
            print(client.stats(model="svhn")["latency_us"])

See ``docs/serving.md`` for the knobs and their failure semantics, and
``benchmarks/test_serving_latency.py`` for the coalescing and multi-model
wins this buys.
"""

from repro.serving.binary_protocol import (
    BINARY_MAGIC,
    BINARY_VERSION,
    BinaryProtocolError,
    BinaryReply,
    BinaryRequest,
    encode_predict_request,
    encode_reply,
    recv_reply,
)
from repro.serving.client import ServingClient, StaleConnectionError
from repro.serving.metrics_http import HttpMetricsListener
from repro.serving.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    encode_message,
    read_message,
    recv_message,
    send_message,
    write_message,
)
from repro.serving.queue import (
    AdmissionBudget,
    BadRequestError,
    BatchingQueue,
    ServerOverloadedError,
    ServingError,
)
from repro.serving.registry import (
    ModelNotFoundError,
    ModelRegistry,
    RegisteredModel,
)
from repro.serving.retry import RetryPolicy
from repro.serving.server import BackgroundServer, InferenceServer
from repro.serving.stats import ServerStats, render_stats_text

__all__ = [
    "AdmissionBudget",
    "BackgroundServer",
    "BadRequestError",
    "BatchingQueue",
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "BinaryProtocolError",
    "BinaryReply",
    "BinaryRequest",
    "HttpMetricsListener",
    "InferenceServer",
    "MAX_MESSAGE_BYTES",
    "ModelNotFoundError",
    "ModelRegistry",
    "ProtocolError",
    "RegisteredModel",
    "RetryPolicy",
    "ServerOverloadedError",
    "ServerStats",
    "ServingClient",
    "ServingError",
    "StaleConnectionError",
    "encode_message",
    "encode_predict_request",
    "encode_reply",
    "read_message",
    "recv_message",
    "recv_reply",
    "render_stats_text",
    "send_message",
    "write_message",
]
