"""``repro.serving`` — a multi-model async batching server for packed PoET-BiN inference.

The engine (:mod:`repro.engine`) answers "how fast can one big batch go";
this package answers the serving question: *many small concurrent requests,
for many hosted models*, sharing one worker pool — and, one level up, many
replicated boxes behind one router.  The pieces, bottom-up:

``transport``
    The single implementation of both wire codecs — length-prefixed JSON
    and the zero-copy binary format — plus first-byte protocol
    discrimination, the shared typed-error mapping, and
    :class:`~repro.serving.transport.FrameServer`: the dual-protocol
    asyncio listener with the explicit ``starting → serving → draining →
    stopped`` lifecycle that both the backend server and the cluster
    router subclass.

``protocol`` / ``binary_protocol``
    Documented re-export shims over ``transport`` (the historical import
    names): the JSON wire format with its request/response objects, and
    the zero-copy binary format — clients ship
    :func:`~repro.engine.bitpack.pack_bits` uint64 bit-planes in a
    versioned frame (magic ``0xBF``) and the server feeds the words
    straight to the engine.  Both protocols coexist on one listener; the
    first byte discriminates.

``metrics_http``
    :class:`~repro.serving.metrics_http.HttpMetricsListener` — a native
    HTTP listener for ``GET /metrics`` (Prometheus exposition) and
    ``GET /healthz``, enabled with ``InferenceServer(http_port=...)``.

``stats``
    :class:`~repro.serving.stats.ServerStats` — p50/p95/p99 latency,
    batch-occupancy histogram, queue depth high-water mark, shed counts —
    one per model, plus :func:`~repro.serving.stats.render_stats_text`,
    the Prometheus-style scrape rendering behind the ``stats_text`` op.

``queue``
    :class:`~repro.serving.queue.BatchingQueue` — the coalescing core.
    Concurrent ``submit`` calls are held up to ``max_wait_us``, stacked into
    one matrix, evaluated once, and scattered back; admission control sheds
    past ``max_queue`` with the typed
    :class:`~repro.serving.queue.ServerOverloadedError`.
    :class:`~repro.serving.queue.AdmissionBudget` adds the *shared* bound a
    multi-model server needs: total in-flight samples across every queue.

``registry``
    :class:`~repro.serving.registry.ModelRegistry` — model name → (queue,
    stats, scores-mode), with a default model and the typed
    :class:`~repro.serving.registry.ModelNotFoundError` for unknown names.

``server``
    :class:`~repro.serving.server.InferenceServer` — the TCP front end; each
    connection's requests route to their model's queue, so socket
    concurrency becomes per-model batch occupancy while one shared
    :class:`~repro.engine.parallel.WorkerPool` (pass ``pool=``) carries
    every model's sharded evaluation.
    :class:`~repro.serving.server.BackgroundServer` hosts it on a dedicated
    event-loop thread for blocking callers.  ``drain()`` stops admissions
    (typed ``unavailable`` rejections, 503 on ``/healthz``) and flushes
    what was admitted; ``set_admission_weights`` re-partitions the shared
    budget per model at runtime.

``router``
    :class:`~repro.serving.router.RouterServer` — the cluster layer: one
    front door speaking both protocols unchanged over a placement map of
    model → N backend replicas, with least-outstanding balancing, active
    health checks (ejection/reinstatement), client-transparent failover,
    and :class:`~repro.serving.router.Rebalancer`, which re-weights every
    backend's per-model admission shares from scraped queue-depth/latency
    stats.  ``repro.serving.standalone`` runs either role as its own OS
    process.

``client``
    :class:`~repro.serving.client.ServingClient` — a blocking connection
    with typed error mapping, per-request model routing and opt-in
    :class:`~repro.serving.retry.RetryPolicy` backoff; ``binary=True``
    switches ``predict`` onto the binary protocol.  A connection whose
    stream may hold a half-consumed frame (timeout, protocol or transport
    error) refuses reuse with
    :class:`~repro.serving.client.StaleConnectionError`.

Quickstart (blocking side, two models on one pool)::

    from repro.engine import WorkerPool
    from repro.serving import BackgroundServer, InferenceServer, ServingClient

    pool = WorkerPool(n_workers=4)
    server = InferenceServer(max_batch=64, max_total_queue=4096,
                             warm_up=pool.warm_up)
    server.register_model("digits", model=digits_clf, pool=pool)
    server.register_model("svhn", model=svhn_clf, pool=pool, max_batch=128)
    with BackgroundServer(server) as handle:
        with ServingClient(*handle.address) as client:
            labels = client.predict(rows)                    # default model
            labels = client.predict(svhn_rows, model="svhn")
            print(client.stats(model="svhn")["latency_us"])

See ``docs/serving.md`` for the knobs and their failure semantics, and
``benchmarks/test_serving_latency.py`` for the coalescing and multi-model
wins this buys.
"""

from repro.serving.binary_protocol import (
    BINARY_MAGIC,
    BINARY_VERSION,
    BinaryProtocolError,
    BinaryReply,
    BinaryRequest,
    encode_predict_request,
    encode_reply,
    recv_reply,
)
from repro.serving.client import ServingClient, StaleConnectionError
from repro.serving.lifecycle import (
    CanaryPolicy,
    DivergenceStore,
    LifecycleLog,
)
from repro.serving.metrics_http import HttpMetricsListener
from repro.serving.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    encode_message,
    read_message,
    recv_message,
    send_message,
    write_message,
)
from repro.serving.queue import (
    AdmissionBudget,
    BadRequestError,
    BatchingQueue,
    ServerOverloadedError,
    ServerUnavailableError,
    ServingError,
)
from repro.serving.registry import (
    ModelNotFoundError,
    ModelRegistry,
    RegisteredModel,
)
from repro.serving.retry import RetryPolicy
from repro.serving.router import BackendFailedError, Rebalancer, RouterServer
from repro.serving.server import BackgroundServer, InferenceServer
from repro.serving.stats import ServerStats, render_stats_text
from repro.serving.transport import (
    BinaryControlRequest,
    FrameServer,
    RawBinaryReply,
    WIRE_ERROR_TYPES,
    decode_control_reply,
    decode_reply,
    encode_control_reply,
    encode_control_request,
    recv_control_reply,
    replace_request_id,
)

__all__ = [
    "AdmissionBudget",
    "BackendFailedError",
    "BackgroundServer",
    "BadRequestError",
    "BatchingQueue",
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "BinaryControlRequest",
    "BinaryProtocolError",
    "BinaryReply",
    "BinaryRequest",
    "CanaryPolicy",
    "DivergenceStore",
    "FrameServer",
    "LifecycleLog",
    "HttpMetricsListener",
    "InferenceServer",
    "MAX_MESSAGE_BYTES",
    "ModelNotFoundError",
    "ModelRegistry",
    "ProtocolError",
    "RawBinaryReply",
    "Rebalancer",
    "RegisteredModel",
    "RetryPolicy",
    "RouterServer",
    "ServerOverloadedError",
    "ServerStats",
    "ServerUnavailableError",
    "ServingClient",
    "ServingError",
    "StaleConnectionError",
    "WIRE_ERROR_TYPES",
    "decode_control_reply",
    "decode_reply",
    "encode_control_reply",
    "encode_control_request",
    "encode_message",
    "encode_predict_request",
    "encode_reply",
    "read_message",
    "recv_control_reply",
    "recv_message",
    "recv_reply",
    "render_stats_text",
    "replace_request_id",
    "send_message",
    "write_message",
]
