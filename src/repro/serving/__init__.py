"""``repro.serving`` — an async batching server for packed PoET-BiN inference.

The engine (:mod:`repro.engine`) answers "how fast can one big batch go";
this package answers the serving question: *many small concurrent requests*
sharing one packed evaluation.  The pieces, bottom-up:

``protocol``
    Length-prefixed JSON framing with async and blocking transports.

``stats``
    :class:`~repro.serving.stats.ServerStats` — p50/p95/p99 latency,
    batch-occupancy histogram, queue depth high-water mark, shed counts.

``queue``
    :class:`~repro.serving.queue.BatchingQueue` — the coalescing core.
    Concurrent ``submit`` calls are held up to ``max_wait_us``, stacked into
    one matrix, evaluated once, and scattered back; admission control sheds
    past ``max_queue`` with the typed
    :class:`~repro.serving.queue.ServerOverloadedError`.

``server``
    :class:`~repro.serving.server.InferenceServer` — the TCP front end; all
    connections feed the one queue, so socket concurrency becomes batch
    occupancy.  :class:`~repro.serving.server.BackgroundServer` hosts it on
    a dedicated event-loop thread for blocking callers.

``client``
    :class:`~repro.serving.client.ServingClient` — a blocking connection
    with typed error mapping.

Quickstart (blocking side)::

    from repro.serving import BackgroundServer, InferenceServer, ServingClient

    server = InferenceServer.for_model(clf, n_workers=4, max_batch=64)
    with BackgroundServer(server) as handle:
        with ServingClient(*handle.address) as client:
            labels = client.predict(feature_rows)
            print(client.stats()["latency_us"])

See ``docs/serving.md`` for the knobs and their failure semantics, and
``benchmarks/test_serving_latency.py`` for the coalescing win this buys.
"""

from repro.serving.client import ServingClient
from repro.serving.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    encode_message,
    read_message,
    recv_message,
    send_message,
    write_message,
)
from repro.serving.queue import (
    BadRequestError,
    BatchingQueue,
    ServerOverloadedError,
    ServingError,
)
from repro.serving.server import BackgroundServer, InferenceServer
from repro.serving.stats import ServerStats

__all__ = [
    "BackgroundServer",
    "BadRequestError",
    "BatchingQueue",
    "InferenceServer",
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "ServerOverloadedError",
    "ServerStats",
    "ServingClient",
    "ServingError",
    "encode_message",
    "read_message",
    "recv_message",
    "send_message",
    "write_message",
]
