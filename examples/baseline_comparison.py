"""Baseline comparison scenario: PoET-BiN vs BinaryNet, POLYBiNN and NDF.

Reproduces the comparison protocol of Table 2 on a pure binary-feature task
(no CNN needed): every classifier sees the same binary features, only the
classifier portion differs.  Also reports the energy each classifier would
consume according to the Table 6 estimators, illustrating the accuracy/energy
trade-off the paper argues for.

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BinaryNetClassifier, NeuralDecisionForest, POLYBiNNClassifier
from repro.core import PoETBiNClassifier
from repro.datasets import make_binary_intermediate_task
from repro.hardware import (
    BinaryNeuronPowerModel,
    LatencyModel,
    PoETBiNPowerModel,
    resource_report,
)
from repro.utils.rng import as_rng
from repro.utils.tables import format_table


def main() -> None:
    n_classes = 10
    data = make_binary_intermediate_task(
        n_train=4000, n_test=1000, n_features=256, n_classes=n_classes,
        n_hidden=48, n_active=12, seed=0,
    )
    print(data.describe())

    # intermediate-bit targets for PoET-BiN: random sparse threshold neurons,
    # playing the role of the teacher network's intermediate layer
    rng = as_rng(1)
    per_class = 4
    n_intermediate = n_classes * per_class
    targets_train = np.empty((data.n_train, n_intermediate), dtype=np.uint8)
    for j in range(n_intermediate):
        support = rng.choice(data.X_train.shape[1], size=10, replace=False)
        w = rng.normal(size=10)
        targets_train[:, j] = (
            data.X_train[:, support] @ w - w.sum() / 2 >= 0
        ).astype(np.uint8)

    poetbin = PoETBiNClassifier(
        n_classes=n_classes, n_inputs=6, n_levels=2, branching=(3, 6),
        intermediate_per_class=per_class, output_epochs=25, seed=0,
    ).fit(data.X_train, targets_train, data.y_train)

    binarynet = BinaryNetClassifier(
        n_classes=n_classes, hidden_sizes=(128,), epochs=20, seed=0
    ).fit(data.X_train, data.y_train)
    polybinn = POLYBiNNClassifier(
        n_classes=n_classes, n_trees_per_class=6, max_depth=6, seed=0
    ).fit(data.X_train, data.y_train)
    ndf = NeuralDecisionForest(
        n_classes=n_classes, n_trees=4, depth=5, epochs=10, learning_rate=0.2, seed=0
    ).fit(data.X_train, data.y_train)

    # energy estimates: PoET-BiN from its LUT netlist, BinaryNet from the
    # binary-neuron model; the tree baselines have no calibrated hardware model
    netlist = poetbin.to_netlist()
    report = resource_report(netlist, n_classes=n_classes, output_bits=8)
    latency_model = LatencyModel()
    clock_hz = latency_model.supported_clock_hz(latency_model.netlist_latency(netlist))
    poetbin_energy = PoETBiNPowerModel().energy_per_inference(
        report.total_physical_luts, clock_hz
    )
    binarynet_energy = BinaryNeuronPowerModel().classifier_energy_per_inference(
        binarynet.binary_neuron_layer_sizes()
    )

    rows = [
        ["PoET-BiN", f"{poetbin.score(data.X_test, data.y_test) * 100:.2f}%",
         f"{poetbin_energy:.2e} J", f"{report.total_physical_luts} LUTs"],
        ["BinaryNet", f"{binarynet.score(data.X_test, data.y_test) * 100:.2f}%",
         f"{binarynet_energy:.2e} J", "XNOR/popcount"],
        ["POLYBiNN", f"{polybinn.score(data.X_test, data.y_test) * 100:.2f}%",
         "-", f"{polybinn.total_trees()} deep trees"],
        ["NDF", f"{ndf.score(data.X_test, data.y_test) * 100:.2f}%",
         "-", f"{ndf.n_trees} soft trees"],
    ]
    print("\n" + format_table(["classifier", "accuracy", "energy/inference", "hardware"], rows))


if __name__ == "__main__":
    main()
