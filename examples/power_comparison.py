"""Power / energy comparison scenario: regenerate Tables 3-6 analytically.

Prints the per-operation power library (Table 4), the classifier operation
counts (Table 5), the PoET-BiN power model output (Table 3) and the energy
comparison across techniques (Table 6), together with the paper's headline
reduction factors.  No training involved — everything derives from the
Table 1 architectures and the calibrated cost models.

Run with::

    python examples/power_comparison.py
"""

from __future__ import annotations

from repro.experiments import run_table3, run_table4, run_table5, run_table6
from repro.experiments.reporting import rows_to_table
from repro.experiments.table3_power import TABLE3_HEADERS
from repro.experiments.table4_operations import TABLE4_HEADERS
from repro.experiments.table5_opcounts import TABLE5_HEADERS
from repro.experiments.table6_energy import TABLE6_HEADERS, energy_reduction_summary


def main() -> None:
    print("Table 4: per-operation power on the target FPGA")
    print(rows_to_table(TABLE4_HEADERS, run_table4()))

    print("\nTable 5: classifier-portion operation counts")
    print(rows_to_table(TABLE5_HEADERS, run_table5()))

    print("\nTable 3: PoET-BiN power (analytical model)")
    print(rows_to_table(TABLE3_HEADERS, run_table3()))

    print("\nTable 6: energy per inference")
    print(rows_to_table(TABLE6_HEADERS, run_table6()))

    print("\nPoET-BiN energy reduction factors (vs vanilla / 16-bit / 1-bit):")
    print(
        rows_to_table(
            ["dataset", "vs vanilla", "vs 16-bit", "vs 1-bit"], energy_reduction_summary()
        )
    )


if __name__ == "__main__":
    main()
