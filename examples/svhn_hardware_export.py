"""Hardware export scenario: train a PoET-BiN classifier for the SVHN stand-in
and generate the FPGA artefacts (VHDL, testbench, resource/power/latency report).

This mirrors the paper's §4.2-4.3 flow for the S1 architecture: P = 6, RINC-2,
8-bit output layer, automatic VHDL generation and a self-checking testbench
whose golden outputs come from the Python netlist simulator.

Run with::

    python examples/svhn_hardware_export.py [--outdir DIR] [--fast]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core import PoETBiNWorkflow
from repro.datasets import load_dataset
from repro.experiments import reduced_experiment_settings
from repro.core import save_netlist
from repro.hardware import (
    LatencyModel,
    PoETBiNPowerModel,
    generate_testbench,
    generate_verilog,
    generate_vhdl,
    resource_report,
    total_memory_bits,
    write_memory_files,
)


def main(outdir: str = "svhn_hardware", fast: bool = True) -> None:
    settings = reduced_experiment_settings("svhn", seed=0, fast=fast)
    data = load_dataset("svhn", **settings.dataset_kwargs)
    print(data.describe())

    workflow = PoETBiNWorkflow(
        feature_extractor_factory=settings.feature_extractor_factory,
        feature_dim=settings.feature_dim,
        spec=settings.spec,
        epochs=settings.epochs,
        batch_size=settings.batch_size,
        learning_rate=settings.learning_rate,
        output_epochs=settings.output_epochs,
        seed=0,
    )
    result = workflow.run(data)
    print(
        f"accuracies: vanilla {result.accuracies.vanilla:.3f}, "
        f"teacher {result.accuracies.teacher:.3f}, "
        f"PoET-BiN {result.accuracies.poetbin:.3f}"
    )

    classifier = result.poetbin
    netlist = classifier.to_netlist()
    report = resource_report(
        netlist, n_classes=classifier.n_classes, output_bits=classifier.output_bits
    )
    latency_model = LatencyModel()
    latency = latency_model.netlist_latency(netlist)
    clock_hz = latency_model.supported_clock_hz(latency)
    power = PoETBiNPowerModel().power_report(report.total_physical_luts, clock_hz)
    print(
        f"resources: {report.total_physical_luts} physical LUTs "
        f"(RINC {report.physical_luts} + output layer {report.output_layer_luts}), "
        f"{report.pruned_luts} pruned"
    )
    print(
        f"timing/power: latency {latency * 1e9:.2f} ns, clock {clock_hz / 1e6:.1f} MHz, "
        f"total power {power['total_w']:.3f} W"
    )

    # write the FPGA artefacts: VHDL + testbench, Verilog, the serialized
    # netlist, and block-memory initialisation images (§2.1.1's alternative
    # implementation target)
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    vhdl = generate_vhdl(netlist, entity_name="svhn_classifier")
    testbench = generate_testbench(
        netlist, result.features_test[:32], entity_name="svhn_classifier"
    )
    verilog = generate_verilog(netlist, module_name="svhn_classifier")
    (out / "svhn_classifier.vhd").write_text(vhdl)
    (out / "svhn_classifier_tb.vhd").write_text(testbench)
    (out / "svhn_classifier.v").write_text(verilog)
    save_netlist(netlist, out / "svhn_classifier_netlist.json")
    memory_files = write_memory_files(netlist, out / "memory")
    print(
        f"wrote {out / 'svhn_classifier.vhd'} ({len(vhdl.splitlines())} lines), "
        f"{out / 'svhn_classifier_tb.vhd'} ({len(testbench.splitlines())} lines), "
        f"{out / 'svhn_classifier.v'} ({len(verilog.splitlines())} lines), "
        f"the serialized netlist, and {len(memory_files)} .mem images "
        f"({total_memory_bits(netlist)} ROM bits total)"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="svhn_hardware")
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()
    main(outdir=args.outdir, fast=args.fast)
