"""Cluster demo: a router over two replicated backends, one of which dies.

The process-level tour of the cluster serving story:

1. spawn **two backend boxes** as separate OS processes
   (``python -m repro.serving.standalone backend``), each hosting the same
   two models with a modeled per-batch service time,
2. spawn the **cluster router** in front of them — one address speaking
   both wire protocols, least-outstanding balancing, active health checks
   and client-transparent failover — plus a periodic rebalancer pass that
   re-weights each box's per-model admission shares from scraped stats,
3. fire a mixed-model burst through the router and report throughput,
4. run the **kill drill**: SIGKILL one backend mid-burst and show that
   every request still completes (the router ejects the dead box and
   fails its in-flight requests over, so clients never notice),
5. scrape the router's ``stats`` op and print the per-backend ledger —
   forwarded counts, failovers, ejections, health states.

Run with::

    make serve-cluster       # or: PYTHONPATH=src python examples/cluster_demo.py
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC_ROOT))

from repro.serving import ServingClient, encode_message, recv_message  # noqa: E402
from repro.utils.rng import as_rng  # noqa: E402

N_FEATURES = 256
N_CLASSES = 10
SLEEP_MS = 10
MODELS = ("alpha", "beta")
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 24
SAMPLES_PER_REQUEST = 64
MODEL_SPEC = f"popcount:{N_FEATURES}:{N_CLASSES}:{SLEEP_MS}"


def spawn(role_args):
    """Start a standalone serving process; return (proc, (host, port))."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serving.standalone", *role_args],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    if not line.startswith("SERVING "):
        proc.kill()
        raise SystemExit(f"process failed to start (got {line!r})")
    _, host, port, _http = line.split()
    return proc, (host, int(port))


def burst(router_address, tag, kill=None):
    """N_CLIENTS threads of mixed-model requests; returns (ok, failed, s)."""
    rng = as_rng(7)
    batches = [
        rng.integers(
            0, 2, size=(SAMPLES_PER_REQUEST, N_FEATURES), dtype=np.uint8
        )
        for _ in range(N_CLIENTS)
    ]
    ok = [0] * N_CLIENTS
    failed = [0] * N_CLIENTS
    done = [0]
    lock = threading.Lock()

    def worker(i):
        rows = batches[i]
        expected = rows.astype(np.int64).sum(axis=1) % N_CLASSES
        with ServingClient(*router_address, binary=True, timeout=30) as client:
            for j in range(REQUESTS_PER_CLIENT):
                model = MODELS[(i + j) % len(MODELS)]
                labels = client.predict(rows, model=model)
                if np.array_equal(labels, expected):
                    ok[i] += 1
                else:
                    failed[i] += 1
                with lock:
                    done[0] += 1
                    if kill is not None and done[0] == kill[0]:
                        print(f"  !! SIGKILL backend {kill[2]} mid-burst")
                        kill[1].send_signal(signal.SIGKILL)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    total = N_CLIENTS * REQUESTS_PER_CLIENT
    samples = total * SAMPLES_PER_REQUEST
    print(
        f"  {tag}: {sum(ok)}/{total} requests bit-exact, "
        f"{sum(failed)} wrong, {elapsed:.2f}s "
        f"({samples / elapsed:,.0f} samples/s)"
    )


def router_stats(router_address):
    with socket.create_connection(router_address, timeout=10) as sock:
        sock.sendall(encode_message({"op": "stats", "id": 1}))
        return recv_message(sock)["router"]


def main():
    procs = []
    try:
        print("== spawning two backend boxes + the cluster router ==")
        model_args = []
        for model in MODELS:
            model_args += ["--model", f"{model}={MODEL_SPEC}"]
        backend_a, addr_a = spawn(
            ["backend", *model_args, "--max-total-queue", "32768"]
        )
        procs.append(backend_a)
        backend_b, addr_b = spawn(
            ["backend", *model_args, "--max-total-queue", "32768"]
        )
        procs.append(backend_b)
        replicas = f"{addr_a[0]}:{addr_a[1]},{addr_b[0]}:{addr_b[1]}"
        router, addr_router = spawn(
            ["router", "--rebalance-interval", "0.5"]
            + [
                arg
                for model in MODELS
                for arg in ("--route", f"{model}={replicas}")
            ]
        )
        procs.append(router)
        print(f"  backends: {addr_a[1]} / {addr_b[1]}   router: {addr_router[1]}")

        print("\n== mixed-model burst through the router (both boxes up) ==")
        burst(addr_router, "2 replicas")

        print("\n== kill drill: one replica dies mid-burst ==")
        kill_at = N_CLIENTS * REQUESTS_PER_CLIENT // 4
        burst(
            addr_router,
            "1 replica lost",
            kill=(kill_at, backend_b, f"{addr_b[0]}:{addr_b[1]}"),
        )

        print("\n== router ledger ==")
        stats = router_stats(addr_router)
        print(
            f"  routed={stats['routed']}  failovers={stats['failovers']}  "
            f"rejected={stats['rejected']}"
        )
        for entry in stats["backends"]:
            print(
                f"  {entry['backend']:>21}  state={entry['state']:<8} "
                f"forwarded={entry['forwarded']:<5} "
                f"failures={entry['failures']:<3} "
                f"ejections={entry['ejections']}"
            )
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
    print("\nDone.")


if __name__ == "__main__":
    main()
