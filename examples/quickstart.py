"""Quickstart: train a hierarchical RINC module on a binary task and map it to LUTs.

This is the smallest end-to-end tour of the library:

1. generate a binary-feature task (a hidden threshold neuron to emulate),
2. train RINC-0 / RINC-1 / RINC-2 classifiers and compare their accuracy,
3. flatten the best module to a LUT netlist, check the netlist reproduces the
   Python predictions exactly, and report its hardware cost (LUTs, latency,
   power, energy),
4. print a snippet of the generated VHDL.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import RINCClassifier
from repro.datasets import make_binary_teacher_task
from repro.hardware import LatencyModel, PoETBiNPowerModel, generate_vhdl, resource_report


def main() -> None:
    # 1. a binary task: emulate a hidden 24-input threshold neuron from 128 bits
    data = make_binary_teacher_task(
        n_train=4000, n_test=1000, n_features=128, n_active=24, seed=0
    )
    print(data.describe())

    # 2. RINC-0 vs RINC-1 vs RINC-2 (P = 6, as in the paper's SVHN setup)
    modules = {}
    for levels in (0, 1, 2):
        module = RINCClassifier(n_inputs=6, n_levels=levels)
        module.fit(data.X_train, data.y_train)
        accuracy = module.score(data.X_test, data.y_test)
        modules[levels] = module
        print(
            f"RINC-{levels}: test accuracy {accuracy:.3f}, "
            f"{module.lut_count()} LUTs, reaches up to {module.max_input_bits()} inputs"
        )

    best = modules[2]

    # 3. hardware view: netlist, resources, latency, power, energy
    netlist, output_signal = best.to_netlist(n_primary_inputs=data.X_train.shape[1])
    netlist.mark_output(output_signal)
    hardware_predictions = netlist.evaluate_outputs(data.X_test)[:, 0]
    assert np.array_equal(hardware_predictions, best.predict(data.X_test)), (
        "netlist must reproduce the Python predictions bit-exactly"
    )

    report = resource_report(netlist)
    latency = LatencyModel().netlist_latency(netlist, include_output_layer=False)
    clock_hz = LatencyModel().supported_clock_hz(latency)
    power = PoETBiNPowerModel().total_power(report.physical_luts, clock_hz)
    energy = PoETBiNPowerModel().energy_per_inference(report.physical_luts, clock_hz)
    print(
        f"hardware: {report.physical_luts} physical LUTs "
        f"({report.pruned_luts} pruned), depth {netlist.logic_depth()}, "
        f"latency {latency * 1e9:.2f} ns, clock {clock_hz / 1e6:.1f} MHz, "
        f"power {power:.3f} W, energy {energy * 1e9:.2f} nJ/inference"
    )

    # 4. a peek at the generated VHDL
    vhdl = generate_vhdl(netlist, entity_name="rinc_quickstart")
    print("\nfirst lines of the generated VHDL:")
    print("\n".join(vhdl.splitlines()[:12]))


if __name__ == "__main__":
    main()
