"""Full Fig. 5 pipeline on the MNIST stand-in: A1 -> A2 -> A3 -> A4.

Trains the vanilla network, the binary-feature network and the teacher
network, replaces the classifier with RINC modules plus the sparse quantised
output layer, and prints the Table 2-style accuracy row plus the classifier's
hardware cost.  Uses the reduced experiment settings so it finishes in a few
minutes on a laptop.

Run with::

    python examples/full_pipeline_mnist.py [--fast]
"""

from __future__ import annotations

import argparse

from repro.core import PoETBiNWorkflow
from repro.datasets import load_dataset
from repro.experiments import reduced_experiment_settings
from repro.experiments.table7_resources import measured_row
from repro.hardware import PoETBiNPowerModel
from repro.utils.tables import format_table


def main(fast: bool = False) -> None:
    settings = reduced_experiment_settings("mnist", seed=0, fast=fast)
    data = load_dataset("mnist", **settings.dataset_kwargs)
    print(data.describe())

    workflow = PoETBiNWorkflow(
        feature_extractor_factory=settings.feature_extractor_factory,
        feature_dim=settings.feature_dim,
        spec=settings.spec,
        epochs=settings.epochs,
        batch_size=settings.batch_size,
        learning_rate=settings.learning_rate,
        output_epochs=settings.output_epochs,
        seed=0,
        verbose=True,
    )
    result = workflow.run(data)

    accuracies = result.accuracies
    print(
        "\n"
        + format_table(
            ["A1 vanilla", "A2 binary", "A3 teacher", "A4 PoET-BiN"],
            [[f"{100 * value:.2f}%" for value in accuracies.as_row()]],
        )
    )

    # hardware cost of the trained classifier portion
    row = measured_row(result.poetbin, dataset="mnist-reduced")
    power_model = PoETBiNPowerModel()
    clock_hz = 62.5e6
    print(
        f"\nclassifier hardware: {row.luts} physical LUTs, "
        f"latency {row.latency_ns:.2f} ns, "
        f"energy {power_model.energy_per_inference(row.luts, clock_hz) * 1e9:.2f} nJ/inference"
    )
    emulation = result.poetbin.emulation_accuracy(
        result.features_train, result.intermediate_train
    )
    print(
        "per-module emulation accuracy on the training set "
        f"(mean over {emulation.size} intermediate bits): {emulation.mean():.3f}"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smallest settings (smoke run)")
    main(parser.parse_args().fast)
