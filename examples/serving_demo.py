"""Serving demo: train a PoET-BiN on synthetic digits, then serve it.

The end-to-end tour of the serving story:

1. generate the MNIST stand-in (procedural digit glyphs), binarise the
   pixels into feature bits,
2. train a small PoET-BiN student (class-membership bits as the
   intermediate targets),
3. start the asyncio batching server on a background thread —
   ``InferenceServer.for_model`` picks the packed scores path, so every
   coalesced batch runs the RINC bank once and reads out labels *and*
   confidences from the same evaluation,
4. fire a burst of concurrent single-image requests from client threads
   (the worst-case traffic the batcher exists for) and print the
   server-side latency percentiles and batch occupancy.

Run with::

    make serve-demo          # or: PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core import PoETBiNClassifier
from repro.datasets import make_synthetic_mnist
from repro.serving import BackgroundServer, InferenceServer, ServingClient

N_CLASSES = 10
PER_CLASS = 2  # intermediate bits per class (the paper uses P; small here)
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 16


def binarise(images: np.ndarray) -> np.ndarray:
    """2x-downsampled thresholded pixels: (N, 28, 28, 1) -> (N, 196) bits."""
    return (images[:, ::2, ::2, 0] > 0.5).reshape(images.shape[0], -1).astype(np.uint8)


def class_membership_targets(y: np.ndarray) -> np.ndarray:
    """Intermediate targets: ``PER_CLASS`` copies of the one-vs-rest bit.

    A stand-in for the teacher network's intermediate layer that keeps the
    demo fast; each RINC module learns "is this a <digit>?" from pixels.
    (Accuracy is modest — one-vs-rest bits from thresholded glyph pixels
    are a hard target for 6-input LUT trees; the full teacher pipeline in
    ``examples/full_pipeline_mnist.py`` is the accuracy story, this demo
    is the serving story.)
    """
    one_hot = (y[:, np.newaxis] == np.arange(N_CLASSES)).astype(np.uint8)
    return np.repeat(one_hot, PER_CLASS, axis=1)


def main() -> None:
    # 1. data: procedural digits, binarised to 196 feature bits
    data = make_synthetic_mnist(n_train=1500, n_test=400, seed=0)
    X_train, X_test = binarise(data.X_train), binarise(data.X_test)
    print(
        f"synthetic digits: {X_train.shape[0]} train / {X_test.shape[0]} test, "
        f"{X_train.shape[1]} feature bits"
    )

    # 2. train the student
    start = time.perf_counter()
    clf = PoETBiNClassifier(
        n_classes=N_CLASSES,
        n_inputs=6,
        n_levels=2,  # RINC-2, as in the paper's experiments
        intermediate_per_class=PER_CLASS,
        output_epochs=10,
        seed=0,
    ).fit(X_train, class_membership_targets(data.y_train), data.y_train)
    print(
        f"trained {clf.n_intermediate} RINC modules + output layer "
        f"in {time.perf_counter() - start:.1f} s, "
        f"test accuracy {clf.score(X_test, data.y_test):.3f}, "
        f"{clf.lut_count()} LUTs"
    )

    # 3. serve it: the server coalesces concurrent requests into shared
    #    packed evaluations; warm_up pays the compile cost before traffic
    server = InferenceServer.for_model(
        clf,
        max_batch=64,
        max_wait_us=2000,
        max_queue=4096,
        warm_up=lambda: clf.predict_batch(X_test[:1]),
    )
    with BackgroundServer(server) as handle:
        host, port = handle.address
        print(f"serving on {host}:{port}")

        # 4. a burst of concurrent single-image requests
        correct = [0] * N_CLIENTS

        def client_worker(worker_index: int) -> None:
            rng = np.random.default_rng(worker_index)
            with ServingClient(host, port) as client:
                for _ in range(REQUESTS_PER_CLIENT):
                    i = int(rng.integers(X_test.shape[0]))
                    label = int(client.predict(X_test[i])[0])
                    correct[worker_index] += label == int(data.y_test[i])

        start = time.perf_counter()
        threads = [
            threading.Thread(target=client_worker, args=(w,))
            for w in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        n_requests = N_CLIENTS * REQUESTS_PER_CLIENT

        with ServingClient(host, port) as client:
            snap = client.stats()
        latency = snap["latency_us"]
        print(
            f"{n_requests} single-image requests from {N_CLIENTS} clients "
            f"in {elapsed * 1e3:.0f} ms "
            f"({n_requests / elapsed:.0f} requests/s), "
            f"served accuracy {sum(correct) / n_requests:.3f}"
        )
        print(
            f"server latency p50/p95/p99: {latency['p50']:.0f} / "
            f"{latency['p95']:.0f} / {latency['p99']:.0f} us; "
            f"mean batch occupancy {snap['mean_batch_occupancy']:.1f} "
            f"samples ({snap['batches']} batches, {snap['shed']} shed)"
        )


if __name__ == "__main__":
    main()
