"""Serving demo: train two PoET-BiN variants, serve both from one process.

The end-to-end tour of the multi-tenant serving story:

1. generate the MNIST stand-in (procedural digit glyphs), binarise the
   pixels into feature bits,
2. train two PoET-BiN students — a larger "quality" variant and a smaller
   "fast" variant (fewer intermediate bits per class), the classic A/B
   deployment,
3. start the asyncio batching server on a background thread with **both**
   models registered over **one shared WorkerPool**: each model gets its
   own coalescing queue, all sharded evaluation lands on the same worker
   processes, and a shared admission budget bounds the box,
4. fire a burst of concurrent single-image requests from client threads,
   alternating models (the worst-case traffic the batcher exists for), and
   print per-model latency percentiles and batch occupancy,
5. scrape the server's ``GET /metrics`` endpoint with a real HTTP GET
   (the server runs a native HTTP listener when given ``http_port=``) and
   show a few of the Prometheus-format lines a scraper would collect,
6. retrain the "fast" variant and roll it out *live*: register the
   retrain as version 2 of the same family, mirror real traffic to it in
   shadow mode (bit-exact diffing, zero client latency), and let
   ``promote_canary`` flip the serving pointer automatically once the
   evidence is clean — then do the same with a deliberately different
   retrain (new seed) and watch the canary roll it back while version 2
   keeps serving; the displaced versions detach from the shared
   WorkerPool (the worker-registry census before/after shows the
   eviction),
7. with ``--stats-text``, finish by printing the full Prometheus-style
   scrape (the ``stats_text`` protocol op carries the same text over the
   serving socket).

Run with::

    make serve-demo          # or: PYTHONPATH=src python examples/serving_demo.py
    make serve-stats         # the same, ending with the stats_text scrape
"""

from __future__ import annotations

import sys
import threading
import time
import urllib.request

import numpy as np

from repro.core import PoETBiNClassifier
from repro.datasets import make_synthetic_mnist
from repro.engine import WorkerPool
from repro.serving import BackgroundServer, InferenceServer, ServingClient

N_CLASSES = 10
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 16
#: intermediate bits per class for the two served variants (the paper uses
#: P; small here so the demo trains in seconds)
VARIANTS = {"quality": 2, "fast": 1}


def binarise(images: np.ndarray) -> np.ndarray:
    """2x-downsampled thresholded pixels: (N, 28, 28, 1) -> (N, 196) bits."""
    return (images[:, ::2, ::2, 0] > 0.5).reshape(images.shape[0], -1).astype(np.uint8)


def class_membership_targets(y: np.ndarray, per_class: int) -> np.ndarray:
    """Intermediate targets: ``per_class`` copies of the one-vs-rest bit.

    A stand-in for the teacher network's intermediate layer that keeps the
    demo fast; each RINC module learns "is this a <digit>?" from pixels.
    (Accuracy is modest — one-vs-rest bits from thresholded glyph pixels
    are a hard target for 6-input LUT trees; the full teacher pipeline in
    ``examples/full_pipeline_mnist.py`` is the accuracy story, this demo
    is the serving story.)
    """
    one_hot = (y[:, np.newaxis] == np.arange(N_CLASSES)).astype(np.uint8)
    return np.repeat(one_hot, per_class, axis=1)


def main(print_stats_text: bool = False) -> None:
    # 1. data: procedural digits, binarised to 196 feature bits
    data = make_synthetic_mnist(n_train=1500, n_test=400, seed=0)
    X_train, X_test = binarise(data.X_train), binarise(data.X_test)
    print(
        f"synthetic digits: {X_train.shape[0]} train / {X_test.shape[0]} test, "
        f"{X_train.shape[1]} feature bits"
    )

    # 2. train the two student variants
    models = {}
    for name, per_class in VARIANTS.items():
        start = time.perf_counter()
        clf = PoETBiNClassifier(
            n_classes=N_CLASSES,
            n_inputs=6,
            n_levels=2,  # RINC-2, as in the paper's experiments
            intermediate_per_class=per_class,
            output_epochs=10,
            seed=0,
        ).fit(
            X_train, class_membership_targets(data.y_train, per_class),
            data.y_train,
        )
        models[name] = clf
        print(
            f"trained {name!r} ({clf.n_intermediate} RINC modules) "
            f"in {time.perf_counter() - start:.1f} s, "
            f"test accuracy {clf.score(X_test, data.y_test):.3f}, "
            f"{clf.lut_count()} LUTs"
        )

    # 3. serve both: one shared WorkerPool under every model, one queue and
    #    one stats collector per model, a shared admission budget over all;
    #    warm_up pre-forks the pool and pre-compiles both engines before
    #    traffic arrives
    pool = WorkerPool(n_workers=2)

    def warm_up():
        for clf in models.values():
            clf.predict_batch(X_test[:1], pool=pool)
        pool.warm_up()

    server = InferenceServer(
        max_batch=64,
        max_wait_us=2000,
        max_queue=4096,
        max_total_queue=8192,
        warm_up=warm_up,
        http_port=0,  # any free port; serves GET /metrics and /healthz
    )
    for name, clf in models.items():
        server.register_model(name, model=clf, pool=pool)
    with BackgroundServer(server) as handle:
        host, port = handle.address
        with ServingClient(host, port) as client:
            listing = client.list_models()
        print(
            f"serving on {host}:{port}: "
            + ", ".join(m["name"] for m in listing["models"])
            + f" (default {listing['default']!r})"
        )

        # 4. a burst of concurrent single-image requests, alternating models
        names = list(models)
        correct = [0] * N_CLIENTS

        def client_worker(worker_index: int) -> None:
            rng = np.random.default_rng(worker_index)
            with ServingClient(host, port) as client:
                for request_index in range(REQUESTS_PER_CLIENT):
                    name = names[(worker_index + request_index) % len(names)]
                    i = int(rng.integers(X_test.shape[0]))
                    label = int(client.predict(X_test[i], model=name)[0])
                    correct[worker_index] += label == int(data.y_test[i])

        start = time.perf_counter()
        threads = [
            threading.Thread(target=client_worker, args=(w,))
            for w in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        n_requests = N_CLIENTS * REQUESTS_PER_CLIENT

        with ServingClient(host, port) as client:
            snaps = {name: client.stats(model=name) for name in models}
            stats_text = client.stats_text() if print_stats_text else None
        print(
            f"{n_requests} single-image requests from {N_CLIENTS} clients "
            f"across {len(models)} models in {elapsed * 1e3:.0f} ms "
            f"({n_requests / elapsed:.0f} requests/s), "
            f"served accuracy {sum(correct) / n_requests:.3f}"
        )
        for name, snap in snaps.items():
            latency = snap["latency_us"]
            print(
                f"  {name:8s} p50/p95/p99: {latency['p50']:.0f} / "
                f"{latency['p95']:.0f} / {latency['p99']:.0f} us; "
                f"mean occupancy {snap['mean_batch_occupancy']:.1f} "
                f"({snap['batches']} batches, {snap['shed']} shed)"
            )

        # 5. scrape GET /metrics — a real HTTP GET, exactly what a
        #    Prometheus scraper issues against the http_port listener
        http_host, http_port = server.http_address
        url = f"http://{http_host}:{http_port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            content_type = response.headers["Content-Type"]
            body = response.read().decode("utf-8")
        shown = [
            line
            for line in body.splitlines()
            if line.startswith("repro_serving_requests_completed")
        ]
        print(
            f"GET {url} -> {content_type!r}, "
            f"{len(body.splitlines())} lines, including:"
        )
        for line in shown:
            print(f"  {line}")

        # 6. live lifecycle: retrain -> shadow -> canary
        def train_fast_variant(seed: int) -> PoETBiNClassifier:
            per_class = VARIANTS["fast"]
            return PoETBiNClassifier(
                n_classes=N_CLASSES,
                n_inputs=6,
                n_levels=2,
                intermediate_per_class=per_class,
                output_epochs=10,
                seed=seed,
            ).fit(
                X_train,
                class_membership_targets(data.y_train, per_class),
                data.y_train,
            )

        def register_version(version: int, clf: PoETBiNClassifier) -> None:
            async def _do():
                server.register_model(
                    "fast", model=clf, pool=pool, version=version
                )

            handle.run(_do())

        def drive_traffic(client: ServingClient, n: int) -> None:
            rng = np.random.default_rng(99)
            for _ in range(n):
                i = int(rng.integers(X_test.shape[0]))
                client.predict(X_test[i], model="fast")

        async def _quiesce():
            await server.registry.wait_idle()

        print("\n--- live lifecycle: retrain -> shadow -> canary ---")
        with ServingClient(host, port) as client:
            # a same-seed retrain is bit-identical: the canary promotes it
            register_version(2, train_fast_variant(seed=0))
            client.set_shadow("fast", 2)
            drive_traffic(client, 24)
            handle.run(_quiesce())
            report = client.shadow_report("fast")
            print(
                f"shadow v2: {report['shadow_requests']} mirrored, "
                f"{report['shadow_divergences']} divergences "
                f"(rate {report['divergence_rate']:.3f})"
            )
            verdict = client.promote_canary("fast", 2, min_requests=16)
            print(
                f"canary v2 verdict: {verdict['status']} "
                f"(divergence rate {verdict['divergence_rate']:.3f})"
            )
            handle.run(_quiesce())

            # a different-seed retrain learns different LUTs: divergences
            # are recorded and the canary rolls it back; v2 keeps serving
            register_version(3, train_fast_variant(seed=1))
            client.set_shadow("fast", 3)
            drive_traffic(client, 24)
            handle.run(_quiesce())
            report = client.shadow_report("fast")
            print(
                f"shadow v3: {report['shadow_requests']} mirrored, "
                f"{report['shadow_divergences']} divergences "
                f"(rate {report['divergence_rate']:.3f})"
            )
            verdict = client.promote_canary("fast", 3, min_requests=16)
            line = f"canary v3 verdict: {verdict['status']}"
            if verdict.get("reason"):
                line += f" ({verdict['reason']})"
            print(line)
            handle.run(_quiesce())
            serving_now = server.registry.serving_versions()["fast"]
            print(
                f"family 'fast' now serving version {serving_now}; "
                "lifecycle tail:"
            )
            for event in client.lifecycle("fast")[-4:]:
                fields = {
                    k: v
                    for k, v in event.items()
                    if k not in ("seq", "ts", "policy")
                }
                print(f"  {fields}")
            census = pool.worker_registry_sizes()
            if census:
                print(
                    "worker registries after retires: "
                    + ", ".join(
                        f"pid {pid}: {n} netlists"
                        for pid, (n, _) in sorted(census.items())
                    )
                )

        if stats_text is not None:
            print("\n--- stats_text scrape (Prometheus exposition format) ---")
            print(stats_text, end="")


if __name__ == "__main__":
    main(print_stats_text="--stats-text" in sys.argv[1:])
