"""Microbenchmarks of the core building blocks.

Not a paper table, but useful engineering context: how long one level-wise
tree takes to train at paper-like sizes, how fast LUT-netlist inference is,
and the cost of VHDL generation.
"""

import numpy as np

from repro.core import RINCClassifier
from repro.hardware import generate_vhdl
from repro.trees import LevelWiseDecisionTree
from repro.utils.rng import as_rng

from bench_utils import emit


def _binary_task(n, n_features, seed=0):
    rng = as_rng(seed)
    X = (rng.random((n, n_features)) < 0.5).astype(np.uint8)
    support = rng.choice(n_features, size=16, replace=False)
    w = rng.normal(size=16)
    y = (X[:, support] @ w - w.sum() / 2 >= 0).astype(np.int64)
    return X, y


def test_level_tree_fit_paper_size(benchmark):
    """One RINC-0 tree at paper-like size: n=3000 samples, F=512 features, P=8."""
    X, y = _binary_task(3000, 512)
    tree = benchmark(lambda: LevelWiseDecisionTree(n_inputs=8).fit(X, y))
    assert len(tree.feature_indices_) == 8


def test_rinc2_predict_throughput(benchmark, trained_reduced_poetbin):
    """Batch prediction throughput of a trained reduced PoET-BiN classifier."""
    clf, X, _y = trained_reduced_poetbin
    labels = benchmark(clf.predict, X)
    assert labels.shape == (X.shape[0],)


def test_netlist_inference_throughput(benchmark, trained_reduced_poetbin):
    """LUT-netlist simulation throughput (the 'hardware' inference path)."""
    clf, X, _y = trained_reduced_poetbin
    netlist = clf.to_netlist()
    bits = benchmark(netlist.evaluate_outputs, X[:500])
    assert bits.shape == (500, clf.n_intermediate)


def test_vhdl_generation_speed(benchmark, trained_reduced_poetbin):
    """VHDL generation cost for the full reduced classifier netlist."""
    clf, _X, _y = trained_reduced_poetbin
    netlist = clf.to_netlist()
    code = benchmark(generate_vhdl, netlist)
    emit(
        "VHDL generation summary",
        f"{netlist.n_luts} LUT nodes -> {len(code.splitlines())} lines of VHDL",
    )
    assert "entity poetbin_classifier is" in code


def test_boosted_rinc1_training(benchmark):
    """Training one RINC-1 module (6 boosted trees) at moderate size."""
    X, y = _binary_task(2000, 256, seed=3)
    module = benchmark.pedantic(
        lambda: RINCClassifier(n_inputs=6, n_levels=1).fit(X, y), rounds=1, iterations=1
    )
    assert module.lut_count() == 7
