"""Cluster router over replicated backends: the replica-scaling gate.

The in-process router tests (``tests/serving/test_router.py``) pin the
routing logic; this benchmark pins the *cluster claim* across real process
boundaries.  Two backend boxes and one router run as separate OS processes
(``python -m repro.serving.standalone``); the driver fires the
256-concurrent mixed-model workload over the binary protocol and checks:

1. **Throughput**: the 2-replica router must sustain >= 1.8x the
   single-backend throughput.  The standalone popcount model carries a
   *modeled service time* — ``time.sleep`` per batch on the queue's
   single-threaded executor, GIL released, exactly like a real engine's
   compute — so two replicas genuinely overlap even on a one-core CI box,
   and the per-backend-per-model serialisation makes the scaling honest.
2. **Zero loss on replica death**: SIGKILL one backend mid-run; every
   accepted request must still complete, bit-exact, through failover —
   the client never sees the dead box.

Like every perf gate in this repo, the throughput measurement escalates
with interleaved re-measurement (mins only improve) before failing, so a
noisy CPU spike delays convergence instead of flaking.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.engine import pack_bits
from repro.serving.binary_protocol import (
    _COMMON,
    _REPLY_HEAD,
    OP_REPLY,
    encode_predict_request,
)
from repro.serving.protocol import recv_message, send_message
from repro.utils.rng import as_rng

from bench_utils import emit, record_gate

N_FEATURES = 256
N_CLASSES = 10
SLEEP_MS = 10  # modeled service time per batch
N_REQUESTS = 256
SAMPLES_PER_REQUEST = 64
N_CONNECTIONS = 16
SCALING_TARGET = 1.8
MODELS = ("alpha", "beta")
MODEL_SPEC = f"popcount:{N_FEATURES}:{N_CLASSES}:{SLEEP_MS}"

_SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])


def _expected(rows: np.ndarray) -> np.ndarray:
    return rows.astype(np.int64).sum(axis=1) % N_CLASSES


def _spawn(role_args):
    """Start a standalone process; return (proc, (host, port))."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_ROOT
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serving.standalone", *role_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    banner = {}

    def read_banner():
        banner["line"] = proc.stdout.readline()

    reader = threading.Thread(target=read_banner, daemon=True)
    reader.start()
    reader.join(timeout=30)
    line = banner.get("line", "")
    if not line.startswith("SERVING "):
        proc.kill()
        raise RuntimeError(f"standalone process never came up (got {line!r})")
    _, host, port, _http = line.split()
    return proc, (host, int(port))


def _stop(proc):
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


@pytest.fixture(scope="module")
def cluster():
    """Two backend boxes + one router, each its own OS process."""
    model_args = []
    for model in MODELS:
        model_args += ["--model", f"{model}={MODEL_SPEC}"]
    procs = []
    try:
        backend_a, addr_a = _spawn(["backend", *model_args])
        procs.append(backend_a)
        backend_b, addr_b = _spawn(["backend", *model_args])
        procs.append(backend_b)
        replicas = f"{addr_a[0]}:{addr_a[1]},{addr_b[0]}:{addr_b[1]}"
        router, addr_router = _spawn(
            ["router"]
            + [arg for model in MODELS for arg in ("--route", f"{model}={replicas}")]
        )
        procs.append(router)
        yield {
            "backend_a": (backend_a, addr_a),
            "backend_b": (backend_b, addr_b),
            "router": (router, addr_router),
        }
    finally:
        for proc in procs:
            _stop(proc)


def _make_workload(seed=11):
    """Per-request (model, rows, packed words, expected labels)."""
    rng = as_rng(seed)
    requests = []
    for i in range(N_REQUESTS):
        rows = rng.integers(
            0, 2, size=(SAMPLES_PER_REQUEST, N_FEATURES), dtype=np.uint8
        )
        requests.append(
            {
                "model": MODELS[i % len(MODELS)],
                "packed": pack_bits(rows),
                "expected": _expected(rows),
            }
        )
    return requests


async def _read_reply(reader):
    """(request_id, labels) of one OP_REPLY frame (client side, async)."""
    header = await reader.readexactly(_COMMON.size)
    _, _, opcode, flags, request_id = _COMMON.unpack(header)
    assert opcode == OP_REPLY, f"unexpected opcode 0x{opcode:02x}"
    samples, n_classes = _REPLY_HEAD.unpack(
        await reader.readexactly(_REPLY_HEAD.size)
    )
    body = await reader.readexactly(
        samples * 8 + (samples * n_classes * 8 if flags & 0x01 else 0)
    )
    return request_id, np.frombuffer(body[: samples * 8], dtype="<i8")


async def _drive(address, requests, on_reply=None):
    """The mixed-model binary workload over pooled pipelined connections."""
    n = len(requests)
    labels = [None] * n

    async def worker(indices):
        reader, writer = await asyncio.open_connection(*address)
        try:
            writer.write(
                b"".join(
                    encode_predict_request(
                        requests[i]["packed"],
                        SAMPLES_PER_REQUEST,
                        model=requests[i]["model"],
                        request_id=i,
                    )
                    for i in indices
                )
            )
            await writer.drain()
            for _ in indices:
                request_id, reply_labels = await _read_reply(reader)
                labels[request_id] = reply_labels
                if on_reply is not None:
                    on_reply()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    shares = [list(range(i, n, N_CONNECTIONS)) for i in range(N_CONNECTIONS)]
    await asyncio.gather(*(worker(share) for share in shares))
    return labels


def _timed_run(address, requests):
    start = time.perf_counter()
    labels = asyncio.run(_drive(address, requests))
    elapsed = time.perf_counter() - start
    for request, got in zip(requests, labels):
        np.testing.assert_array_equal(got, request["expected"])
    return elapsed


def _router_stats(address):
    import socket

    with socket.create_connection(address, timeout=10) as sock:
        send_message(sock, {"op": "stats", "id": 1})
        return recv_message(sock)["router"]


def test_two_replica_router_scales_throughput(cluster):
    """256 mixed-model requests: router over 2 boxes >= 1.8x one box."""
    requests = _make_workload()
    _, backend_address = cluster["backend_a"]
    _, router_address = cluster["router"]

    t_single = _timed_run(backend_address, requests)
    t_router = _timed_run(router_address, requests)
    for _ in range(3):
        if t_single / t_router >= SCALING_TARGET:
            break
        t_single = min(t_single, _timed_run(backend_address, requests))
        t_router = min(t_router, _timed_run(router_address, requests))

    total_samples = N_REQUESTS * SAMPLES_PER_REQUEST
    emit(
        "cluster router: 2-replica scaling (binary wire, mixed models)",
        "\n".join(
            [
                f"requests                  {N_REQUESTS} x "
                f"{SAMPLES_PER_REQUEST} samples, models {'/'.join(MODELS)}",
                f"modeled service time      {SLEEP_MS} ms / {SAMPLES_PER_REQUEST}-batch",
                f"single backend            {t_single * 1e3:9.1f} ms  "
                f"({total_samples / t_single:,.0f} samples/s)",
                f"router over 2 replicas    {t_router * 1e3:9.1f} ms  "
                f"({total_samples / t_router:,.0f} samples/s)",
                f"scaling                   {t_single / t_router:9.2f}x  "
                f"(gate >= {SCALING_TARGET}x)",
            ]
        ),
    )
    record_gate("router_scaling", t_single / t_router, SCALING_TARGET)
    assert t_single / t_router >= SCALING_TARGET, (
        f"2-replica router scaled only {t_single / t_router:.2f}x over a "
        f"single backend (gate {SCALING_TARGET}x)"
    )


def test_replica_death_mid_run_loses_nothing(cluster):
    """SIGKILL a backend mid-run: every request still completes bit-exact."""
    requests = _make_workload(seed=23)
    backend_b, _ = cluster["backend_b"]
    _, router_address = cluster["router"]

    completed = {"n": 0, "killed": False}

    def on_reply():
        completed["n"] += 1
        # pull the plug once the run is warm: in-flight requests on the
        # dead box must fail over, queued ones must re-route
        if not completed["killed"] and completed["n"] >= N_REQUESTS // 4:
            completed["killed"] = True
            backend_b.send_signal(signal.SIGKILL)

    labels = asyncio.run(_drive(router_address, requests, on_reply=on_reply))
    assert completed["killed"], "the kill never fired — run too short?"
    backend_b.wait(timeout=10)

    # zero loss: every accepted request answered, every answer bit-exact
    assert all(got is not None for got in labels)
    for request, got in zip(requests, labels):
        np.testing.assert_array_equal(got, request["expected"])

    stats = _router_stats(router_address)
    dead = [b for b in stats["backends"] if b["state"] != "healthy"]
    assert len(dead) == 1, stats
    assert dead[0]["ejections"] >= 1
    emit(
        "cluster router: replica-death drill",
        "\n".join(
            [
                f"requests completed        {len(labels)}/{N_REQUESTS} "
                f"(killed one of 2 replicas after {N_REQUESTS // 4})",
                f"router failovers          {stats['failovers']}",
                f"ejected backend           {dead[0]['backend']} "
                f"({dead[0]['ejections']} ejection(s))",
            ]
        ),
    )
