"""Binary wire protocol vs JSON: the zero-copy transport gate.

The serving-latency benchmark gates *coalescing* against per-request
dispatch.  This one isolates the *wire*: the same 256-concurrent 1-sample
scenario, the same server, but a model whose compute is a single vectorised
reduction — near zero — so wall clock is dominated by what each protocol
spends framing, shipping and decoding requests.

Per request, the JSON protocol turns ``F`` features into JSON text (~2
bytes per feature), a parse back into Python objects, and a server-side
re-validate + re-pack.  The binary protocol ships the client's resident
:func:`~repro.engine.bitpack.pack_bits` words — decoded with one
``frombuffer`` — and the queue coalesces them in the packed domain, so the
server never materialises a byte matrix, let alone JSON.

Each client holds its payload in its native format *outside* the timed
region — the packed word matrix for the binary client ("pack once"), the
nested Python list for the JSON client (already generous: a packed-native
client would pay an unpack first).  The timed region covers per-request
framing, the wire, server-side decode + dispatch + evaluation, and reply
parsing — the full overhead a serving deployment pays per request.

Gate: at 1024 features, binary wire+dispatch must be >= 3x cheaper than
JSON, labels bit-exact against the direct evaluation on both transports.
Like every perf gate in this repo, the measurement escalates with
interleaved re-measurement (mins only improve) before failing, so a noisy
CPU spike delays convergence instead of flaking.
"""

from __future__ import annotations

import asyncio
import sys
import time

import numpy as np

from repro.engine import pack_bits, unpack_bits
from repro.serving import BackgroundServer, InferenceServer, ServerStats
from repro.serving.binary_protocol import (
    _COMMON,
    _REPLY_HEAD,
    OP_REPLY,
    encode_predict_request,
)
from repro.serving.protocol import encode_message, read_message
from repro.utils.rng import as_rng

from bench_utils import emit, record_gate

N_FEATURES = 1024
N_CLASSES = 10
N_REQUESTS = 256
N_CONNECTIONS = 16
WIRE_TARGET = 3.0


def _batch_fn(X: np.ndarray) -> np.ndarray:
    """Popcount mod N_CLASSES: one vectorised reduction, near-zero cost."""
    return np.asarray(X, dtype=np.int64).sum(axis=1) % N_CLASSES


def _packed_fn(words: np.ndarray, n_samples: int) -> np.ndarray:
    """The model's packed entry point: one vectorised unpack + reduction.

    (At 1024 one-word signals, a single C-speed ``unpack_bits`` beats the
    generic bit-sliced ``packed_weighted_sums`` counter by ~50x — the right
    packed strategy is per-model, which is exactly why ``packed_fn`` is a
    pluggable hook and not hard-wired.)
    """
    return _batch_fn(unpack_bits(words, n_samples))


async def _drive_json(address, payloads) -> np.ndarray:
    """One-sample JSON requests pipelined over pooled connections.

    ``payloads[i]`` is the request's features as a nested list — the JSON
    client's native representation; the timed region pays the JSON text
    encode, exactly what the protocol imposes.
    """
    n = len(payloads)
    labels = np.empty(n, dtype=np.int64)

    async def worker(indices):
        reader, writer = await asyncio.open_connection(*address)
        try:
            writer.write(
                b"".join(
                    encode_message(
                        {"op": "predict", "id": i, "features": payloads[i]}
                    )
                    for i in indices
                )
            )
            await writer.drain()
            for _ in indices:
                response = await read_message(reader)
                assert response is not None and response["ok"], response
                labels[response["id"]] = response["labels"][0]
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    shares = [list(range(i, n, N_CONNECTIONS)) for i in range(N_CONNECTIONS)]
    await asyncio.gather(*(worker(share) for share in shares))
    return labels


async def _read_binary_reply(reader) -> tuple:
    """(request_id, labels) of one OP_REPLY frame (client side, async)."""
    header = await reader.readexactly(_COMMON.size)
    _, _, opcode, flags, request_id = _COMMON.unpack(header)
    assert opcode == OP_REPLY, f"unexpected opcode 0x{opcode:02x}"
    samples, n_classes = _REPLY_HEAD.unpack(
        await reader.readexactly(_REPLY_HEAD.size)
    )
    body = await reader.readexactly(
        samples * 8 + (samples * n_classes * 8 if flags & 0x01 else 0)
    )
    labels = np.frombuffer(body[: samples * 8], dtype="<i8")
    return request_id, labels


async def _drive_binary(address, packed_payloads) -> np.ndarray:
    """The same load over the binary protocol.

    ``packed_payloads[i]`` is the request's resident ``pack_bits`` word
    matrix; the timed region pays the binary framing — a header pack plus
    one ``tobytes`` — exactly what the protocol imposes.
    """
    n = len(packed_payloads)
    labels = np.empty(n, dtype=np.int64)

    async def worker(indices):
        reader, writer = await asyncio.open_connection(*address)
        try:
            writer.write(
                b"".join(
                    encode_predict_request(
                        packed_payloads[i], 1, request_id=i
                    )
                    for i in indices
                )
            )
            await writer.drain()
            for _ in indices:
                request_id, reply_labels = await _read_binary_reply(reader)
                labels[request_id] = reply_labels[0]
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    shares = [list(range(i, n, N_CONNECTIONS)) for i in range(N_CONNECTIONS)]
    await asyncio.gather(*(worker(share) for share in shares))
    return labels


def _timed(drive, address, payloads):
    start = time.perf_counter()
    labels = asyncio.run(drive(address, payloads))
    return time.perf_counter() - start, labels


def test_binary_wire_beats_json_wire():
    """256 concurrent 1-sample requests, popcount model: binary >= 3x JSON."""
    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        _run_wire_gate()
    finally:
        sys.setswitchinterval(previous_interval)


def _run_wire_gate():
    rng = as_rng(6)
    rows = rng.integers(0, 2, size=(N_REQUESTS, N_FEATURES), dtype=np.uint8)
    expected = _batch_fn(rows)
    # each client's native payload, held outside the timed region
    json_payloads = [rows[i : i + 1].tolist() for i in range(N_REQUESTS)]
    packed_payloads = [pack_bits(rows[i : i + 1]) for i in range(N_REQUESTS)]

    stats = ServerStats()
    server = InferenceServer(
        batch_fn=_batch_fn,
        packed_fn=_packed_fn,
        max_batch=64,
        max_wait_us=10_000,
        max_queue=4096,
        stats=stats,
        warm_up=lambda: _packed_fn(packed_payloads[0], 1),
    )
    with BackgroundServer(server) as handle:
        t_json, labels_json = _timed(_drive_json, handle.address, json_payloads)
        t_bin, labels_bin = _timed(
            _drive_binary, handle.address, packed_payloads
        )
        np.testing.assert_array_equal(labels_json, expected)
        np.testing.assert_array_equal(labels_bin, expected)
        # escalate with interleaved re-measurement before failing: mins
        # only improve, so noise delays convergence instead of flaking
        for _ in range(3):
            if t_json / t_bin >= WIRE_TARGET:
                break
            t_again, labels_json = _timed(
                _drive_json, handle.address, json_payloads
            )
            np.testing.assert_array_equal(labels_json, expected)
            t_json = min(t_json, t_again)
            t_again, labels_bin = _timed(
                _drive_binary, handle.address, packed_payloads
            )
            np.testing.assert_array_equal(labels_bin, expected)
            t_bin = min(t_bin, t_again)
        snapshot = stats.snapshot()

    ratio = t_json / t_bin
    json_bytes = len(
        encode_message({"op": "predict", "id": 0, "features": json_payloads[0]})
    )
    bin_bytes = len(encode_predict_request(packed_payloads[0], 1))
    emit(
        f"Binary vs JSON wire overhead ({N_REQUESTS} concurrent 1-sample "
        f"requests, {N_FEATURES}-feature popcount model)",
        "\n".join(
            [
                f"JSON        {t_json * 1e3:8.2f} ms   "
                f"({t_json / N_REQUESTS * 1e6:7.1f} us/request, "
                f"{json_bytes} wire bytes/request)",
                f"binary      {t_bin * 1e3:8.2f} ms   "
                f"({t_bin / N_REQUESTS * 1e6:7.1f} us/request, "
                f"{bin_bytes} wire bytes/request)   ratio {ratio:4.1f}x",
                f"batch occupancy mean "
                f"{snapshot['mean_batch_occupancy']:.1f} samples/batch, "
                f"{snapshot['batches']} batches, {snapshot['shed']} shed",
            ]
        ),
    )
    assert snapshot["shed"] == 0, "no request should be shed at this load"
    assert snapshot["mean_batch_occupancy"] > 1.0, (
        "requests never coalesced — the server degenerated to per-request work"
    )
    record_gate("binary_wire_speedup", ratio, WIRE_TARGET)
    assert ratio >= WIRE_TARGET, (
        f"binary wire is only {ratio:.2f}x faster than JSON "
        f"(target {WIRE_TARGET}x)"
    )


def test_binary_labels_bit_exact_vs_predict_batch():
    """Mixed-size binary requests reproduce predict_batch exactly."""
    rng = as_rng(7)
    sizes = [int(rng.integers(1, 70)) for _ in range(20)]
    chunks = [
        rng.integers(0, 2, size=(k, N_FEATURES), dtype=np.uint8) for k in sizes
    ]
    server = InferenceServer(
        batch_fn=_batch_fn,
        packed_fn=_packed_fn,
        max_batch=128,
        max_wait_us=1_500,
        max_queue=4096,
    )
    from repro.serving import ServingClient

    with BackgroundServer(server) as handle:
        with ServingClient(*handle.address, binary=True) as client:
            for chunk in chunks:
                np.testing.assert_array_equal(
                    client.predict(chunk), _batch_fn(chunk)
                )
