"""Benchmark / regeneration of Table 1 (network architectures)."""

from repro.experiments.runner import TABLE1_HEADERS, table1_rows
from repro.experiments.reporting import rows_to_table

from bench_utils import emit


def test_table1_registry(benchmark):
    rows = benchmark(table1_rows)
    assert len(rows) == 3
    symbols = [row[0] for row in rows]
    assert symbols == ["M1", "C1", "S1"]
    emit("Table 1: network architectures", rows_to_table(TABLE1_HEADERS, rows))
