"""Benchmark / regeneration of Table 6 (energy per inference)."""

from repro.experiments import run_table6
from repro.experiments.reporting import rows_to_table
from repro.experiments.table6_energy import TABLE6_HEADERS, energy_reduction_summary

from bench_utils import emit


def test_table6_energy(benchmark):
    rows = benchmark(run_table6)
    by_technique = {row.technique: row for row in rows}
    for dataset in ("mnist", "cifar10", "svhn"):
        poetbin = getattr(by_technique["poet-bin"], dataset)
        vanilla = getattr(by_technique["vanilla"], dataset)
        assert poetbin < vanilla / 1e3
    emit("Table 6: energy per inference", rows_to_table(TABLE6_HEADERS, rows))


def test_table6_reduction_summary(benchmark):
    rows = benchmark(energy_reduction_summary)
    emit(
        "Table 6 summary: PoET-BiN energy reduction factors "
        "(vs vanilla / 16-bit / 1-bit)",
        rows_to_table(["dataset", "vs vanilla", "vs 16-bit", "vs 1-bit"], rows),
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["cifar10"][1] > 1e5
