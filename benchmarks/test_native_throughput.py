"""Native (generated-C) backend throughput vs the NumPy packed engine.

The NumPy engine already beats the naive simulator by an order of magnitude
(see ``test_engine_throughput``), but it still pays interpreter and
temporary-array overhead per Shannon-mux step: every level of every LUT's
cascade is a separate vectorised numpy call over the whole word block.  The
native backend compiles the same flat program into straight-line C — one
fused expression per LUT with the table bits folded into constants at
generation time — so a word's entire netlist evaluation runs register-hot
with zero dispatch.

The gate: on the paper's P=6 RINC-bank shape, the native engine must be at
least ``NATIVE_SPEEDUP_TARGET``x faster than the NumPy engine on the same
packed words, bit-identical.  Hosts without a C toolchain skip with an
explicit reason (the serving default is ``backend="auto"``, which falls
back to NumPy on exactly those hosts).
"""

import time

import numpy as np
import pytest

from repro.engine import compile_netlist, pack_bits, rinc_bank_netlist
from repro.engine.native import find_compiler
from repro.utils import as_rng

from bench_utils import emit, record_gate

BATCH = 1024
N_FEATURES = 256
NATIVE_SPEEDUP_TARGET = 5.0  # native vs NumPy engine, P=6 bank


def _best_of(fn, repeats: int, inner: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _measure(numpy_engine, native_engine, packed, rounds: int = 4):
    """Interleaved best-of over both engines (same packed words).

    Alternating the paths within each round keeps a noisy-neighbour CPU
    spike from hitting only one side of the comparison.
    """
    t_numpy = t_native = float("inf")
    for _ in range(rounds):
        t_numpy = min(
            t_numpy,
            _best_of(lambda: numpy_engine.run_packed(packed), repeats=3, inner=2),
        )
        t_native = min(
            t_native,
            _best_of(lambda: native_engine.run_packed(packed), repeats=3, inner=8),
        )
    return t_numpy, t_native


def test_native_backend_speedup():
    """Generated C vs NumPy on the paper's P=6 netlist: >= 5x, bit-identical."""
    if find_compiler() is None:
        pytest.skip(
            "no C compiler on this host (need cc/gcc/clang or $CC); the "
            "native backend gate cannot run — backend='auto' serves NumPy here"
        )
    rows = []
    gate_parts = None
    for lut_width in (4, 6):
        netlist = rinc_bank_netlist(
            n_primary_inputs=N_FEATURES,
            n_trees=480,
            n_mats=80,
            n_outputs=10,
            lut_width=lut_width,
            seed=2,
        )
        t_build = time.perf_counter()
        native = compile_netlist(netlist, backend="native")
        t_build = time.perf_counter() - t_build
        numpy_engine = compile_netlist(netlist)
        X = as_rng(0).integers(0, 2, size=(BATCH, N_FEATURES), dtype=np.uint8)
        packed = pack_bits(X)

        # correctness first: the speed comparison is meaningless otherwise
        np.testing.assert_array_equal(
            native.run_packed(packed), numpy_engine.run_packed(packed)
        )
        np.testing.assert_array_equal(
            native.predict_batch(X), netlist.evaluate_outputs(X)
        )

        t_numpy, t_native = _measure(numpy_engine, native, packed)
        if lut_width == 6:
            # the acceptance gate; re-measure with more rounds if a noisy
            # run left the ratio short (mins only improve, so this
            # converges on the steady-state speedup instead of flaking)
            for _ in range(2):
                if t_numpy / t_native >= NATIVE_SPEEDUP_TARGET:
                    break
                more = _measure(numpy_engine, native, packed, rounds=8)
                t_numpy = min(t_numpy, more[0])
                t_native = min(t_native, more[1])
            gate_parts = (t_numpy, t_native)
        rows.append(
            f"P={lut_width}  {netlist.n_luts:4d} LUTs  "
            f"build {t_build:5.2f} s  "
            f"numpy {t_numpy * 1e3:6.2f} ms  native {t_native * 1e3:6.3f} ms  "
            f"speedup {t_numpy / t_native:5.1f}x"
        )
    emit(
        f"Native compiled backend ({BATCH}-sample batch, "
        f"{N_FEATURES} features, cached .so after first build)",
        "\n".join(rows),
    )
    t_numpy, t_native = gate_parts
    record_gate(
        "native_backend_speedup", t_numpy / t_native, NATIVE_SPEEDUP_TARGET
    )
    assert t_numpy / t_native >= NATIVE_SPEEDUP_TARGET, (
        f"native backend is only {t_numpy / t_native:.1f}x faster than the "
        f"NumPy engine at P=6 (target {NATIVE_SPEEDUP_TARGET}x)"
    )
