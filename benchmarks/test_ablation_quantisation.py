"""Ablation benchmark: output-layer quantisation width q (§3 of the paper).

The paper reports q=4 loses noticeable accuracy, q=8 is near-lossless and
q=16 doubles the output-layer LUT cost for no accuracy gain.
"""

import numpy as np

from repro.core.output_layer import SparseQuantizedOutputLayer
from repro.experiments.ablations import ABLATION_HEADERS, AblationRow
from repro.experiments.reporting import rows_to_table
from repro.utils.metrics import accuracy

from bench_utils import emit


def test_quantisation_sweep(benchmark, trained_reduced_poetbin):
    clf, X, y = trained_reduced_poetbin
    bits = clf.predict_intermediate(X)
    split = int(0.8 * X.shape[0])
    rinc_luts = sum(m.lut_count() for m in clf.rinc_modules_)

    def sweep():
        rows = []
        for q in (4, 8, 16):
            layer = SparseQuantizedOutputLayer(
                n_classes=clf.n_classes,
                fan_in=clf.intermediate_per_class,
                n_bits=q,
                epochs=10,
                seed=0,
            ).fit(bits[:split], y[:split])
            acc = accuracy(y[split:], layer.predict(bits[split:])) * 100
            rows.append(
                AblationRow(
                    setting=f"q={q}", accuracy_percent=acc, luts=rinc_luts + layer.lut_count()
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_setting = {row.setting: row for row in rows}
    # LUT cost grows linearly with q; accuracy at q=16 does not beat q=8 by much
    assert by_setting["q=16"].luts > by_setting["q=8"].luts > by_setting["q=4"].luts
    assert by_setting["q=16"].accuracy_percent <= by_setting["q=8"].accuracy_percent + 5.0
    emit("Ablation: output-layer quantisation width q", rows_to_table(ABLATION_HEADERS, rows))
