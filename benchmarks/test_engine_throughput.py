"""Bit-packed engine vs. naive netlist simulation throughput.

The microbenchmark evaluates RINC-bank-shaped netlists (the paper's RINC-2
topology with random tables — the engine's adversarial worst case) on a
1k-sample batch and compares three paths:

* ``naive``  — ``LUTNetlist.evaluate_outputs``, the sample-by-sample simulator;
* ``packed`` — ``CompiledNetlist.run_packed`` on pre-packed words, the pure
  evaluation cost (serving keeps signals packed between stages);
* ``e2e``    — ``CompiledNetlist.predict_batch`` including validation,
  packing and unpacking of the plain 0/1 matrices.

The acceptance gate asserts the packed engine is at least 10x faster than
the naive simulator at the paper's P=6 LUT width.  Wider LUTs pay for their
exponentially larger truth tables (the Shannon cascade does ``2**P - 1``
word muxes per node), which the P=8 row documents honestly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine import compile_netlist, pack_bits, rinc_bank_netlist
from repro.utils.rng import as_rng

from bench_utils import emit

BATCH = 1024
N_FEATURES = 256
SPEEDUP_TARGET = 10.0


def _best_of(fn, repeats: int, inner: int = 1) -> float:
    """Best wall-clock seconds for one call of ``fn`` over ``repeats`` trials."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _build(lut_width: int, scale: int = 1):
    netlist = rinc_bank_netlist(
        n_primary_inputs=N_FEATURES,
        n_trees=480 * scale,
        n_mats=80 * scale,
        n_outputs=10 * scale,
        lut_width=lut_width,
        seed=2,
    )
    compiled = compile_netlist(netlist)
    rng = as_rng(0)
    X = rng.integers(0, 2, size=(BATCH, N_FEATURES), dtype=np.uint8)

    # correctness first: the speed comparison is meaningless otherwise
    np.testing.assert_array_equal(compiled.predict_batch(X), netlist.evaluate_outputs(X))
    return netlist, compiled, X


def _measure(netlist, compiled, X, rounds: int = 4):
    """Interleaved best-of measurement of all three paths.

    Alternating the paths within each round keeps a noisy-neighbour CPU
    spike from hitting only one side of the comparison; the best time per
    path over all rounds is the steady-state cost.
    """
    packed = pack_bits(X)
    t_naive = t_packed = t_e2e = float("inf")
    for _ in range(rounds):
        t_naive = min(t_naive, _best_of(lambda: netlist.evaluate_outputs(X), repeats=2))
        t_packed = min(
            t_packed, _best_of(lambda: compiled.run_packed(packed), repeats=3, inner=4)
        )
        t_e2e = min(
            t_e2e, _best_of(lambda: compiled.predict_batch(X), repeats=3, inner=4)
        )
    return t_naive, t_packed, t_e2e


def test_packed_engine_speedup():
    """Packed vs. naive on the paper's P=6 netlist: >= 10x, bit-identical."""
    rows = []
    gate_parts = None
    for lut_width in (4, 6, 8):
        netlist, compiled, X = _build(lut_width, scale=2 if lut_width == 6 else 1)
        t_naive, t_packed, t_e2e = _measure(netlist, compiled, X)
        if lut_width == 6:
            # the acceptance gate; re-measure with more rounds if a noisy
            # run left the ratio short (mins only improve, so this converges
            # on the steady-state speedup instead of flaking)
            for _ in range(2):
                if t_naive / t_packed >= SPEEDUP_TARGET:
                    break
                more = _measure(netlist, compiled, X, rounds=8)
                t_naive = min(t_naive, more[0])
                t_packed = min(t_packed, more[1])
                t_e2e = min(t_e2e, more[2])
            gate_parts = (t_naive, t_packed)
        rows.append(
            f"P={lut_width}  {netlist.n_luts:4d} LUTs  {compiled.n_groups} groups  "
            f"naive {t_naive * 1e3:7.2f} ms  packed {t_packed * 1e3:6.2f} ms  "
            f"e2e {t_e2e * 1e3:6.2f} ms  "
            f"speedup {t_naive / t_packed:5.1f}x (e2e {t_naive / t_e2e:4.1f}x)"
        )
    emit(
        f"Bit-packed engine throughput ({BATCH}-sample batch, {N_FEATURES} features)",
        "\n".join(rows),
    )
    t_naive, t_packed = gate_parts
    assert t_naive / t_packed >= SPEEDUP_TARGET, (
        f"packed engine is only {t_naive / t_packed:.1f}x faster than the "
        f"naive simulator at P=6 (target {SPEEDUP_TARGET}x)"
    )


def test_packed_engine_on_trained_classifier(trained_reduced_poetbin):
    """The fast path on a *trained* PoET-BiN matches and beats the slow path."""
    clf, X, _y = trained_reduced_poetbin
    batch = X[:BATCH]
    np.testing.assert_array_equal(clf.predict_batch(batch), clf.predict(batch))

    netlist = clf.to_netlist()
    compiled = clf.compiled_netlist()
    t_naive = _best_of(lambda: netlist.evaluate_outputs(batch), repeats=5)
    t_fast = _best_of(lambda: compiled.predict_batch(batch), repeats=5, inner=3)
    emit(
        "Trained PoET-BiN netlist: packed vs naive",
        f"{netlist.n_luts} LUTs, {batch.shape[0]} samples: "
        f"naive {t_naive * 1e3:.2f} ms, packed e2e {t_fast * 1e3:.2f} ms "
        f"({t_naive / t_fast:.1f}x)",
    )
    # trained netlists are smaller and P=6; still expect a clear win
    assert t_fast < t_naive


def test_pack_unpack_overhead():
    """Packing cost is amortisable: a small fraction of one naive evaluation."""
    rng = as_rng(1)
    X = rng.integers(0, 2, size=(BATCH, N_FEATURES), dtype=np.uint8)
    t_pack = _best_of(lambda: pack_bits(X), repeats=7, inner=5)
    emit(
        "pack_bits overhead",
        f"{BATCH}x{N_FEATURES} bits packed in {t_pack * 1e3:.3f} ms",
    )
    assert t_pack < 0.1  # seconds; generous bound, it measures ~0.3 ms
