"""Bit-packed engine vs. naive netlist simulation throughput.

The microbenchmark evaluates RINC-bank-shaped netlists (the paper's RINC-2
topology with random tables — the engine's adversarial worst case) on a
1k-sample batch and compares three paths:

* ``naive``  — ``LUTNetlist.evaluate_outputs``, the sample-by-sample simulator;
* ``packed`` — ``CompiledNetlist.run_packed`` on pre-packed words, the pure
  evaluation cost (serving keeps signals packed between stages);
* ``e2e``    — ``CompiledNetlist.predict_batch`` including validation,
  packing and unpacking of the plain 0/1 matrices.

The acceptance gate asserts the packed engine is at least 10x faster than
the naive simulator at the paper's P=6 LUT width.  Wider LUTs pay for their
exponentially larger truth tables (the Shannon cascade does ``2**P - 1``
word muxes per node), which the P=8 row documents honestly.

The compiler-pipeline benchmarks compare the raw PR-1 lowering
(``passes=()``) against the optimising pipeline: chain fusion on
narrow-LUT netlists, and fold + fuse + fabric decomposition on P=8 banks
(gate: the pipeline must beat the raw P=8 path).  The structured-bank
benchmark measures the same pipeline on *trained-shaped* tables (decision
trees + threshold votes, ``structured_bank_netlist``) where folding prunes
hard — the serving workload, vs the adversarial random floor — gating both
the table-cost pruning ratio and the resulting speedup.  The sharding
smoke test runs a 10k-sample batch through
:class:`repro.engine.parallel.ShardedEngine` and gates a >=1.5x speedup
with at least 4 workers.

All gates re-measure with interleaved best-of rounds before failing: mins
only improve, so a noisy-neighbour CPU spike delays convergence instead of
flaking the gate.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.core.netlist import LUTNetlist
from repro.engine import (
    ShardedEngine,
    compile_netlist,
    optimize_netlist,
    pack_bits,
    rinc_bank_netlist,
    structured_bank_netlist,
)
from repro.engine.passes import ConstantFoldPass
from repro.utils.rng import as_rng

from bench_utils import emit, record_gate

BATCH = 1024
N_FEATURES = 256
SPEEDUP_TARGET = 10.0
PIPELINE_P8_TARGET = 1.1  # optimised pipeline vs raw lowering on a P=8 bank
FUSION_TARGET = 1.1  # fused vs unfused on a chain-heavy netlist
SHARDING_TARGET = 1.5  # sharded vs serial, >= 4 workers, 10k samples
STRUCTURED_COST_TARGET = 4.0  # table-cost pruning on a trained-shaped bank
STRUCTURED_SPEEDUP_TARGET = 2.0  # optimised vs raw on the same bank


def _best_of(fn, repeats: int, inner: int = 1) -> float:
    """Best wall-clock seconds for one call of ``fn`` over ``repeats`` trials."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _build(lut_width: int, scale: int = 1):
    netlist = rinc_bank_netlist(
        n_primary_inputs=N_FEATURES,
        n_trees=480 * scale,
        n_mats=80 * scale,
        n_outputs=10 * scale,
        lut_width=lut_width,
        seed=2,
    )
    compiled = compile_netlist(netlist)
    rng = as_rng(0)
    X = rng.integers(0, 2, size=(BATCH, N_FEATURES), dtype=np.uint8)

    # correctness first: the speed comparison is meaningless otherwise
    np.testing.assert_array_equal(compiled.predict_batch(X), netlist.evaluate_outputs(X))
    return netlist, compiled, X


def _measure(netlist, compiled, X, rounds: int = 4):
    """Interleaved best-of measurement of all three paths.

    Alternating the paths within each round keeps a noisy-neighbour CPU
    spike from hitting only one side of the comparison; the best time per
    path over all rounds is the steady-state cost.
    """
    packed = pack_bits(X)
    t_naive = t_packed = t_e2e = float("inf")
    for _ in range(rounds):
        t_naive = min(t_naive, _best_of(lambda: netlist.evaluate_outputs(X), repeats=2))
        t_packed = min(
            t_packed, _best_of(lambda: compiled.run_packed(packed), repeats=3, inner=4)
        )
        t_e2e = min(
            t_e2e, _best_of(lambda: compiled.predict_batch(X), repeats=3, inner=4)
        )
    return t_naive, t_packed, t_e2e


def test_packed_engine_speedup():
    """Packed vs. naive on the paper's P=6 netlist: >= 10x, bit-identical."""
    rows = []
    gate_parts = None
    for lut_width in (4, 6, 8):
        netlist, compiled, X = _build(lut_width, scale=2 if lut_width == 6 else 1)
        t_naive, t_packed, t_e2e = _measure(netlist, compiled, X)
        if lut_width == 6:
            # the acceptance gate; re-measure with more rounds if a noisy
            # run left the ratio short (mins only improve, so this converges
            # on the steady-state speedup instead of flaking)
            for _ in range(2):
                if t_naive / t_packed >= SPEEDUP_TARGET:
                    break
                more = _measure(netlist, compiled, X, rounds=8)
                t_naive = min(t_naive, more[0])
                t_packed = min(t_packed, more[1])
                t_e2e = min(t_e2e, more[2])
            gate_parts = (t_naive, t_packed)
        rows.append(
            f"P={lut_width}  {netlist.n_luts:4d} LUTs  {compiled.n_groups} groups  "
            f"naive {t_naive * 1e3:7.2f} ms  packed {t_packed * 1e3:6.2f} ms  "
            f"e2e {t_e2e * 1e3:6.2f} ms  "
            f"speedup {t_naive / t_packed:5.1f}x (e2e {t_naive / t_e2e:4.1f}x)"
        )
    emit(
        f"Bit-packed engine throughput ({BATCH}-sample batch, {N_FEATURES} features)",
        "\n".join(rows),
    )
    t_naive, t_packed = gate_parts
    record_gate("engine_speedup_p6", t_naive / t_packed, SPEEDUP_TARGET)
    assert t_naive / t_packed >= SPEEDUP_TARGET, (
        f"packed engine is only {t_naive / t_packed:.1f}x faster than the "
        f"naive simulator at P=6 (target {SPEEDUP_TARGET}x)"
    )


def test_packed_engine_on_trained_classifier(trained_reduced_poetbin):
    """The fast path on a *trained* PoET-BiN matches and beats the slow path."""
    clf, X, _y = trained_reduced_poetbin
    batch = X[:BATCH]
    np.testing.assert_array_equal(clf.predict_batch(batch), clf.predict(batch))

    netlist = clf.to_netlist()
    compiled = clf.compiled_netlist()
    t_naive = _best_of(lambda: netlist.evaluate_outputs(batch), repeats=5)
    t_fast = _best_of(lambda: compiled.predict_batch(batch), repeats=5, inner=3)
    emit(
        "Trained PoET-BiN netlist: packed vs naive",
        f"{netlist.n_luts} LUTs, {batch.shape[0]} samples: "
        f"naive {t_naive * 1e3:.2f} ms, packed e2e {t_fast * 1e3:.2f} ms "
        f"({t_naive / t_fast:.1f}x)",
    )
    # trained netlists are smaller and P=6; still expect a clear win
    assert t_fast < t_naive


def _interleaved_best(paths, packed, rounds, inner=3):
    """Best wall-clock seconds per path, alternated within every round."""
    best = {name: float("inf") for name in paths}
    for _ in range(rounds):
        for name, engine in paths.items():
            start = time.perf_counter()
            for _ in range(inner):
                engine.run_packed(packed)
            best[name] = min(best[name], (time.perf_counter() - start) / inner)
    return best


def _full_support_table(rng, n_inputs):
    """A random table that depends on every one of its inputs."""
    while True:
        table = rng.integers(0, 2, size=1 << n_inputs, dtype=np.uint8)
        cube = table.reshape((2,) * n_inputs)
        if all(
            not np.array_equal(
                np.take(cube, 0, axis=axis), np.take(cube, 1, axis=axis)
            )
            for axis in range(n_inputs)
        ):
            return table


def _chain_heavy_netlist(n_chains=64, length=24, seed=3):
    """Parallel single-fanout chains of narrow LUTs — fusion's best case.

    Each chain is a 3-input head followed by 2-input links that mix the
    running value with one of the chain's three feature bits, ending in a
    declared output.  Every table has full support, so constant folding and
    support reduction cannot sever links, and dead-node pruning cannot help;
    the only available win is chain fusion folding each chain back onto its
    3-bit support (``2**3 < 2**3 + 2**2`` at every step of the collapse).
    """
    rng = as_rng(seed)
    netlist = LUTNetlist(n_primary_inputs=N_FEATURES)
    for chain in range(n_chains):
        pool = rng.choice(N_FEATURES, size=3, replace=False)
        pool = [f"in{int(i)}" for i in pool]
        previous = netlist.add_node(
            f"c{chain}_head", "rinc0", pool, _full_support_table(rng, 3)
        )
        for link in range(length):
            previous = netlist.add_node(
                f"c{chain}_{link}",
                "rinc0",
                [previous, pool[int(rng.integers(3))]],
                _full_support_table(rng, 2),
            )
        netlist.mark_output(previous)
    return netlist


def test_fused_vs_unfused():
    """Chain fusion must beat the raw lowering on a chain-heavy netlist."""
    netlist = _chain_heavy_netlist()
    unfused = compile_netlist(netlist, passes=())
    fused = compile_netlist(netlist)
    X = as_rng(0).integers(0, 2, size=(BATCH, N_FEATURES), dtype=np.uint8)
    np.testing.assert_array_equal(fused.predict_batch(X), netlist.evaluate_outputs(X))
    packed = pack_bits(X)
    paths = {"unfused": unfused, "fused": fused}
    best = _interleaved_best(paths, packed, rounds=4)
    for _ in range(3):  # re-measure escalation before failing the gate
        if best["unfused"] / best["fused"] >= FUSION_TARGET:
            break
        more = _interleaved_best(paths, packed, rounds=6)
        best = {k: min(best[k], more[k]) for k in best}
    speedup = best["unfused"] / best["fused"]
    emit(
        "Chain fusion (64 chains x 1+24 narrow LUTs, 1k-sample batch)",
        f"unfused {unfused.n_nodes} LUTs / {unfused.n_groups} groups "
        f"{best['unfused'] * 1e3:6.2f} ms   fused {fused.n_nodes} LUTs / "
        f"{fused.n_groups} groups {best['fused'] * 1e3:6.2f} ms   "
        f"speedup {speedup:4.1f}x",
    )
    # every chain collapses onto its 3-bit support: one LUT per chain
    assert fused.n_nodes == 64
    assert fused.n_groups < unfused.n_groups
    record_gate("fusion_speedup", speedup, FUSION_TARGET)
    assert speedup >= FUSION_TARGET, (
        f"fusion speedup {speedup:.2f}x below the {FUSION_TARGET}x gate"
    )


def test_p8_decomposed_vs_raw():
    """Pipeline with fabric decomposition must beat the raw P=8 path.

    ``raw`` is the PR-1 one-shot lowering; ``fold+fuse`` isolates the
    cleanup passes; ``pipeline`` adds decomposition onto the 6-input fabric
    (with the dedicated mux lowering).  The gate compares the full pipeline
    against raw — the configuration serving actually uses.
    """
    netlist = rinc_bank_netlist(
        N_FEATURES, n_trees=480, n_mats=80, n_outputs=10, lut_width=8, seed=2
    )
    raw = compile_netlist(netlist, passes=())
    folded = compile_netlist(netlist)
    pipeline = compile_netlist(netlist, max_lut_inputs=6)
    X = as_rng(0).integers(0, 2, size=(BATCH, N_FEATURES), dtype=np.uint8)
    reference = netlist.evaluate_outputs(X)
    for engine in (raw, folded, pipeline):
        np.testing.assert_array_equal(engine.predict_batch(X), reference)
    packed = pack_bits(X)
    paths = {"raw": raw, "fold+fuse": folded, "pipeline": pipeline}
    best = _interleaved_best(paths, packed, rounds=4)
    for _ in range(3):
        if best["raw"] / best["pipeline"] >= PIPELINE_P8_TARGET:
            break
        more = _interleaved_best(paths, packed, rounds=6)
        best = {k: min(best[k], more[k]) for k in best}
    emit(
        f"P=8 compiler pipeline ({netlist.n_luts}-LUT RINC bank, {BATCH}-sample batch)",
        "\n".join(
            f"{name:10s} {engine.n_nodes:5d} LUTs  {best[name] * 1e3:6.2f} ms  "
            f"{best['raw'] / best[name]:4.2f}x vs raw"
            for name, engine in paths.items()
        ),
    )
    speedup = best["raw"] / best["pipeline"]
    record_gate("pipeline_p8_speedup", speedup, PIPELINE_P8_TARGET)
    assert speedup >= PIPELINE_P8_TARGET, (
        f"decomposed pipeline is only {speedup:.2f}x vs the raw P=8 path "
        f"(target {PIPELINE_P8_TARGET}x)"
    )


def _table_cost(netlist) -> int:
    """Packed evaluation cost proxy: sum of ``2^P`` over all LUTs (the
    Shannon cascade does ``2^P - 1`` word muxes per node)."""
    return sum(1 << node.n_inputs for node in netlist.nodes)


def test_structured_bank_pruning_and_speedup():
    """Trained-shaped tables: the optimiser must prune what training leaves.

    The random banks above are the adversarial floor — full-support tables
    where folding provably cannot help.  Real trained banks are nothing
    like that: RINC-0 trees touch a handful of their P inputs and MATs are
    threshold votes, so constant folding and support reduction collapse
    most of the Shannon cascade.  This gate measures the optimiser on that
    serving-shaped workload: the fold stage and the full pipeline are
    reported separately (fold does the pruning here; fusion mops up), with
    a deterministic table-cost gate and a timing gate.
    """
    netlist = structured_bank_netlist(
        N_FEATURES, n_trees=480, n_mats=80, n_outputs=10,
        lut_width=6, tree_depth=2, seed=4,
    )
    folded_netlist = optimize_netlist(netlist, passes=[ConstantFoldPass()])
    optimized_netlist = optimize_netlist(netlist)
    raw_cost = _table_cost(netlist)
    fold_cost = _table_cost(folded_netlist)
    opt_cost = _table_cost(optimized_netlist)

    raw = compile_netlist(netlist, passes=())
    optimized = compile_netlist(netlist)
    X = as_rng(0).integers(0, 2, size=(BATCH, N_FEATURES), dtype=np.uint8)
    reference = netlist.evaluate_outputs(X)
    np.testing.assert_array_equal(raw.predict_batch(X), reference)
    np.testing.assert_array_equal(optimized.predict_batch(X), reference)

    packed = pack_bits(X)
    paths = {"raw": raw, "optimized": optimized}
    best = _interleaved_best(paths, packed, rounds=4)
    for _ in range(3):  # re-measure escalation before failing the gate
        if best["raw"] / best["optimized"] >= STRUCTURED_SPEEDUP_TARGET:
            break
        more = _interleaved_best(paths, packed, rounds=6)
        best = {k: min(best[k], more[k]) for k in best}
    speedup = best["raw"] / best["optimized"]
    emit(
        f"Structured (trained-shaped) bank: fold/fuse pruning "
        f"({netlist.n_luts}-LUT depth-2 tree + threshold bank, "
        f"{BATCH}-sample batch)",
        "\n".join(
            [
                f"raw        {netlist.n_luts:4d} LUTs  cost {raw_cost:6d}  "
                f"{best['raw'] * 1e3:6.2f} ms",
                f"fold       {folded_netlist.n_luts:4d} LUTs  "
                f"cost {fold_cost:6d}  "
                f"(prune {netlist.n_luts / folded_netlist.n_luts:4.1f}x "
                f"LUTs, {raw_cost / fold_cost:4.1f}x cost)",
                f"fold+fuse  {optimized_netlist.n_luts:4d} LUTs  "
                f"cost {opt_cost:6d}  "
                f"{best['optimized'] * 1e3:6.2f} ms   speedup {speedup:4.1f}x",
            ]
        ),
    )
    # deterministic gates (seeded tables): trained structure must fold hard
    record_gate(
        "structured_cost_ratio", raw_cost / opt_cost, STRUCTURED_COST_TARGET
    )
    record_gate("structured_speedup", speedup, STRUCTURED_SPEEDUP_TARGET)
    assert raw_cost / opt_cost >= STRUCTURED_COST_TARGET, (
        f"pipeline pruned table cost only {raw_cost / opt_cost:.1f}x on the "
        f"structured bank (target {STRUCTURED_COST_TARGET}x)"
    )
    assert optimized_netlist.n_luts < folded_netlist.n_luts <= netlist.n_luts
    assert speedup >= STRUCTURED_SPEEDUP_TARGET, (
        f"optimised structured bank is only {speedup:.2f}x vs raw "
        f"(target {STRUCTURED_SPEEDUP_TARGET}x)"
    )


def _busy_kernel(rounds: int = 300) -> int:
    """A GIL-releasing numpy busy loop, the calibration workload."""
    a = np.arange(1 << 16, dtype=np.uint64)
    one = np.uint64(1)
    for _ in range(rounds):
        a = a ^ (a >> one)
    return int(a[0])


def _achievable_parallelism(n_workers: int = 2) -> float:
    """Aggregate speedup of independent forked busy loops vs one serial run.

    Container CPU quotas can make the visible cores unschedulable (a
    cgroup-throttled 2-core box can measure *0.5x* — two processes run
    slower than one).  The sharding gate asserts a parallel speedup, so it
    is only enforced where independent processes demonstrably run
    concurrently; correctness is asserted regardless.
    """
    _busy_kernel(50)  # warm the allocator before timing
    t_serial = _best_of(_busy_kernel, repeats=3)
    ctx = mp.get_context("fork")
    best_pair = float("inf")
    for _ in range(3):
        workers = [ctx.Process(target=_busy_kernel) for _ in range(n_workers)]
        start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        best_pair = min(best_pair, time.perf_counter() - start)
    return n_workers * t_serial / best_pair


def test_sharding_scaling_smoke():
    """Sharded predict must be bit-exact and >=1.5x with >=4 workers.

    Uses a serving-sized bank (8x the paper's smallest topology) and a
    10k-sample batch so each worker's shard carries real work; the word
    count, not the netlist, is what gets split.  Worker counts beyond the
    visible core count still help on bursty multi-tenant hosts, so the gate
    takes the best of 4 and 8 workers.  On hosts whose CPU quota cannot run
    two processes concurrently at all, bit-exactness is still verified but
    the speedup assertion is skipped (see ``_achievable_parallelism``).
    """
    netlist = rinc_bank_netlist(
        N_FEATURES, n_trees=3840, n_mats=640, n_outputs=80, lut_width=6, seed=2
    )
    n_samples = 10_000
    X = as_rng(0).integers(0, 2, size=(n_samples, N_FEATURES), dtype=np.uint8)
    packed = pack_bits(X)
    serial = compile_netlist(netlist)
    engines = {}
    try:
        for n_workers in (4, 8):
            engine = ShardedEngine(netlist, n_workers=n_workers, backend="process")
            np.testing.assert_array_equal(
                engine.run_packed(packed), serial.run_packed(packed)
            )
            engines[f"{n_workers} workers"] = engine
        achievable = _achievable_parallelism()
        if achievable < 1.3:
            emit(
                "Sharded serving",
                f"SKIPPED speedup gate: host runs 2 forked busy workers at "
                f"{achievable:.2f}x aggregate (CPU quota); bit-exactness "
                "verified for 4 and 8 workers",
            )
            pytest.skip(
                f"host delivers {achievable:.2f}x parallelism from 2 forked "
                f"processes; the >={SHARDING_TARGET}x sharding gate needs "
                "schedulable cores"
            )
        paths = {"serial": serial, **engines}
        best = _interleaved_best(paths, packed, rounds=2, inner=1)
        sharded_best = lambda b: min(b[k] for k in engines)  # noqa: E731
        for _ in range(5):
            if best["serial"] / sharded_best(best) >= SHARDING_TARGET:
                break
            more = _interleaved_best(paths, packed, rounds=3, inner=1)
            best = {k: min(best[k], more[k]) for k in best}
        emit(
            f"Sharded serving ({netlist.n_luts}-LUT bank, {n_samples}-sample batch)",
            "\n".join(
                f"{name:10s} {best[name] * 1e3:7.2f} ms  "
                f"{best['serial'] / best[name]:4.2f}x"
                for name in paths
            ),
        )
        speedup = best["serial"] / sharded_best(best)
        record_gate("sharding_speedup", speedup, SHARDING_TARGET)
        assert speedup >= SHARDING_TARGET, (
            f"sharded speedup {speedup:.2f}x below the {SHARDING_TARGET}x gate"
        )
    finally:
        for engine in engines.values():
            engine.close()


def test_pack_unpack_overhead():
    """Packing cost is amortisable: a small fraction of one naive evaluation."""
    rng = as_rng(1)
    X = rng.integers(0, 2, size=(BATCH, N_FEATURES), dtype=np.uint8)
    t_pack = _best_of(lambda: pack_bits(X), repeats=7, inner=5)
    emit(
        "pack_bits overhead",
        f"{BATCH}x{N_FEATURES} bits packed in {t_pack * 1e3:.3f} ms",
    )
    assert t_pack < 0.1  # seconds; generous bound, it measures ~0.3 ms
