"""Benchmark / regeneration of Table 3 (PoET-BiN power)."""

from repro.experiments import run_table3
from repro.experiments.reporting import rows_to_table
from repro.experiments.table3_power import TABLE3_HEADERS

from bench_utils import emit


def test_table3_power_model(benchmark):
    rows = benchmark(run_table3)
    assert len(rows) == 3
    for row in rows:
        assert 0.02 < row.total_w < 2.0
    emit("Table 3: PoET-BiN power (analytical)", rows_to_table(TABLE3_HEADERS, rows))


def test_table3_pre_pruning_counts(benchmark):
    rows = benchmark(run_table3, use_paper_lut_counts=False)
    by_name = {row.dataset: row for row in rows}
    assert by_name["svhn"].n_physical_luts == 2660
    emit(
        "Table 3 variant: pre-pruning analytical LUT counts",
        rows_to_table(TABLE3_HEADERS, rows),
    )
