"""Tier-2 native runtime (threads + SIMD) vs the single-thread native engine.

PR-8's native backend removed the interpreter overhead; what is left on a
large batch is pure word-program arithmetic, which is embarrassingly
parallel along the word axis and vectorisable within it.  The tier-2
runtime exploits both: the emitted C processes ``unroll`` words per
statement (GCC/Clang vector extensions, ``-O2 -march=native``) and
``run_packed`` splits the word range across a persistent in-process
thread pool, with the autotuner pinning the winning (threads, unroll,
tier) combination per netlist.

Two gates:

* ``native_mt_speedup`` — the autotuned multithreaded engine must be at
  least ``NATIVE_MT_SPEEDUP_TARGET``x faster than the single-thread
  scalar native engine on the paper's P=6 bank at a large batch.  This
  needs real parallel hardware, so hosts with fewer than
  ``MIN_CORES_FOR_GATE`` cores skip with an explicit reason (the
  correctness assertions and the small-batch guard below still run
  there via ``make check``'s unit tier).
* small-batch latency — a sub-grain batch must run on the calling
  thread, so the tier-2 engine's latency cannot regress materially vs
  the single-thread native engine.  This guard runs on any host with a
  toolchain, core count regardless.

Both paths assert bit-exactness against NumPy and the single-thread
native engine before timing anything.
"""

import os
import time

import numpy as np
import pytest

from repro.engine import compile_netlist, pack_bits, rinc_bank_netlist
from repro.engine.native import (
    NativeCompiledNetlist,
    find_compiler,
)
from repro.utils import as_rng

from bench_utils import emit, record_gate

BATCH = 4096
SMALL_BATCH = 64
N_FEATURES = 256
NATIVE_MT_SPEEDUP_TARGET = 2.0  # autotuned mt vs single-thread native
MIN_CORES_FOR_GATE = 4
#: a sub-grain batch stays on the calling thread, so its latency should be
#: within noise of the scalar engine; 1.5x leaves headroom for timer jitter
#: on sub-millisecond calls without letting a real regression through
SMALL_BATCH_MAX_RATIO = 1.5


def _bank():
    return rinc_bank_netlist(
        n_primary_inputs=N_FEATURES,
        n_trees=480,
        n_mats=80,
        n_outputs=10,
        lut_width=6,
        seed=2,
    )


def _best_of(fn, repeats: int, inner: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _measure(baseline, contender, packed, rounds: int = 4, inner: int = 4):
    """Interleaved best-of over both engines on the same packed words."""
    t_base = t_cont = float("inf")
    for _ in range(rounds):
        t_base = min(
            t_base,
            _best_of(lambda: baseline.run_packed(packed), repeats=3, inner=inner),
        )
        t_cont = min(
            t_cont,
            _best_of(lambda: contender.run_packed(packed), repeats=3, inner=inner),
        )
    return t_base, t_cont


def _require_toolchain():
    if find_compiler() is None:
        pytest.skip(
            "no C compiler on this host (need cc/gcc/clang or $CC); the "
            "tier-2 native runtime cannot build here"
        )


def test_native_mt_speedup():
    """Autotuned threads+SIMD vs scalar native: >= 2x on a >= 4-core host."""
    _require_toolchain()
    n_cpus = os.cpu_count() or 1
    if n_cpus < MIN_CORES_FOR_GATE:
        pytest.skip(
            f"host has {n_cpus} core(s); the {NATIVE_MT_SPEEDUP_TARGET}x "
            f"multithread gate needs >= {MIN_CORES_FOR_GATE} — thread shards "
            "would just queue on the shared executor here (bit-exactness "
            "across thread counts is covered by tests/engine/test_native_mt.py)"
        )
    netlist = _bank()
    program = compile_netlist(netlist)
    scalar = NativeCompiledNetlist(program)  # PR-8 engine: 1 thread, -O1
    t_tune = time.perf_counter()
    tuned = NativeCompiledNetlist.tuned(program)
    t_tune = time.perf_counter() - t_tune

    X = as_rng(0).integers(0, 2, size=(BATCH, N_FEATURES), dtype=np.uint8)
    packed = pack_bits(X)
    # correctness first: NumPy == scalar native == tuned mt native
    reference = program.run_packed(packed)
    np.testing.assert_array_equal(scalar.run_packed(packed), reference)
    np.testing.assert_array_equal(tuned.run_packed(packed), reference)

    t_scalar, t_tuned = _measure(scalar, tuned, packed)
    # re-measure if a noisy run left the ratio short (mins only improve)
    for _ in range(2):
        if t_scalar / t_tuned >= NATIVE_MT_SPEEDUP_TARGET:
            break
        more = _measure(scalar, tuned, packed, rounds=8)
        t_scalar = min(t_scalar, more[0])
        t_tuned = min(t_tuned, more[1])

    # the thread sweep: same tuned build at 1/2/4 threads, for the record
    sweep_rows = []
    for threads in (1, 2, 4):
        engine = NativeCompiledNetlist(
            program,
            threads=threads,
            unroll=tuned.unroll,
            opt_tier=tuned.opt_tier,
        )
        np.testing.assert_array_equal(engine.run_packed(packed), reference)
        t = _best_of(lambda: engine.run_packed(packed), repeats=6, inner=4)
        sweep_rows.append(f"threads={threads}  {t * 1e3:6.3f} ms")
        record_gate(
            f"native_mt_sweep_threads_{threads}",
            t_scalar / t,
            1.0 if threads == 1 else NATIVE_MT_SPEEDUP_TARGET,
        )

    emit(
        f"Tier-2 native runtime ({BATCH}-sample batch, {N_FEATURES} features, "
        f"{n_cpus} cores, tuned {tuned.tuned_config}, tune+build "
        f"{t_tune:.2f} s)",
        "\n".join(
            [
                f"scalar native {t_scalar * 1e3:6.3f} ms  "
                f"tuned mt {t_tuned * 1e3:6.3f} ms  "
                f"speedup {t_scalar / t_tuned:5.2f}x",
            ]
            + sweep_rows
        ),
    )
    record_gate(
        "native_mt_speedup", t_scalar / t_tuned, NATIVE_MT_SPEEDUP_TARGET
    )
    assert t_scalar / t_tuned >= NATIVE_MT_SPEEDUP_TARGET, (
        f"tier-2 runtime is only {t_scalar / t_tuned:.2f}x faster than the "
        f"single-thread native engine (target {NATIVE_MT_SPEEDUP_TARGET}x "
        f"on {n_cpus} cores)"
    )


def test_native_mt_small_batch_no_regression():
    """Sub-grain batches must not pay a threading tax (any host)."""
    _require_toolchain()
    netlist = _bank()
    program = compile_netlist(netlist)
    scalar = NativeCompiledNetlist(program)
    tuned = NativeCompiledNetlist.tuned(program)

    X = as_rng(1).integers(0, 2, size=(SMALL_BATCH, N_FEATURES), dtype=np.uint8)
    packed = pack_bits(X)
    assert packed.shape[1] == 1  # one word: below any shard grain
    np.testing.assert_array_equal(
        tuned.run_packed(packed), scalar.run_packed(packed)
    )

    t_scalar, t_tuned = _measure(scalar, tuned, packed, rounds=6, inner=64)
    ratio = t_tuned / t_scalar
    # mins only improve: give a noisy host a second chance before failing
    for _ in range(2):
        if ratio <= SMALL_BATCH_MAX_RATIO:
            break
        more = _measure(scalar, tuned, packed, rounds=8, inner=64)
        t_scalar = min(t_scalar, more[0])
        t_tuned = min(t_tuned, more[1])
        ratio = t_tuned / t_scalar
    emit(
        f"Tier-2 small-batch latency ({SMALL_BATCH} samples = 1 word)",
        f"scalar native {t_scalar * 1e6:7.2f} us  "
        f"tuned mt {t_tuned * 1e6:7.2f} us  ratio {ratio:4.2f}x "
        f"(max {SMALL_BATCH_MAX_RATIO}x)",
    )
    record_gate(
        "native_mt_small_batch_ratio",
        SMALL_BATCH_MAX_RATIO / ratio,  # >= 1 means within budget
        1.0,
        unit="budget",
    )
    assert ratio <= SMALL_BATCH_MAX_RATIO, (
        f"tuned engine is {ratio:.2f}x slower than scalar native on a "
        f"1-word batch (budget {SMALL_BATCH_MAX_RATIO}x) — the shard grain "
        "should have kept this on the calling thread"
    )
