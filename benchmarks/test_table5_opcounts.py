"""Benchmark / regeneration of Table 5 (classifier operation counts)."""

from repro.experiments import run_table5
from repro.experiments.reporting import rows_to_table
from repro.experiments.table5_opcounts import TABLE5_HEADERS

from bench_utils import emit


def test_table5_operation_counts(benchmark):
    rows = benchmark(run_table5)
    additions, multiplications, paper = rows
    assert additions[1:] == paper[1:]
    assert multiplications[1:] == paper[1:]
    emit("Table 5: classifier operation counts", rows_to_table(TABLE5_HEADERS, rows))
