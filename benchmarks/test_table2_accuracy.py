"""Benchmark / regeneration of Table 2 (classification accuracy).

Each dataset runs the full Fig. 5 pipeline (A1 -> A4) plus the BinaryNet,
POLYBiNN and NDF baselines on the synthetic stand-in dataset at reduced scale.
A single round is benchmarked per dataset — the interesting output is the
regenerated accuracy table, which is printed for EXPERIMENTS.md.
"""

import pytest

from repro.experiments import run_table2
from repro.experiments.reporting import rows_to_table
from repro.experiments.table2_accuracy import TABLE2_HEADERS

from bench_utils import emit


@pytest.mark.parametrize("dataset", ["mnist", "cifar10", "svhn"])
def test_table2_dataset(benchmark, dataset):
    rows = benchmark.pedantic(
        run_table2,
        kwargs=dict(datasets=(dataset,), seed=0, fast=False),
        rounds=1,
        iterations=1,
    )
    row = rows[0]
    # ordering invariants the paper reports: the pipeline degrades gracefully
    assert row.vanilla > 20.0
    assert 0.0 <= row.poetbin <= 100.0
    emit(
        f"Table 2 ({dataset} stand-in, reduced scale)",
        rows_to_table(TABLE2_HEADERS, rows),
    )
