"""Benchmark / regeneration of Table 7 (latency and LUT counts).

Two parts: the paper-scale analytical table, and a measured row from an
actually trained reduced classifier (netlist -> prune -> decompose -> latency),
which also exercises the synthesizer-pruning observation of §4.3.
"""

from repro.experiments import run_table7
from repro.experiments.reporting import rows_to_table
from repro.experiments.table7_resources import TABLE7_HEADERS, measured_row
from repro.hardware import resource_report

from bench_utils import emit


def test_table7_analytical(benchmark):
    rows = benchmark(run_table7)
    by_name = {row.dataset: row for row in rows}
    assert by_name["svhn"].luts == 2660
    assert by_name["svhn"].latency_ns < by_name["mnist"].latency_ns
    emit("Table 7: latency and LUTs (paper scale, analytical)", rows_to_table(TABLE7_HEADERS, rows))


def test_table7_measured_from_trained_classifier(benchmark, trained_reduced_poetbin):
    clf, _X, _y = trained_reduced_poetbin
    row = benchmark.pedantic(
        measured_row, args=(clf,), kwargs=dict(dataset="reduced"), rounds=1, iterations=1
    )
    assert row.luts > 0
    assert 2.0 < row.latency_ns < 30.0
    emit(
        "Table 7 (measured on the trained reduced classifier)",
        rows_to_table(TABLE7_HEADERS, [row]),
    )


def test_table7_pruning_effect(benchmark, trained_reduced_poetbin):
    """The §4.3 observation: synthesizer-style pruning removes some MAT trees."""
    clf, _X, _y = trained_reduced_poetbin
    netlist = clf.to_netlist()

    def measure():
        before = resource_report(netlist, prune=False)
        after = resource_report(netlist, prune=True)
        return before, after

    before, after = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert after.logical_luts <= before.logical_luts
    emit(
        "Table 7 companion: pruning effect on the reduced netlist",
        rows_to_table(
            ["variant", "logical LUTs", "physical LUTs"],
            [
                ["before pruning", before.logical_luts, before.physical_luts],
                ["after pruning", after.logical_luts, after.physical_luts],
            ],
        ),
    )
