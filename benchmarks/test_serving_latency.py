"""Coalesced async serving vs. per-request calls: the serving-layer gate.

The scenario the serving layer exists for: 256 clients each holding *one*
sample.  Called one by one, every request pays a full engine dispatch for a
single packed bit; coalesced through :class:`repro.serving.InferenceServer`,
the 256 requests share four 64-sample packed words of engine work plus one
popcount read-out per batch.

Both sides run the same model — a serving-sized RINC bank (the engine
benchmark's P=6 topology) feeding a quantised output layer via
``decision_scores_packed`` — so the ratio isolates the serving machinery:
request coalescing against per-request dispatch, *including* the server's
socket + JSON overhead, which the sequential baseline does not pay.

Gate: coalesced throughput >= 3x the sequential per-request baseline, with
p99 latency reported from both the server's admission-to-result clock and
the client's end-to-end clock.  Like the engine gates, the measurement
escalates with extra rounds before failing so a noisy-neighbour CPU spike
delays convergence instead of flaking.

The multi-model gate is the PR-5 acceptance scenario: one server, one
shared WorkerPool, two distinct compiled netlists (different feature
widths), mixed concurrent 1-sample traffic routed by the wire protocol's
``model`` field.  Coalesced multi-model serving must beat sequential
per-request direct calls >= 2x, bit-exact per model.
"""

from __future__ import annotations

import asyncio
import sys
import time

import numpy as np

from repro.core.output_layer import SparseQuantizedOutputLayer, quantize_symmetric
from repro.engine import ShardedEngine, WorkerPool, pack_bits, rinc_bank_netlist
from repro.serving import BackgroundServer, InferenceServer, ServerStats
from repro.serving.protocol import encode_message, read_message, write_message
from repro.utils.rng import as_rng

from bench_utils import emit, record_gate

N_FEATURES = 256
N_CLASSES = 10
FAN_IN = 6  # intermediate bits per class; bank outputs = 10 * 6
N_REQUESTS = 256
COALESCING_TARGET = 3.0
MULTI_MODEL_TARGET = 2.0


_MODEL_CACHE: dict = {}


def _build_model():
    """A serving-sized PoET-BiN stack without the training cost.

    The RINC bank is the engine benchmark's serving-scale P=6 topology with
    random tables (the optimiser's adversarial case); the output layer gets
    random quantised weights — the arithmetic is identical to a trained
    layer's.  Built once and shared by both tests; the engine stays open for
    the process lifetime (its finalizer reclaims the pool at exit).
    """
    if _MODEL_CACHE:
        return _MODEL_CACHE["model"]
    netlist = rinc_bank_netlist(
        n_primary_inputs=N_FEATURES,
        n_trees=960,
        n_mats=160,
        n_outputs=N_CLASSES * FAN_IN,
        lut_width=6,
        seed=2,
    )
    layer = SparseQuantizedOutputLayer(n_classes=N_CLASSES, fan_in=FAN_IN)
    rng = as_rng(9)
    layer.float_weights_ = rng.normal(size=(N_CLASSES, FAN_IN))
    layer.float_biases_ = rng.normal(size=N_CLASSES)
    layer.weights_ = quantize_symmetric(layer.float_weights_, layer.n_bits)
    layer.biases_ = quantize_symmetric(layer.float_biases_, layer.n_bits)
    engine = ShardedEngine(netlist, n_workers=2)

    def scores_fn(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.uint8)
        packed = engine.run_packed(pack_bits(X))
        return layer.decision_scores_packed(packed, X.shape[0])

    def predict_fn(X: np.ndarray) -> np.ndarray:
        return np.argmax(scores_fn(X), axis=1)

    _MODEL_CACHE["model"] = (engine, scores_fn, predict_fn)
    return _MODEL_CACHE["model"]


def _sequential_seconds(predict_fn, rows: np.ndarray) -> float:
    """Wall clock for per-request calls: one predict_batch-style call each."""
    start = time.perf_counter()
    for i in range(rows.shape[0]):
        predict_fn(rows[i : i + 1])
    return time.perf_counter() - start


N_CONNECTIONS = 16


async def _drive_concurrent(address, rows: np.ndarray):
    """All requests concurrently outstanding over a pooled connection set.

    A realistic load generator: ``N_CONNECTIONS`` clients each pipeline
    their share of one-sample requests (tagged with ``id``) and collect the
    out-of-order completions.  Every request is in flight before the first
    response arrives, so the server sees the full concurrency.
    """
    n = rows.shape[0]
    shares = [list(range(i, n, N_CONNECTIONS)) for i in range(N_CONNECTIONS)]
    labels = np.empty(n, dtype=np.int64)
    latencies = np.empty(n, dtype=np.float64)

    async def worker(indices):
        reader, writer = await asyncio.open_connection(*address)
        started = {}
        try:
            frames = []
            for i in indices:
                started[i] = time.perf_counter()
                frames.append(
                    encode_message(
                        {
                            "op": "predict",
                            "id": i,
                            "features": rows[i : i + 1].tolist(),
                        }
                    )
                )
            # the whole pipeline goes out in one send — the server reads a
            # burst, not a syscall-per-request trickle
            writer.write(b"".join(frames))
            await writer.drain()
            for _ in indices:
                response = await read_message(reader)
                assert response is not None and response["ok"], response
                i = response["id"]
                latencies[i] = time.perf_counter() - started[i]
                labels[i] = response["labels"][0]
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    await asyncio.gather(*(worker(share) for share in shares))
    return labels, latencies


def _concurrent_seconds(address, rows: np.ndarray):
    start = time.perf_counter()
    labels, latencies = asyncio.run(_drive_concurrent(address, rows))
    return time.perf_counter() - start, labels, latencies


def test_coalesced_serving_beats_per_request_calls():
    """256 concurrent 1-sample requests: coalesced >= 3x sequential."""
    # client loop and server loop share this process's GIL; a short switch
    # interval keeps each small syscall from stalling the other thread for
    # the default 5 ms quantum (a server deployed in its own process does
    # not pay this at all)
    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        _run_coalescing_gate()
    finally:
        sys.setswitchinterval(previous_interval)


def _run_coalescing_gate():
    engine, scores_fn, predict_fn = _build_model()
    rng = as_rng(0)
    rows = rng.integers(0, 2, size=(N_REQUESTS, N_FEATURES), dtype=np.uint8)
    expected = predict_fn(rows)

    stats = ServerStats()
    server = InferenceServer(
        scores_fn=scores_fn,
        max_batch=64,
        # the wait budget spans the socket-arrival drain of a 256-request
        # burst, so batches actually fill to max_batch instead of timing
        # out at whatever trickled in during 2 ms
        max_wait_us=10_000,
        max_queue=4096,
        stats=stats,
        warm_up=lambda: predict_fn(rows[:1]),
    )
    with BackgroundServer(server) as handle:
        t_seq = _sequential_seconds(predict_fn, rows)
        t_conc, labels, client_lat = _concurrent_seconds(handle.address, rows)
        np.testing.assert_array_equal(labels, expected)
        best_lat = client_lat
        # escalate with interleaved re-measurement before failing: mins
        # only improve, so noise delays convergence instead of flaking
        for _ in range(3):
            if t_seq / t_conc >= COALESCING_TARGET:
                break
            t_seq = min(t_seq, _sequential_seconds(predict_fn, rows))
            t_again, labels, lat = _concurrent_seconds(handle.address, rows)
            np.testing.assert_array_equal(labels, expected)
            if t_again < t_conc:
                t_conc, best_lat = t_again, lat
        snapshot = stats.snapshot()

    speedup = t_seq / t_conc
    server_p = snapshot["latency_us"]
    emit(
        f"Coalesced serving vs per-request calls "
        f"({N_REQUESTS} concurrent 1-sample requests, "
        f"{N_FEATURES}-feature P=6 bank)",
        "\n".join(
            [
                f"sequential  {t_seq * 1e3:8.2f} ms   "
                f"({t_seq / N_REQUESTS * 1e6:7.1f} us/request)",
                f"coalesced   {t_conc * 1e3:8.2f} ms   "
                f"({t_conc / N_REQUESTS * 1e6:7.1f} us/request)   "
                f"speedup {speedup:4.1f}x",
                f"server latency us   p50 {server_p['p50']:8.1f}   "
                f"p95 {server_p['p95']:8.1f}   p99 {server_p['p99']:8.1f}",
                f"client e2e latency  p50 {np.percentile(best_lat, 50) * 1e6:8.1f}   "
                f"p99 {np.percentile(best_lat, 99) * 1e6:8.1f} us",
                f"batch occupancy     mean "
                f"{snapshot['mean_batch_occupancy']:.1f} samples/batch, "
                f"{snapshot['batches']} batches, "
                f"{snapshot['shed']} shed",
            ]
        ),
    )
    assert snapshot["shed"] == 0, "no request should be shed at this load"
    assert snapshot["mean_batch_occupancy"] > 1.0, (
        "requests never coalesced — the server degenerated to per-request work"
    )
    record_gate("serving_coalescing_speedup", speedup, COALESCING_TARGET)
    assert speedup >= COALESCING_TARGET, (
        f"coalesced serving is only {speedup:.2f}x the per-request baseline "
        f"(target {COALESCING_TARGET}x)"
    )


def _make_scores_stack(engine, n_classes, fan_in, seed):
    """An output layer + packed scores/predict pair over ``engine``."""
    layer = SparseQuantizedOutputLayer(n_classes=n_classes, fan_in=fan_in)
    rng = as_rng(seed)
    layer.float_weights_ = rng.normal(size=(n_classes, fan_in))
    layer.float_biases_ = rng.normal(size=n_classes)
    layer.weights_ = quantize_symmetric(layer.float_weights_, layer.n_bits)
    layer.biases_ = quantize_symmetric(layer.float_biases_, layer.n_bits)

    def scores_fn(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.uint8)
        packed = engine.run_packed(pack_bits(X))
        return layer.decision_scores_packed(packed, X.shape[0])

    def predict_fn(X: np.ndarray) -> np.ndarray:
        return np.argmax(scores_fn(X), axis=1)

    return scores_fn, predict_fn


_MULTI_CACHE: dict = {}


def _build_multi_models():
    """Two serving-sized banks with different widths over one WorkerPool.

    Model "a" is a 256-feature P=6 bank, model "b" a 128-feature one —
    distinct shapes so any cross-model shard routing fails loudly.  Both
    attach to a single shared pool (the multi-tenant configuration under
    test); the pool stays open for the process lifetime, reclaimed by its
    finalizer at exit.
    """
    if _MULTI_CACHE:
        return _MULTI_CACHE["models"]
    pool = WorkerPool(n_workers=2)
    specs = {
        "a": dict(n_primary_inputs=256, n_trees=480, n_mats=80,
                  n_outputs=N_CLASSES * 6, lut_width=6, seed=2, fan_in=6),
        "b": dict(n_primary_inputs=128, n_trees=320, n_mats=60,
                  n_outputs=N_CLASSES * 4, lut_width=6, seed=3, fan_in=4),
    }
    models = {"pool": pool}
    for name, spec in specs.items():
        fan_in = spec.pop("fan_in")
        netlist = rinc_bank_netlist(**spec)
        engine = ShardedEngine(netlist, pool=pool, model_id=name)
        scores_fn, predict_fn = _make_scores_stack(
            engine, N_CLASSES, fan_in, seed=20 + len(models)
        )
        models[name] = {
            "width": spec["n_primary_inputs"],
            "scores_fn": scores_fn,
            "predict_fn": predict_fn,
        }
    _MULTI_CACHE["models"] = models
    return models


async def _drive_mixed(address, plan):
    """``plan`` rows of (index, model, 1-sample matrix): all concurrently
    outstanding over pooled connections, routed by the ``model`` field."""
    shares = [plan[i::N_CONNECTIONS] for i in range(N_CONNECTIONS)]
    labels = np.empty(len(plan), dtype=np.int64)

    async def worker(share):
        reader, writer = await asyncio.open_connection(*address)
        try:
            frames = [
                encode_message(
                    {
                        "op": "predict",
                        "id": i,
                        "model": model,
                        "features": rows.tolist(),
                    }
                )
                for i, model, rows in share
            ]
            writer.write(b"".join(frames))
            await writer.drain()
            for _ in share:
                response = await read_message(reader)
                assert response is not None and response["ok"], response
                labels[response["id"]] = response["labels"][0]
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    await asyncio.gather(*(worker(share) for share in shares))
    return labels


def test_multi_model_coalesced_serving_beats_sequential_calls():
    """Mixed-model concurrent 1-sample load on one shared pool: >= 2x.

    256 requests alternate between two models of different widths; the
    sequential baseline calls each model's direct packed path per request.
    The server must answer bit-exactly per model and beat the baseline
    through per-model coalescing — while both queues share one WorkerPool
    and one admission budget.
    """
    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        _run_multi_model_gate()
    finally:
        sys.setswitchinterval(previous_interval)


def _run_multi_model_gate():
    models = _build_multi_models()
    pool = models["pool"]
    rng = as_rng(4)
    plan = []
    for i in range(N_REQUESTS):
        name = "a" if i % 2 else "b"
        rows = rng.integers(
            0, 2, size=(1, models[name]["width"]), dtype=np.uint8
        )
        plan.append((i, name, rows))
    expected = np.array(
        [int(models[name]["predict_fn"](rows)[0]) for _, name, rows in plan]
    )

    def sequential_seconds() -> float:
        start = time.perf_counter()
        for _, name, rows in plan:
            models[name]["predict_fn"](rows)
        return time.perf_counter() - start

    server = InferenceServer(
        max_batch=64,
        max_wait_us=10_000,
        max_queue=4096,
        max_total_queue=8192,
        warm_up=pool.warm_up,
    )
    for name in ("a", "b"):
        server.register_model(name, scores_fn=models[name]["scores_fn"])

    def concurrent_seconds(address):
        start = time.perf_counter()
        labels = asyncio.run(_drive_mixed(address, plan))
        return time.perf_counter() - start, labels

    with BackgroundServer(server) as handle:
        t_seq = sequential_seconds()
        t_conc, labels = concurrent_seconds(handle.address)
        np.testing.assert_array_equal(labels, expected)
        for _ in range(3):  # escalate before failing: mins only improve
            if t_seq / t_conc >= MULTI_MODEL_TARGET:
                break
            t_seq = min(t_seq, sequential_seconds())
            t_again, labels = concurrent_seconds(handle.address)
            np.testing.assert_array_equal(labels, expected)
            t_conc = min(t_conc, t_again)
        snapshots = {
            name: server.registry.resolve(name).stats.snapshot()
            for name in ("a", "b")
        }

    speedup = t_seq / t_conc
    emit(
        f"Multi-model coalesced serving ({N_REQUESTS} mixed concurrent "
        f"1-sample requests, 2 banks on one shared WorkerPool)",
        "\n".join(
            [
                f"sequential  {t_seq * 1e3:8.2f} ms   "
                f"coalesced {t_conc * 1e3:8.2f} ms   speedup {speedup:4.1f}x",
            ]
            + [
                f"model {name}: {snap['requests_completed']} requests, "
                f"mean occupancy {snap['mean_batch_occupancy']:.1f}, "
                f"{snap['batches']} batches, {snap['shed']} shed, "
                f"p99 {snap['latency_us']['p99']:.0f} us"
                for name, snap in snapshots.items()
            ]
        ),
    )
    for name, snap in snapshots.items():
        assert snap["shed"] == 0, f"model {name} shed at this load"
        assert snap["requests_completed"] >= N_REQUESTS // 2
        assert snap["mean_batch_occupancy"] > 1.0, (
            f"model {name} never coalesced its requests"
        )
    record_gate("multi_model_speedup", speedup, MULTI_MODEL_TARGET)
    assert speedup >= MULTI_MODEL_TARGET, (
        f"multi-model coalesced serving is only {speedup:.2f}x the "
        f"per-request baseline (target {MULTI_MODEL_TARGET}x)"
    )


def test_served_results_bit_exact_under_concurrency():
    """Mixed-size concurrent requests return exactly the direct results."""
    engine, scores_fn, predict_fn = _build_model()
    rng = as_rng(1)
    sizes = [int(rng.integers(1, 9)) for _ in range(24)]
    chunks = [
        rng.integers(0, 2, size=(k, N_FEATURES), dtype=np.uint8) for k in sizes
    ]
    expected = [predict_fn(chunk) for chunk in chunks]
    server = InferenceServer(
        scores_fn=scores_fn, max_batch=32, max_wait_us=1500, max_queue=4096
    )
    with BackgroundServer(server) as handle:

        async def drive():
            async def one(chunk):
                reader, writer = await asyncio.open_connection(*handle.address)
                try:
                    await write_message(
                        writer,
                        {"op": "predict", "features": chunk.tolist()},
                    )
                    return await read_message(reader)
                finally:
                    writer.close()
                    await writer.wait_closed()

            return await asyncio.gather(*(one(c) for c in chunks))

        responses = asyncio.run(drive())
    for want, response in zip(expected, responses):
        assert response["ok"], response
        np.testing.assert_array_equal(np.asarray(response["labels"]), want)
