"""Ablation benchmark: LUT input width P (accuracy vs physical LUT cost)."""

from repro.experiments.ablations import ABLATION_HEADERS, run_lut_width_ablation
from repro.experiments.reporting import rows_to_table

from bench_utils import emit


def test_lut_width_sweep(benchmark):
    rows = benchmark.pedantic(
        run_lut_width_ablation,
        kwargs=dict(widths=(4, 6, 8), seed=0, fast=True),
        rounds=1,
        iterations=1,
    )
    by_setting = {row.setting: row for row in rows}
    # physical LUT cost rises sharply past the 6-input fabric width
    assert by_setting["P=8"].luts > by_setting["P=6"].luts >= by_setting["P=4"].luts
    emit("Ablation: LUT input width P", rows_to_table(ABLATION_HEADERS, rows))
