"""Ablation benchmark: RINC per hidden neuron vs per intermediate neuron (§4.1)."""

from repro.experiments.ablations import ABLATION_HEADERS, run_hidden_layer_ablation
from repro.experiments.reporting import rows_to_table

from bench_utils import emit


def test_hidden_layer_ablation(benchmark):
    rows = benchmark.pedantic(
        run_hidden_layer_ablation,
        kwargs=dict(n_classes=5, intermediate_per_class=3, hidden_neurons=20, seed=0, fast=True),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 2
    intermediate_row, hidden_row = rows
    # the hidden-neuron variant costs more LUTs (the paper's resource argument)
    assert hidden_row.luts != intermediate_row.luts
    emit(
        "Ablation: RINC per intermediate neuron vs per hidden neuron",
        rows_to_table(ABLATION_HEADERS, rows),
    )
