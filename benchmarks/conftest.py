"""Shared helpers for the benchmark harness.

Every module regenerates one table (or ablation) of the paper.  Heavy,
training-based benchmarks run a single round via ``benchmark.pedantic`` so the
wall-clock stays manageable; analytical benchmarks run normally.  Each module
prints the regenerated table so that ``pytest benchmarks/ --benchmark-only``
output doubles as the reproduction record.
"""

from __future__ import annotations

import pytest

from bench_utils import COLLECTED_SECTIONS, emit

__all__ = ["emit"]


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every regenerated table at the end of the benchmark run.

    pytest captures stdout of passing tests, so without this hook the tables
    printed by ``emit`` would never reach the benchmark log; the reproduction
    record (bench_output.txt) relies on them.
    """
    if not COLLECTED_SECTIONS:
        return
    terminalreporter.write_sep("=", "regenerated paper tables")
    for title, body in COLLECTED_SECTIONS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in body.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def fast_table2_row_mnist():
    """One reduced Table 2 row (MNIST stand-in), shared across benchmark modules."""
    from repro.experiments import run_table2

    rows = run_table2(datasets=("mnist",), seed=0, fast=True, n_train=800, n_test=250)
    return rows[0]


@pytest.fixture(scope="session")
def trained_reduced_poetbin():
    """A reduced PoET-BiN classifier trained on a pure binary-feature task.

    Used by the resource / latency / VHDL benchmarks that need a trained
    netlist but not the CNN pipeline.
    """
    import numpy as np

    from repro.core import PoETBiNClassifier
    from repro.utils.rng import as_rng

    rng = as_rng(7)
    n, n_features, n_classes, per_class = 1500, 128, 10, 3
    X = (rng.random((n, n_features)) < 0.5).astype(np.uint8)
    n_intermediate = n_classes * per_class
    targets = np.empty((n, n_intermediate), dtype=np.uint8)
    for j in range(n_intermediate):
        support = rng.choice(n_features, size=8, replace=False)
        w = rng.normal(size=8)
        targets[:, j] = (X[:, support] @ w - w.sum() / 2 >= 0).astype(np.uint8)
    block = targets.reshape(n, n_classes, per_class).sum(axis=2).astype(float)
    y = np.argmax(block + rng.normal(scale=0.05, size=block.shape), axis=1)
    clf = PoETBiNClassifier(
        n_classes=n_classes,
        n_inputs=6,
        n_levels=2,
        branching=(2, 6),
        intermediate_per_class=per_class,
        output_epochs=10,
        seed=0,
    ).fit(X, targets, y)
    return clf, X, y
