"""Benchmark / regeneration of Table 4 (per-operation power)."""

from repro.experiments import run_table4
from repro.experiments.reporting import rows_to_table
from repro.experiments.table4_operations import TABLE4_HEADERS

from bench_utils import emit


def test_table4_operation_library(benchmark):
    rows = benchmark(run_table4)
    assert len(rows) == 6
    totals = {row[0]: row[6] for row in rows}
    assert totals["Multiplication (float)"] == 0.099
    emit("Table 4: per-operation power", rows_to_table(TABLE4_HEADERS, rows))
