"""Small helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import os
import time
from typing import List, Optional, Tuple

#: sections collected during the run; replayed by the terminal-summary hook in
#: conftest.py so they appear in the benchmark log even with output capture on.
COLLECTED_SECTIONS: List[Tuple[str, str]] = []

#: where record_gate appends measurements; override with REPRO_BENCH_RESULTS
RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_results.json",
)


def emit(title: str, body: str) -> None:
    """Print a titled table and record it for the end-of-run summary."""
    COLLECTED_SECTIONS.append((title, body))
    print(f"\n=== {title} ===\n{body}")


def record_gate(
    gate: str,
    measured: float,
    target: float,
    *,
    unit: str = "x",
    path: Optional[str] = None,
) -> None:
    """Append one gate measurement to ``BENCH_results.json``.

    The file is a JSON array of ``{"gate", "measured", "target", "unit",
    "passed", "timestamp"}`` records, one per gate evaluation, newest last —
    a flat machine-readable history of how each performance gate trended
    across runs (the human-readable tables go through :func:`emit`).  The
    write is read-modify-replace via a temp file so a crash mid-dump cannot
    truncate the history; a corrupt or foreign file is restarted rather
    than crashing the benchmark that measured a perfectly good number.
    """
    path = path or os.environ.get("REPRO_BENCH_RESULTS") or RESULTS_PATH
    entry = {
        "gate": gate,
        "measured": round(float(measured), 6),
        "target": float(target),
        "unit": unit,
        "passed": bool(measured >= target),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    records = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            existing = json.load(fh)
        if isinstance(existing, list):
            records = existing
    except (OSError, ValueError):
        pass
    records.append(entry)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
