"""Small helpers shared by the benchmark modules."""

from __future__ import annotations

from typing import List, Tuple

#: sections collected during the run; replayed by the terminal-summary hook in
#: conftest.py so they appear in the benchmark log even with output capture on.
COLLECTED_SECTIONS: List[Tuple[str, str]] = []


def emit(title: str, body: str) -> None:
    """Print a titled table and record it for the end-of-run summary."""
    COLLECTED_SECTIONS.append((title, body))
    print(f"\n=== {title} ===\n{body}")
