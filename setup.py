"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 660 editable installs
(``pip install -e .``) cannot build the editable wheel.  This shim lets
``python setup.py develop`` register the package instead; all metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
