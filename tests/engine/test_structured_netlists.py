"""The trained-shaped netlist generator: table structure and foldability.

``structured_bank_netlist`` exists so the optimiser is benchmarked on the
workload training actually produces; these tests pin the structural
properties the benchmark relies on — threshold tables really are popcount
votes, tree tables really have bounded support, and the pipeline really
prunes the bank while staying bit-exact.
"""

import numpy as np
import pytest

from repro.engine import compile_netlist, optimize_netlist, structured_bank_netlist
from repro.engine.random_netlists import _threshold_table, _tree_table
from repro.utils.rng import as_rng


class TestThresholdTable:
    def test_matches_popcount(self):
        for n_inputs, threshold in [(3, 1), (4, 2), (6, 6)]:
            table = _threshold_table(n_inputs, threshold)
            for index in range(1 << n_inputs):
                expected = bin(index).count("1") >= threshold
                assert table[index] == int(expected)

    def test_full_support_for_interior_thresholds(self):
        # a majority vote depends on every input (flipping any bit near the
        # threshold flips the output somewhere)
        table = _threshold_table(6, 3).reshape((2,) * 6)
        for axis in range(6):
            low = np.take(table, 0, axis=axis)
            high = np.take(table, 1, axis=axis)
            assert not np.array_equal(low, high)


class TestTreeTable:
    def test_support_bounded_by_tree_size(self):
        rng = as_rng(0)
        for depth in (0, 1, 2, 3):
            for _ in range(10):
                table = _tree_table(rng, 6, depth).reshape((2,) * 6)
                support = sum(
                    not np.array_equal(
                        np.take(table, 0, axis=axis),
                        np.take(table, 1, axis=axis),
                    )
                    for axis in range(6)
                )
                assert support <= max(0, 2**depth - 1)

    def test_depth_zero_is_constant(self):
        rng = as_rng(1)
        table = _tree_table(rng, 4, 0)
        assert len(set(table.tolist())) == 1


class TestStructuredBank:
    def test_bit_exact_and_prunable(self):
        netlist = structured_bank_netlist(
            32, n_trees=24, n_mats=8, n_outputs=4, lut_width=4,
            tree_depth=2, seed=5,
        )
        optimized = optimize_netlist(netlist)
        # trained-shaped tables must give the optimiser something to prune
        # (low-support trees shrink, constant leaves fold away)
        raw_cost = sum(1 << node.n_inputs for node in netlist.nodes)
        opt_cost = sum(1 << node.n_inputs for node in optimized.nodes)
        assert opt_cost < raw_cost
        compiled = compile_netlist(netlist)
        X = as_rng(2).integers(0, 2, size=(300, 32), dtype=np.uint8)
        np.testing.assert_array_equal(
            compiled.predict_batch(X), netlist.evaluate_outputs(X)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            structured_bank_netlist(8, 0, 4, 2)
        with pytest.raises(ValueError):
            structured_bank_netlist(8, 12, 6, 3, lut_width=9)
        with pytest.raises(ValueError):
            structured_bank_netlist(8, 12, 6, 3, lut_width=4, tree_depth=-1)
