"""Sharded executor tests: bit-exactness against the serial engine.

Word blocks of a packed batch are independent, so the sharded executor must
reproduce the serial engine bit for bit for every worker count, backend and
batch shape — including batches too small to shard (serial fallback) and
empty batches.
"""

import numpy as np
import pytest

from repro.engine import ShardedEngine, compile_netlist, random_netlist, shard_bounds
from repro.engine.parallel import _worker_init, _worker_run
from repro.utils.rng import as_rng


class TestShardBounds:
    def test_covers_exactly_once(self):
        for n_words in (0, 1, 5, 64, 157):
            for n_shards in (1, 2, 3, 8):
                bounds = shard_bounds(n_words, n_shards)
                covered = [w for lo, hi in bounds for w in range(lo, hi)]
                assert covered == list(range(n_words))

    def test_near_equal_split(self):
        bounds = shard_bounds(10, 3)
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_no_shards(self):
        with pytest.raises(ValueError):
            shard_bounds(8, 0)


class TestShardedEquivalence:
    @pytest.fixture(scope="class")
    def case(self):
        netlist = random_netlist(24, 60, seed=21, n_outputs=8)
        return netlist, compile_netlist(netlist)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("n_workers", [1, 2, 5])
    def test_matches_serial_bit_for_bit(self, case, backend, n_workers):
        netlist, serial = case
        rng = as_rng(5)
        with ShardedEngine(
            netlist, n_workers=n_workers, backend=backend, min_words_per_worker=1
        ) as engine:
            for n_samples in (0, 1, 63, 64, 65, 257, 1500):
                X = rng.integers(0, 2, size=(n_samples, 24), dtype=np.uint8)
                np.testing.assert_array_equal(
                    engine.predict_batch(X),
                    serial.predict_batch(X),
                    err_msg=f"{backend} x{n_workers}, {n_samples} samples",
                )

    def test_chunked_batches_match(self, case):
        netlist, serial = case
        rng = as_rng(6)
        X = rng.integers(0, 2, size=(700, 24), dtype=np.uint8)
        with ShardedEngine(netlist, n_workers=2, min_words_per_worker=1) as engine:
            np.testing.assert_array_equal(
                engine.predict_batch(X, batch_size=129), serial.predict_batch(X)
            )

    def test_small_batches_fall_back_to_serial(self, case):
        netlist, _ = case
        rng = as_rng(7)
        with ShardedEngine(netlist, n_workers=4, min_words_per_worker=8) as engine:
            X = rng.integers(0, 2, size=(64, 24), dtype=np.uint8)  # one word
            # never sharded: the pool is not even created
            engine.predict_batch(X)
            assert engine._pool is None

    def test_pipeline_options_forwarded(self):
        netlist = random_netlist(16, 30, seed=22, lut_widths=(8,), n_outputs=4)
        rng = as_rng(8)
        X = rng.integers(0, 2, size=(300, 16), dtype=np.uint8)
        with ShardedEngine(
            netlist, n_workers=2, max_lut_inputs=6, min_words_per_worker=1
        ) as engine:
            assert all(
                node.n_inputs <= 6 for node in engine._netlist.nodes
            )
            np.testing.assert_array_equal(
                engine.predict_batch(X), netlist.evaluate_outputs(X)
            )


class TestLifecycle:
    def test_close_is_idempotent_and_final(self):
        netlist = random_netlist(8, 10, seed=23)
        engine = ShardedEngine(netlist, n_workers=2, min_words_per_worker=1)
        rng = as_rng(9)
        X = rng.integers(0, 2, size=(300, 8), dtype=np.uint8)
        engine.predict_batch(X)
        engine.close()
        engine.close()
        with pytest.raises(RuntimeError):
            engine.predict_batch(X)

    def test_wrong_shapes_rejected(self):
        netlist = random_netlist(8, 10, seed=24)
        with ShardedEngine(netlist, n_workers=2) as engine:
            with pytest.raises(ValueError):
                engine.run_packed(np.zeros((3, 4), dtype=np.uint64))
            with pytest.raises(ValueError):
                engine.predict_batch(np.zeros((5, 9), dtype=np.uint8))

    def test_invalid_construction(self):
        netlist = random_netlist(8, 10, seed=25)
        with pytest.raises(ValueError):
            ShardedEngine(netlist, backend="gpu")
        with pytest.raises(ValueError):
            ShardedEngine(netlist, n_workers=0)
        with pytest.raises(ValueError):
            ShardedEngine(netlist, min_words_per_worker=0)

    def test_abandoned_engine_is_reclaimed_by_gc(self):
        """Dropping an engine without close() must still release its pool."""
        import gc

        netlist = random_netlist(8, 10, seed=28)
        engine = ShardedEngine(netlist, n_workers=2, min_words_per_worker=1)
        rng = as_rng(11)
        engine.predict_batch(rng.integers(0, 2, size=(300, 8), dtype=np.uint8))
        resources = engine._resources
        assert resources["pool"] is not None
        del engine
        gc.collect()
        assert resources["pool"] is None

    def test_single_worker_degenerates_to_serial(self):
        netlist = random_netlist(8, 10, seed=26)
        with ShardedEngine(netlist, n_workers=1, backend="process") as engine:
            assert engine.backend == "serial"


class TestWorkerHelpers:
    def test_worker_roundtrip_inline(self):
        """Drive the process-backend worker functions in this process."""
        from multiprocessing import shared_memory

        from repro.engine import pack_bits

        netlist = random_netlist(12, 20, seed=27, n_outputs=3)
        serial = compile_netlist(netlist)
        rng = as_rng(10)
        X = rng.integers(0, 2, size=(500, 12), dtype=np.uint8)
        packed = pack_bits(X)
        words = packed.shape[1]
        shm_in = shared_memory.SharedMemory(create=True, size=packed.nbytes)
        shm_out = shared_memory.SharedMemory(create=True, size=3 * words * 8)
        try:
            np.ndarray(packed.shape, dtype=np.uint64, buffer=shm_in.buf)[:] = packed
            _worker_init(netlist)
            for lo, hi in shard_bounds(words, 3):
                _worker_run(
                    (shm_in.name, shm_out.name, 12, 3, words, lo, hi)
                )
            out = np.ndarray((3, words), dtype=np.uint64, buffer=shm_out.buf)
            np.testing.assert_array_equal(out, serial.run_packed(packed))
        finally:
            from repro.engine.parallel import _WORKER

            for shm in _WORKER.get("shm", {}).values():
                shm.close()
            _WORKER.clear()
            shm_in.close()
            shm_in.unlink()
            shm_out.close()
            shm_out.unlink()
