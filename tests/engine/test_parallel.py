"""Sharded executor tests: bit-exactness against the serial engine.

Word blocks of a packed batch are independent, so the sharded executor must
reproduce the serial engine bit for bit for every worker count, backend and
batch shape — including batches too small to shard (serial fallback) and
empty batches.  The :class:`WorkerPool` tests add the multi-model contract:
several netlists attached to one pool (before and after the fork), shard
interleaving under concurrent per-model load, and detach semantics.
"""

import threading

import numpy as np
import pytest

from repro.engine import (
    ShardedEngine,
    WorkerPool,
    compile_netlist,
    random_netlist,
    shard_bounds,
)
from repro.engine.parallel import _worker_init, _worker_run
from repro.utils.rng import as_rng


class TestShardBounds:
    def test_covers_exactly_once(self):
        for n_words in (0, 1, 5, 64, 157):
            for n_shards in (1, 2, 3, 8):
                bounds = shard_bounds(n_words, n_shards)
                covered = [w for lo, hi in bounds for w in range(lo, hi)]
                assert covered == list(range(n_words))

    def test_near_equal_split(self):
        bounds = shard_bounds(10, 3)
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_no_shards(self):
        with pytest.raises(ValueError):
            shard_bounds(8, 0)


class TestShardedEquivalence:
    @pytest.fixture(scope="class")
    def case(self):
        netlist = random_netlist(24, 60, seed=21, n_outputs=8)
        return netlist, compile_netlist(netlist)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("n_workers", [1, 2, 5])
    def test_matches_serial_bit_for_bit(self, case, backend, n_workers):
        netlist, serial = case
        rng = as_rng(5)
        with ShardedEngine(
            netlist, n_workers=n_workers, backend=backend, min_words_per_worker=1
        ) as engine:
            for n_samples in (0, 1, 63, 64, 65, 257, 1500):
                X = rng.integers(0, 2, size=(n_samples, 24), dtype=np.uint8)
                np.testing.assert_array_equal(
                    engine.predict_batch(X),
                    serial.predict_batch(X),
                    err_msg=f"{backend} x{n_workers}, {n_samples} samples",
                )

    def test_chunked_batches_match(self, case):
        netlist, serial = case
        rng = as_rng(6)
        X = rng.integers(0, 2, size=(700, 24), dtype=np.uint8)
        with ShardedEngine(netlist, n_workers=2, min_words_per_worker=1) as engine:
            np.testing.assert_array_equal(
                engine.predict_batch(X, batch_size=129), serial.predict_batch(X)
            )

    def test_small_batches_fall_back_to_serial(self, case):
        netlist, _ = case
        rng = as_rng(7)
        with ShardedEngine(netlist, n_workers=4, min_words_per_worker=8) as engine:
            X = rng.integers(0, 2, size=(64, 24), dtype=np.uint8)  # one word
            # never sharded: the pool is not even created
            engine.predict_batch(X)
            assert engine._pool is None

    def test_pipeline_options_forwarded(self):
        netlist = random_netlist(16, 30, seed=22, lut_widths=(8,), n_outputs=4)
        rng = as_rng(8)
        X = rng.integers(0, 2, size=(300, 16), dtype=np.uint8)
        with ShardedEngine(
            netlist, n_workers=2, max_lut_inputs=6, min_words_per_worker=1
        ) as engine:
            assert all(
                node.n_inputs <= 6 for node in engine._netlist.nodes
            )
            np.testing.assert_array_equal(
                engine.predict_batch(X), netlist.evaluate_outputs(X)
            )

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_native_engine_backend_matches(self, case, backend):
        """Sharded evaluation on the generated-C engine stays bit-exact."""
        from repro.engine.native import toolchain_available

        if not toolchain_available():
            pytest.skip("no C compiler on this host")
        netlist, serial = case
        rng = as_rng(15)
        with ShardedEngine(
            netlist,
            n_workers=2,
            backend=backend,
            engine_backend="native",
            min_words_per_worker=1,
        ) as engine:
            assert engine.engine_backend == "native"
            for n_samples in (1, 64, 257, 1500):
                X = rng.integers(0, 2, size=(n_samples, 24), dtype=np.uint8)
                np.testing.assert_array_equal(
                    engine.predict_batch(X),
                    serial.predict_batch(X),
                    err_msg=f"native/{backend}, {n_samples} samples",
                )

    def test_auto_engine_backend_resolves(self, case):
        """'auto' resolves at attach: the serial engine reports what won."""
        from repro.engine.native import toolchain_available

        netlist, serial = case
        rng = as_rng(16)
        with ShardedEngine(
            netlist, n_workers=2, engine_backend="auto",
            min_words_per_worker=1,
        ) as engine:
            expected = "native" if toolchain_available() else "numpy"
            assert engine.engine_backend == expected
            X = rng.integers(0, 2, size=(400, 24), dtype=np.uint8)
            np.testing.assert_array_equal(
                engine.predict_batch(X), serial.predict_batch(X)
            )

    def test_unknown_engine_backend_rejected(self, case):
        netlist, _ = case
        with pytest.raises(ValueError, match="engine backend"):
            ShardedEngine(netlist, n_workers=2, engine_backend="fortran")


class TestLifecycle:
    def test_close_is_idempotent_and_final(self):
        netlist = random_netlist(8, 10, seed=23)
        engine = ShardedEngine(netlist, n_workers=2, min_words_per_worker=1)
        rng = as_rng(9)
        X = rng.integers(0, 2, size=(300, 8), dtype=np.uint8)
        engine.predict_batch(X)
        engine.close()
        engine.close()
        with pytest.raises(RuntimeError):
            engine.predict_batch(X)

    def test_wrong_shapes_rejected(self):
        netlist = random_netlist(8, 10, seed=24)
        with ShardedEngine(netlist, n_workers=2) as engine:
            with pytest.raises(ValueError):
                engine.run_packed(np.zeros((3, 4), dtype=np.uint64))
            with pytest.raises(ValueError):
                engine.predict_batch(np.zeros((5, 9), dtype=np.uint8))

    def test_invalid_construction(self):
        netlist = random_netlist(8, 10, seed=25)
        with pytest.raises(ValueError):
            ShardedEngine(netlist, backend="gpu")
        with pytest.raises(ValueError):
            ShardedEngine(netlist, n_workers=0)
        with pytest.raises(ValueError):
            ShardedEngine(netlist, min_words_per_worker=0)

    def test_abandoned_engine_is_reclaimed_by_gc(self):
        """Dropping an engine without close() must still release its pool."""
        import gc

        netlist = random_netlist(8, 10, seed=28)
        engine = ShardedEngine(netlist, n_workers=2, min_words_per_worker=1)
        rng = as_rng(11)
        engine.predict_batch(rng.integers(0, 2, size=(300, 8), dtype=np.uint8))
        resources = engine.pool._resources
        assert resources["pool"] is not None
        del engine
        gc.collect()
        assert resources["pool"] is None

    def test_single_worker_degenerates_to_serial(self):
        netlist = random_netlist(8, 10, seed=26)
        with ShardedEngine(netlist, n_workers=1, backend="process") as engine:
            assert engine.backend == "serial"


class TestWorkerPool:
    """The multi-model contract: one pool, many attached netlists."""

    @pytest.fixture(scope="class")
    def models(self):
        # two models with different widths and output counts, so any shard
        # routed to the wrong model's engine fails loudly
        netlist_a = random_netlist(24, 60, seed=31, n_outputs=8)
        netlist_b = random_netlist(16, 40, seed=32, n_outputs=3)
        return {
            "a": (netlist_a, compile_netlist(netlist_a)),
            "b": (netlist_b, compile_netlist(netlist_b)),
        }

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_two_models_bit_exact(self, models, backend):
        rng = as_rng(12)
        with WorkerPool(
            n_workers=2, backend=backend, min_words_per_worker=1
        ) as pool:
            for name, (netlist, _) in models.items():
                pool.attach(name, netlist)
            for name, (netlist, serial) in models.items():
                n_inputs = netlist.n_primary_inputs
                for n_samples in (0, 1, 65, 700):
                    X = rng.integers(
                        0, 2, size=(n_samples, n_inputs), dtype=np.uint8
                    )
                    np.testing.assert_array_equal(
                        pool.evaluate_outputs(name, X),
                        serial.predict_batch(X),
                        err_msg=f"{backend}, model {name}, {n_samples} samples",
                    )

    def test_attach_after_fork_reattaches_lazily(self, models):
        """A model registered once the pool is running must still serve."""
        netlist_a, serial_a = models["a"]
        netlist_b, serial_b = models["b"]
        rng = as_rng(13)
        with WorkerPool(
            n_workers=2, backend="process", min_words_per_worker=1
        ) as pool:
            pool.attach("a", netlist_a)
            pool.warm_up()  # the pool forks with only model "a" inherited
            if pool.backend != "process":  # pragma: no cover - no fork host
                pytest.skip("process backend unavailable on this host")
            pool.attach("b", netlist_b)  # post-fork: lazy re-attach path
            assert pool._entry("b").payload is not None
            X_b = rng.integers(0, 2, size=(700, 16), dtype=np.uint8)
            for _ in range(10):
                np.testing.assert_array_equal(
                    pool.evaluate_outputs("b", X_b),
                    serial_b.predict_batch(X_b),
                )
                if pool._entry("b").payload is None:
                    break
            # once every worker confirmed a copy, the payload stops shipping
            assert pool._entry("b").payload is None
            X_a = rng.integers(0, 2, size=(700, 24), dtype=np.uint8)
            np.testing.assert_array_equal(
                pool.evaluate_outputs("a", X_a), serial_a.predict_batch(X_a)
            )

    def test_concurrent_per_model_load_interleaves_shards(self, models):
        """Threads hammering different models concurrently stay bit-exact."""
        errors = []
        rng = as_rng(14)
        batches = {
            name: rng.integers(
                0, 2, size=(1500, netlist.n_primary_inputs), dtype=np.uint8
            )
            for name, (netlist, _) in models.items()
        }
        with WorkerPool(n_workers=2, min_words_per_worker=1) as pool:
            for name, (netlist, _) in models.items():
                pool.attach(name, netlist)
            pool.warm_up()

            def hammer(name):
                _, serial = models[name]
                expected = serial.predict_batch(batches[name])
                try:
                    for _ in range(5):
                        np.testing.assert_array_equal(
                            pool.evaluate_outputs(name, batches[name]),
                            expected,
                        )
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append((name, error))

            threads = [
                threading.Thread(target=hammer, args=(name,))
                for name in models
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors, errors

    def test_detach_frees_the_id(self, models):
        netlist_a, serial_a = models["a"]
        rng = as_rng(15)
        X = rng.integers(0, 2, size=(200, 24), dtype=np.uint8)
        with WorkerPool(n_workers=2, min_words_per_worker=1) as pool:
            pool.attach("a", netlist_a)
            with pytest.raises(ValueError, match="already attached"):
                pool.attach("a", netlist_a)
            pool.detach("a")
            assert pool.model_ids == []
            with pytest.raises(KeyError, match="not attached"):
                pool.run_packed("a", np.zeros((24, 4), dtype=np.uint64))
            # re-attach under the same id gets a fresh worker-side key
            pool.attach("a", netlist_a)
            np.testing.assert_array_equal(
                pool.evaluate_outputs("a", X), serial_a.predict_batch(X)
            )

    def test_detach_evicts_worker_side_copies(self, models):
        """Cycling many versions through a live pool keeps worker registries
        flat: ``detach`` ships eviction notices with later tasks, so the
        serving layer's hot-swap loop (attach v2, drain v1, detach v1,
        repeat) cannot grow worker memory without bound."""
        netlist_b, _ = models["b"]
        rng = as_rng(18)
        variants = [
            random_netlist(16, 30, seed=100 + i, n_outputs=2)
            for i in range(6)
        ]
        serials = [compile_netlist(n) for n in variants]
        X = rng.integers(0, 2, size=(700, 16), dtype=np.uint8)
        with WorkerPool(
            n_workers=2, backend="process", min_words_per_worker=1
        ) as pool:
            pool.attach("base", netlist_b)
            pool.warm_up()
            if pool.backend != "process":  # pragma: no cover - no fork host
                pytest.skip("process backend unavailable on this host")
            assert pool.worker_registry_sizes() != {}
            for cycle in range(50):
                i = cycle % len(variants)
                vid = f"v{cycle}"
                pool.attach(vid, variants[i])
                np.testing.assert_array_equal(
                    pool.evaluate_outputs(vid, X),
                    serials[i].predict_batch(X),
                )
                pool.detach(vid)
            sizes = pool.worker_registry_sizes()
            assert sizes, "census sampled no workers"
            for pid, (n_netlists, n_engines) in sizes.items():
                # only the fork-inherited base model may remain — without
                # eviction each worker would hold ~25 stale versions here
                assert n_netlists == 1, (pid, n_netlists)
                assert n_engines <= 1, (pid, n_engines)
            if len(sizes) == pool.n_workers:
                # every worker confirmed every eviction: ledger drained
                assert pool._retired == {}

    def test_worker_registry_sizes_needs_a_process_pool(self, models):
        netlist_b, _ = models["b"]
        with WorkerPool(n_workers=2, backend="thread") as pool:
            pool.attach("b", netlist_b)
            assert pool.worker_registry_sizes() == {}
            with pytest.raises(ValueError, match="rounds"):
                pool.worker_registry_sizes(rounds=0)

    def test_shared_pool_views(self, models):
        """ShardedEngine views share one pool; closing a view detaches only."""
        netlist_a, serial_a = models["a"]
        netlist_b, serial_b = models["b"]
        rng = as_rng(16)
        with WorkerPool(n_workers=2, min_words_per_worker=1) as pool:
            view_a = ShardedEngine(netlist_a, pool=pool, model_id="a")
            view_b = ShardedEngine(netlist_b, pool=pool)
            assert view_a.model_id == "a"
            assert view_b.model_id != "a"
            assert sorted(pool.model_ids) == sorted(
                [view_a.model_id, view_b.model_id]
            )
            X = rng.integers(0, 2, size=(300, 24), dtype=np.uint8)
            np.testing.assert_array_equal(
                view_a.predict_batch(X), serial_a.predict_batch(X)
            )
            view_a.close()  # detaches "a", pool stays up for "b"
            assert pool.model_ids == [view_b.model_id]
            X_b = rng.integers(0, 2, size=(300, 16), dtype=np.uint8)
            np.testing.assert_array_equal(
                view_b.predict_batch(X_b), serial_b.predict_batch(X_b)
            )
            with pytest.raises(RuntimeError, match="closed"):
                view_a.predict_batch(X)

    def test_fallback_to_threads_releases_shared_memory(self, models):
        """The thread backend never leases shm again: fallback must unlink
        the free pairs instead of hoarding them for the process lifetime."""
        netlist_a, serial_a = models["a"]
        rng = as_rng(17)
        X = rng.integers(0, 2, size=(700, 24), dtype=np.uint8)
        with WorkerPool(
            n_workers=2, backend="process", min_words_per_worker=1
        ) as pool:
            pool.attach("a", netlist_a)
            expected = serial_a.predict_batch(X)
            np.testing.assert_array_equal(
                pool.evaluate_outputs("a", X), expected
            )
            if pool.backend != "process":  # pragma: no cover - no fork host
                pytest.skip("process backend unavailable on this host")
            assert pool._resources["shm_free"]
            with pytest.warns(RuntimeWarning, match="falling back"):
                pool._fall_back_to_threads(OSError("injected"), stacklevel=2)
            assert pool.backend == "thread"
            assert pool._resources["shm_free"] == []
            assert pool._resources["shm_all"] == []
            # and the pool still serves, bit-exactly, on threads
            np.testing.assert_array_equal(
                pool.evaluate_outputs("a", X), expected
            )

    def test_attach_validation(self):
        with WorkerPool(n_workers=2) as pool:
            with pytest.raises(ValueError, match="non-empty string"):
                pool.attach("", random_netlist(8, 10, seed=33))
            # auto-generated ids skip names the user already took
            pool.attach("model-0", random_netlist(8, 10, seed=36))
            auto = pool.attach(None, random_netlist(8, 10, seed=37))
            assert auto != "model-0"
        with pytest.raises(ValueError):
            WorkerPool(n_workers=0)
        with pytest.raises(ValueError):
            WorkerPool(backend="gpu")
        with pytest.raises(ValueError):
            WorkerPool(min_words_per_worker=0)

    def test_closed_pool_rejects_everything(self):
        pool = WorkerPool(n_workers=2)
        pool.attach("m", random_netlist(8, 10, seed=34))
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.attach("n", random_netlist(8, 10, seed=35))
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_packed("m", np.zeros((8, 1), dtype=np.uint64))


class TestWorkerHelpers:
    def test_worker_roundtrip_inline(self):
        """Drive the process-backend worker functions in this process."""
        import pickle

        from multiprocessing import shared_memory

        from repro.engine import pack_bits

        netlist = random_netlist(12, 20, seed=27, n_outputs=3)
        other = random_netlist(10, 15, seed=29, n_outputs=2)
        serial = compile_netlist(netlist)
        rng = as_rng(10)
        X = rng.integers(0, 2, size=(500, 12), dtype=np.uint8)
        packed = pack_bits(X)
        words = packed.shape[1]
        shm_in = shared_memory.SharedMemory(create=True, size=packed.nbytes)
        shm_out = shared_memory.SharedMemory(create=True, size=3 * words * 8)
        try:
            np.ndarray(packed.shape, dtype=np.uint64, buffer=shm_in.buf)[:] = packed
            # "m#0" is fork-inherited; "late#1" arrives pickled in the task
            _worker_init({"m#0": netlist})
            for lo, hi in shard_bounds(words, 3):
                _worker_run(
                    (
                        "m#0",
                        None,
                        "numpy",
                        shm_in.name,
                        shm_out.name,
                        12,
                        3,
                        words,
                        lo,
                        hi,
                        (),
                    )
                )
            out = np.ndarray((3, words), dtype=np.uint64, buffer=shm_out.buf)
            np.testing.assert_array_equal(out, serial.run_packed(packed))

            # lazy re-attach: an unknown key without a payload must fail
            # loudly, and with a payload must compile and serve
            with pytest.raises(RuntimeError, match="no netlist"):
                _worker_run(
                    (
                        "late#1",
                        None,
                        "numpy",
                        shm_in.name,
                        shm_out.name,
                        12,
                        3,
                        words,
                        0,
                        1,
                        (),
                    )
                )
            other_serial = compile_netlist(other)
            X_other = rng.integers(0, 2, size=(64, 10), dtype=np.uint8)
            packed_other = pack_bits(X_other)
            np.ndarray(
                packed_other.shape, dtype=np.uint64, buffer=shm_in.buf
            )[:] = packed_other
            _worker_run(
                (
                    "late#1",
                    pickle.dumps(other),
                    "numpy",
                    shm_in.name,
                    shm_out.name,
                    10,
                    2,
                    1,
                    0,
                    1,
                    (),
                )
            )
            out_other = np.ndarray(
                (2, 1), dtype=np.uint64, buffer=shm_out.buf
            )
            np.testing.assert_array_equal(
                out_other, other_serial.run_packed(packed_other)
            )
        finally:
            from repro.engine.parallel import _WORKER

            for shm in _WORKER.get("shm", {}).values():
                shm.close()
            _WORKER.clear()
            shm_in.close()
            shm_in.unlink()
            shm_out.close()
            shm_out.unlink()
